//! # hotnoc — hotspot prevention through runtime reconfiguration in NoC
//!
//! Umbrella crate for the reproduction of *Link & Vijaykrishnan, "Hotspot
//! Prevention Through Runtime Reconfiguration in Network-On-Chip", DATE
//! 2005*. It re-exports the workspace crates:
//!
//! * [`obs`] — deterministic event tracing and the wall-clock profiler,
//! * [`noc`] — cycle-accurate 2-D mesh NoC simulator,
//! * [`ldpc`] — the LDPC-decoder workload mapped onto the NoC,
//! * [`thermal`] — HotSpot-style block RC thermal simulator,
//! * [`power`] — activity-based 160 nm power models,
//! * [`placement`] — thermally-aware static placement,
//! * [`reconfig`] — migration transforms and the runtime reconfiguration
//!   engine,
//! * [`core`] — the co-simulation runtime and the paper's chip
//!   configurations A–E,
//! * [`scenario`] — declarative experiment specs, the campaign engine and
//!   the resumable parallel campaign runner (fronted by the `hotnoc` CLI in
//!   `crates/cli`).
//!
//! ## Quickstart
//!
//! ```
//! use hotnoc::core::configs::ChipConfigId;
//! use hotnoc::core::experiment::quick_demo;
//!
//! // Run a short co-simulation of configuration A under rotation migration.
//! let outcome = quick_demo(ChipConfigId::A)?;
//! assert!(outcome.base_peak_celsius > 40.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harnesses that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]

pub use hotnoc_core as core;
pub use hotnoc_ldpc as ldpc;
pub use hotnoc_noc as noc;
pub use hotnoc_obs as obs;
pub use hotnoc_placement as placement;
pub use hotnoc_power as power;
pub use hotnoc_reconfig as reconfig;
pub use hotnoc_scenario as scenario;
pub use hotnoc_thermal as thermal;
