//! Offline stand-in for the real `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property suites
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`, range
//! and tuple strategies, [`collection::vec`], `Just`, `prop_oneof!`, the
//! `proptest!` test macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: each test's RNG is seeded from a hash of the test
//!   name, so runs are reproducible in CI without `proptest-regressions/`
//!   seed files (none are ever written).
//! * **No shrinking**: a failing case panics with the generated inputs left
//!   to the assertion message rather than shrinking to a minimal case.
//!
//! Swap the path dependency for the registry crate when a registry is
//! reachable; the test sources compile unchanged.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The `proptest!` macro: expands each `#[test] fn name(pat in strategy, ...)`
/// item into a standard `#[test]` that samples the strategies `config.cases`
/// times and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Union of strategies with a uniform choice between arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Skips the current case when the assumption fails.
///
/// Expands to `continue` targeting the `proptest!` case loop, so it must be
/// used at the top level of a property body (not inside a nested loop) — which
/// matches how the real macro is used in this workspace.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_test("oneof_covers_all_arms");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_respects_length_range() {
        let s = crate::collection::vec(0u32..5, 2..6);
        let mut rng = TestRng::for_test("vec_respects_length_range");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let s = (2usize..6).prop_flat_map(|n| (Just(n), crate::collection::vec(0u8..10, n)));
        let mut rng = TestRng::for_test("flat_map_threads_dependent_values");
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_end_to_end(x in 1u64..100, (a, b) in (0u8..4, 0u8..4)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(a < 4, "a was {}", a);
            prop_assert_ne!(b, 200);
            prop_assert_eq!(x, x);
        }
    }
}
