//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stand-in for `proptest::test_runner::Config` (aliased to `ProptestConfig`
/// in the prelude). Only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real proptest defaults to 256; this stub trades a thinner
        // sample for a test suite that stays fast on the heavier simulation
        // properties. Override per-suite with `ProptestConfig::with_cases`.
        Config { cases: 64 }
    }
}

/// RNG handed to strategies. Seeded from the fully-qualified test name, so
/// every run (local or CI) replays the identical case sequence — this is the
/// determinism contract that replaces `proptest-regressions/` seed files.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path gives a stable, well-spread 64-bit seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
