//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Length specification for [`vec`]: an exact `usize` or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng().gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`: vectors whose elements come
/// from `element` and whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
