//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A generator of values of type `Self::Value`.
///
/// Unlike the real proptest (which builds shrinkable value trees), this
/// stand-in samples plain values; see the crate docs for the trade-off.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// A type-erased strategy, produced by [`Strategy::boxed`] and `prop_oneof!`.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between several strategies of one value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}
