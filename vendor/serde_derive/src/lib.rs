//! Offline stand-in for the real `serde_derive` crate.
//!
//! The workspace vendors its external dependencies so it builds without
//! registry access. The `serde` stub blanket-implements its marker traits, so
//! these derives only need to accept the attribute position — they expand to
//! nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
