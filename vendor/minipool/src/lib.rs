//! Offline stand-in for the `rayon` thread pool.
//!
//! The container builds hermetically (no registry access), so this crate
//! implements the small slice of rayon's surface the workspace needs:
//!
//! * [`ThreadPool::scope`] — spawn non-`'static` closures that borrow the
//!   caller's stack, with a guarantee that every spawned task finishes
//!   before `scope` returns (rayon's `Scope::spawn` contract).
//! * [`ThreadPool::par_chunks_mut`] — striped mutable iteration over a
//!   slice, the `par_chunks_mut().enumerate().for_each()` idiom.
//! * [`global`] — a process-wide pool whose worker count is capped by
//!   `HOTNOC_THREADS` (default: [`std::thread::available_parallelism`]).
//!
//! # API delta vs rayon
//!
//! Workers are spawned lazily ([`ThreadPool::ensure_workers`]) instead of
//! eagerly at pool construction; there is no work stealing (a single shared
//! injector queue — fine for the few, coarse tasks per scope this workspace
//! submits); and the thread waiting in `scope` helps drain the queue so a
//! pool of `n - 1` workers plus the caller yields `n`-way parallelism.
//! When the real rayon returns, `scope`/`spawn` map 1:1 and
//! `par_chunks_mut(data, n, f)` becomes
//! `data.par_chunks_mut(len.div_ceil(n)).enumerate().for_each(f)`.
//!
//! # Determinism
//!
//! The pool itself makes no ordering promises — tasks run on whichever
//! worker gets them first. Callers that need deterministic results (the NoC
//! sweep) achieve it structurally: tasks own disjoint state and their
//! cross-task effects are committed by the caller in task-index order after
//! the scope ends.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Hard cap on workers per pool (guards against a runaway `HOTNOC_THREADS`).
pub const MAX_WORKERS: usize = 256;

/// The thread count a freshly constructed consumer should use: the
/// `HOTNOC_THREADS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown).
///
/// Read on every call (not cached) so tests can vary the variable
/// per-process; long-lived consumers should sample it once at construction.
pub fn configured_threads() -> usize {
    match std::env::var("HOTNOC_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_WORKERS),
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_WORKERS),
    }
}

/// The process-wide pool. Workers are spawned on demand and live for the
/// rest of the process.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(ThreadPool::new)
}

/// A lifetime-erased queued task. Scope tasks borrow the spawning stack;
/// erasure is sound because [`ThreadPool::scope`] blocks until its latch
/// reports every spawned task finished (even when unwinding).
type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    /// Signalled when a task is pushed (workers sleep here).
    available: Condvar,
    shutdown: AtomicBool,
}

/// A panic payload carried from a worker back to the scope caller.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Per-scope latch state: outstanding task count plus the first panic
/// payload observed (re-thrown on the caller's thread, so the original
/// assertion message survives).
struct LatchState {
    pending: usize,
    panic: Option<PanicPayload>,
}

/// Completion latch for one scope: counts outstanding tasks and records
/// whether any of them panicked.
struct ScopeLatch {
    state: Mutex<LatchState>,
    done: Condvar,
}

impl ScopeLatch {
    fn new() -> Self {
        ScopeLatch {
            state: Mutex::new(LatchState {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn add_task(&self) {
        self.state.lock().expect("latch poisoned").pending += 1;
    }

    fn complete(&self, panic: Option<PanicPayload>) {
        let mut s = self.state.lock().expect("latch poisoned");
        s.pending -= 1;
        if s.panic.is_none() {
            s.panic = panic;
        }
        if s.pending == 0 {
            self.done.notify_all();
        }
    }

    fn finished(&self) -> bool {
        self.state.lock().expect("latch poisoned").pending == 0
    }

    fn take_panic(&self) -> Option<PanicPayload> {
        self.state.lock().expect("latch poisoned").panic.take()
    }
}

/// A work pool of OS threads accepting scoped tasks.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Fast-path mirror of `workers.len()` so hot loops can skip the lock.
    worker_count: AtomicUsize,
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::new()
    }
}

impl ThreadPool {
    /// Creates an empty pool; workers appear via [`ThreadPool::ensure_workers`].
    pub fn new() -> Self {
        ThreadPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            workers: Mutex::new(Vec::new()),
            worker_count: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads currently running (excludes helping callers).
    pub fn workers(&self) -> usize {
        self.worker_count.load(Ordering::Relaxed)
    }

    /// Spawns workers until at least `n` (capped at [`MAX_WORKERS`]) exist.
    /// A scope caller helps drain the queue, so `n - 1` workers suffice for
    /// `n`-way parallelism.
    pub fn ensure_workers(&self, n: usize) {
        let n = n.min(MAX_WORKERS);
        if self.worker_count.load(Ordering::Relaxed) >= n {
            return;
        }
        let mut workers = self.workers.lock().expect("worker registry poisoned");
        while workers.len() < n {
            let shared = Arc::clone(&self.shared);
            let name = format!("minipool-{}", workers.len());
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(&shared))
                .expect("spawn minipool worker");
            workers.push(handle);
        }
        self.worker_count.store(workers.len(), Ordering::Relaxed);
    }

    fn push_task(&self, task: Task) {
        let mut q = self.shared.queue.lock().expect("task queue poisoned");
        q.push_back(task);
        drop(q);
        self.shared.available.notify_one();
    }

    fn try_pop(&self) -> Option<Task> {
        self.shared
            .queue
            .lock()
            .expect("task queue poisoned")
            .pop_front()
    }

    /// Runs `op` with a [`Scope`] on which non-`'static` tasks can be
    /// spawned, and returns once every spawned task has finished. Mirrors
    /// `rayon::scope` (without nested-scope work stealing).
    ///
    /// # Panics
    ///
    /// If any spawned task panicked, the first panic payload is re-thrown
    /// on the caller's thread (after all tasks have finished), preserving
    /// the original message.
    pub fn scope<'scope, OP, R>(&'scope self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + 'scope,
    {
        let latch = Arc::new(ScopeLatch::new());
        let scope = Scope {
            pool: self,
            latch: Arc::clone(&latch),
            _marker: PhantomData,
        };
        let out = {
            // The guard waits for outstanding tasks even if `op` unwinds, so
            // no task can outlive the borrows it captured.
            let _guard = WaitGuard {
                pool: self,
                latch: &latch,
            };
            op(&scope)
        };
        if let Some(payload) = latch.take_panic() {
            std::panic::resume_unwind(payload);
        }
        out
    }

    /// Splits `data` into `num_chunks` near-equal contiguous stripes and
    /// runs `f(stripe_index, stripe)` for each, in parallel. Stripe order in
    /// memory equals stripe index order, so callers can reassemble
    /// deterministic results by index.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], num_chunks: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = num_chunks.clamp(1, data.len().max(1));
        if n == 1 {
            f(0, data);
            return;
        }
        self.ensure_workers(n - 1);
        let chunk = data.len().div_ceil(n);
        self.scope(|s| {
            for (i, stripe) in data.chunks_mut(chunk).enumerate() {
                let f = &f;
                s.spawn(move || f(i, stripe));
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let mut workers = self.workers.lock().expect("worker registry poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Handle for spawning tasks that borrow the stack enclosing
/// [`ThreadPool::scope`].
pub struct Scope<'scope> {
    pool: &'scope ThreadPool,
    latch: Arc<ScopeLatch>,
    /// Invariant over `'scope` (mirrors `std::thread::Scope`).
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` to run on the pool. The closure may borrow anything that
    /// outlives the enclosing `scope` call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.add_task();
        let latch = Arc::clone(&self.latch);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            latch.complete(result.err());
        });
        // SAFETY: the enclosing `scope` call blocks (in `WaitGuard::drop`)
        // until the latch counts this task complete, so the closure and its
        // `'scope` borrows never outlive the stack frame they borrow from.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(task)
        };
        self.pool.push_task(task);
    }
}

/// Blocks until the scope's latch drains, helping run queued tasks so the
/// caller's thread contributes parallelism instead of idling.
struct WaitGuard<'a> {
    pool: &'a ThreadPool,
    latch: &'a ScopeLatch,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        loop {
            // Help first: run whatever is queued (possibly another scope's
            // task — its own latch is captured in the task, so accounting
            // stays correct).
            if let Some(task) = self.pool.try_pop() {
                task();
                continue;
            }
            let state = self.latch.state.lock().expect("latch poisoned");
            if state.pending == 0 {
                break;
            }
            // Short timeout: our remaining tasks are running on workers, but
            // re-check the queue periodically in case a running task spawned
            // more work while every worker was busy.
            let _unused = self
                .latch
                .done
                .wait_timeout(state, Duration::from_micros(200))
                .expect("latch poisoned");
        }
        debug_assert!(self.latch.finished());
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().expect("task queue poisoned");
            loop {
                if let Some(task) = q.pop_front() {
                    break task;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.available.wait(q).expect("task queue poisoned");
            }
        };
        task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_tasks_and_waits() {
        let pool = ThreadPool::new();
        pool.ensure_workers(3);
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn scope_tasks_borrow_caller_stack_mutably() {
        let pool = ThreadPool::new();
        pool.ensure_workers(2);
        let mut data = vec![0u64; 100];
        let (a, b) = data.split_at_mut(50);
        pool.scope(|s| {
            s.spawn(|| a.iter_mut().for_each(|x| *x += 1));
            s.spawn(|| b.iter_mut().for_each(|x| *x += 2));
        });
        assert!(data[..50].iter().all(|&x| x == 1));
        assert!(data[50..].iter().all(|&x| x == 2));
    }

    #[test]
    fn scope_with_no_workers_runs_on_caller() {
        let pool = ThreadPool::new();
        assert_eq!(pool.workers(), 0);
        let mut ran = false;
        pool.scope(|s| s.spawn(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn par_chunks_mut_covers_every_element_once() {
        let pool = ThreadPool::new();
        let mut data: Vec<u64> = (0..1000).collect();
        pool.par_chunks_mut(&mut data, 7, |_, stripe| {
            for x in stripe {
                *x += 1;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u64 + 1);
        }
    }

    #[test]
    fn par_chunks_mut_stripe_indices_are_contiguous() {
        let pool = ThreadPool::new();
        let mut data = vec![0usize; 103];
        pool.par_chunks_mut(&mut data, 4, |idx, stripe| {
            for x in stripe {
                *x = idx;
            }
        });
        // Stripe index must be non-decreasing across memory order.
        for w in data.windows(2) {
            assert!(w[0] <= w[1], "stripes out of order: {} then {}", w[0], w[1]);
        }
        assert_eq!(*data.last().expect("non-empty"), 3);
    }

    #[test]
    fn par_chunks_mut_handles_degenerate_shapes() {
        let pool = ThreadPool::new();
        let mut empty: Vec<u8> = Vec::new();
        pool.par_chunks_mut(&mut empty, 4, |_, _| {});
        let mut one = vec![7u8];
        pool.par_chunks_mut(&mut one, 16, |_, s| s.iter_mut().for_each(|x| *x += 1));
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn task_panic_propagates_to_scope_caller() {
        let pool = ThreadPool::new();
        pool.ensure_workers(1);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {}); // a healthy sibling must still complete
            });
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        // The original payload is re-thrown on the caller's thread.
        assert!(msg.contains("boom"), "got: {msg}");
        // The pool survives a panicked task.
        let mut ok = false;
        pool.scope(|s| s.spawn(|| ok = true));
        assert!(ok);
    }

    #[test]
    fn ensure_workers_is_monotonic_and_capped() {
        let pool = ThreadPool::new();
        pool.ensure_workers(2);
        assert_eq!(pool.workers(), 2);
        pool.ensure_workers(1); // never shrinks
        assert_eq!(pool.workers(), 2);
        pool.ensure_workers(4);
        assert_eq!(pool.workers(), 4);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn global_pool_is_usable() {
        let n = AtomicU64::new(0);
        global().scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn sequential_scopes_reuse_the_pool() {
        let pool = ThreadPool::new();
        pool.ensure_workers(2);
        let mut total = 0u64;
        for round in 0..50u64 {
            let partial = Mutex::new(0u64);
            pool.scope(|s| {
                for _ in 0..4 {
                    let partial = &partial;
                    s.spawn(move || {
                        *partial.lock().expect("poisoned") += round;
                    });
                }
            });
            total += *partial.lock().expect("poisoned");
        }
        assert_eq!(total, (0..50u64).map(|r| 4 * r).sum());
    }
}
