//! Offline stand-in for the real `serde` crate.
//!
//! The workspace uses `Serialize`/`Deserialize` purely as derive markers on
//! config and data types — nothing is actually serialized yet. This stub keeps
//! those derives compiling without registry access: the traits are blanket
//! implemented for every type, and the re-exported derive macros expand to
//! nothing. Swap the path dependency for the registry crate when a registry
//! is reachable; no source changes are required.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all
/// types; the lifetime parameter mirrors the real trait's signature.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
