//! Machine-readable bench reports: the `BENCH_*.json` schema, its writer,
//! and a strict parser used by CI to validate emitted files.
//!
//! Schema (`hotnoc-bench-v1`):
//!
//! ```json
//! {
//!   "schema": "hotnoc-bench-v1",
//!   "results": [
//!     {
//!       "id": "noc/steps_per_sec/16x16_idle",
//!       "batch_iters": 128, "iters": 8192, "samples": 61, "trimmed": 3,
//!       "mean_ns": 1234.5, "median_ns": 1200.0, "p95_ns": 1400.0,
//!       "stddev_ns": 55.0, "min_ns": 1100.0, "max_ns": 1500.0
//!     }
//!   ]
//! }
//! ```

/// Current schema identifier.
pub const SCHEMA: &str = "hotnoc-bench-v1";

/// Summary statistics of one benchmark id.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Iterations per timing batch.
    pub batch_iters: u64,
    /// Total iterations executed during measurement.
    pub iters: u64,
    /// Timing samples kept after trimming.
    pub samples: u64,
    /// Samples discarded as IQR outliers.
    pub trimmed: u64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time, nanoseconds.
    pub p95_ns: f64,
    /// Per-iteration standard deviation, nanoseconds.
    pub stddev_ns: f64,
    /// Fastest kept sample, nanoseconds.
    pub min_ns: f64,
    /// Slowest kept sample, nanoseconds.
    pub max_ns: f64,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes records to the `hotnoc-bench-v1` JSON document.
pub fn to_json(records: &[&BenchRecord]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"");
    s.push_str(SCHEMA);
    s.push_str("\",\n  \"results\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"batch_iters\": {}, \"iters\": {}, \
             \"samples\": {}, \"trimmed\": {}, \"mean_ns\": {:.3}, \
             \"median_ns\": {:.3}, \"p95_ns\": {:.3}, \"stddev_ns\": {:.3}, \
             \"min_ns\": {:.3}, \"max_ns\": {:.3}}}",
            esc(&r.id),
            r.batch_iters,
            r.iters,
            r.samples,
            r.trimmed,
            r.mean_ns,
            r.median_ns,
            r.p95_ns,
            r.stddev_ns,
            r.min_ns,
            r.max_ns,
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Parses and validates a `hotnoc-bench-v1` document, returning its records.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax or schema
/// violation (wrong schema tag, missing field, non-finite statistic, ...).
pub fn parse_report(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let doc = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    let Json::Object(fields) = doc else {
        return Err("top level is not an object".into());
    };
    let schema = get_str(&fields, "schema")?;
    if schema != SCHEMA {
        return Err(format!("unknown schema {schema:?} (want {SCHEMA:?})"));
    }
    let Some(Json::Array(items)) = lookup(&fields, "results") else {
        return Err("missing \"results\" array".into());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Json::Object(f) = item else {
            return Err(format!("results[{i}] is not an object"));
        };
        let ctx = |e: String| format!("results[{i}]: {e}");
        let num = |k: &str| -> Result<f64, String> {
            let v = get_num(f, k).map_err(ctx)?;
            if !v.is_finite() {
                return Err(format!("results[{i}].{k} is not finite"));
            }
            Ok(v)
        };
        let int = |k: &str| -> Result<u64, String> {
            let v = num(k)?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("results[{i}].{k} is not a non-negative integer"));
            }
            Ok(v as u64)
        };
        let rec = BenchRecord {
            id: get_str(f, "id").map_err(ctx)?.to_string(),
            batch_iters: int("batch_iters")?,
            iters: int("iters")?,
            samples: int("samples")?,
            trimmed: int("trimmed")?,
            mean_ns: num("mean_ns")?,
            median_ns: num("median_ns")?,
            p95_ns: num("p95_ns")?,
            stddev_ns: num("stddev_ns")?,
            min_ns: num("min_ns")?,
            max_ns: num("max_ns")?,
        };
        if rec.id.is_empty() {
            return Err(format!("results[{i}].id is empty"));
        }
        if rec.samples == 0 {
            return Err(format!("results[{i}].samples is zero"));
        }
        if rec.min_ns > rec.median_ns || rec.median_ns > rec.max_ns {
            return Err(format!("results[{i}]: min/median/max out of order"));
        }
        out.push(rec);
    }
    Ok(out)
}

/// A parsed JSON value (only what the report schema needs; booleans and
/// nulls are recognized but carry no payload the schema reads).
enum Json {
    Null,
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

fn lookup<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    match lookup(fields, key) {
        Some(Json::Str(s)) => Ok(s),
        Some(_) => Err(format!("field {key:?} is not a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_num(fields: &[(String, Json)], key: &str) -> Result<f64, String> {
    match lookup(fields, key) {
        Some(Json::Num(v)) => Ok(*v),
        Some(_) => Err(format!("field {key:?} is not a number")),
        None => Err(format!("missing field {key:?}")),
    }
}

/// Minimal recursive-descent JSON parser (strict enough for validation).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            batch_iters: 8,
            iters: 800,
            samples: 100,
            trimmed: 2,
            mean_ns: 123.456,
            median_ns: 120.0,
            p95_ns: 150.5,
            stddev_ns: 9.1,
            min_ns: 100.0,
            max_ns: 180.0,
        }
    }

    #[test]
    fn json_roundtrip() {
        let a = rec("noc/steps_per_sec/16x16_idle");
        let b = rec("noc/transpose \"quoted\"");
        let json = to_json(&[&a, &b]);
        let parsed = parse_report(&json).expect("valid report");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, a.id);
        assert_eq!(parsed[1].id, b.id);
        assert_eq!(parsed[0].iters, 800);
        assert!((parsed[0].mean_ns - 123.456).abs() < 1e-9);
    }

    #[test]
    fn rejects_wrong_schema() {
        let json = to_json(&[&rec("a/b")]).replace(SCHEMA, "bogus-v0");
        assert!(parse_report(&json).unwrap_err().contains("unknown schema"));
    }

    #[test]
    fn rejects_missing_field() {
        let json = to_json(&[&rec("a/b")]).replace("\"p95_ns\"", "\"q95_ns\"");
        assert!(parse_report(&json).unwrap_err().contains("p95_ns"));
    }

    #[test]
    fn rejects_malformed_syntax() {
        assert!(parse_report("{\"schema\": ").is_err());
        assert!(parse_report("[]").is_err());
        assert!(parse_report("{} trailing").is_err());
    }

    #[test]
    fn rejects_unordered_stats() {
        let mut bad = rec("a/b");
        bad.min_ns = 1.0e9; // above median
        let json = to_json(&[&bad]);
        assert!(parse_report(&json).unwrap_err().contains("out of order"));
    }

    #[test]
    fn empty_results_are_valid() {
        let json = to_json(&[]);
        assert_eq!(parse_report(&json).expect("valid").len(), 0);
    }
}
