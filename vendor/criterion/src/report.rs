//! Machine-readable bench reports: the `BENCH_*.json` schema, its writer,
//! and a strict parser used by CI to validate emitted files and gate
//! performance regressions.
//!
//! Current schema (`hotnoc-bench-v2`) — v1 minus the `env` block and the
//! per-record `mesh`/`threads` fields is still accepted by the parser:
//!
//! ```json
//! {
//!   "schema": "hotnoc-bench-v2",
//!   "env": {"threads": 4, "available_parallelism": 8, "os": "linux"},
//!   "results": [
//!     {
//!       "id": "noc/steps_per_sec/32x32_loaded_t4",
//!       "mesh": "32x32", "threads": 4,
//!       "batch_iters": 128, "iters": 8192, "samples": 61, "trimmed": 3,
//!       "mean_ns": 1234.5, "median_ns": 1200.0, "p95_ns": 1400.0,
//!       "stddev_ns": 55.0, "min_ns": 1100.0, "max_ns": 1500.0
//!     }
//!   ]
//! }
//! ```
//!
//! The `env` block and the per-record metadata exist so baseline
//! comparisons can refuse (or at least flag) apples-to-oranges runs: a
//! 4-thread sweep measured on a 1-core container is not comparable to the
//! same id measured on an 8-core workstation.

use hotnoc_scenario::json::Json;

/// Current schema identifier.
pub const SCHEMA: &str = "hotnoc-bench-v2";

/// Previous schema identifier, still parsed (committed v1 baselines remain
/// readable).
pub const SCHEMA_V1: &str = "hotnoc-bench-v1";

/// Measurement-environment metadata attached to every v2 report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEnv {
    /// `HOTNOC_THREADS` as resolved by the harness process (the default
    /// thread count consumers constructed in-process would pick up).
    pub threads: u64,
    /// The machine's available hardware parallelism.
    pub available_parallelism: u64,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
}

impl BenchEnv {
    /// Captures the current process environment. The `threads` resolution
    /// mirrors `minipool::configured_threads` exactly (set-but-invalid
    /// `HOTNOC_THREADS` resolves to 1, unset to available parallelism) so
    /// the recorded value is the one simulations in this process used.
    pub fn capture() -> Self {
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1) as u64;
        let threads = match std::env::var("HOTNOC_THREADS") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(n) if n >= 1 => n,
                _ => 1,
            },
            Err(_) => available,
        };
        BenchEnv {
            threads,
            available_parallelism: available,
            os: std::env::consts::OS.to_string(),
        }
    }
}

/// A parsed report: schema version, environment (v2 only) and records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The schema tag the document carried.
    pub schema: String,
    /// Environment metadata; `None` for v1 documents.
    pub env: Option<BenchEnv>,
    /// The benchmark records.
    pub records: Vec<BenchRecord>,
}

/// Summary statistics of one benchmark id.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Mesh the scenario ran on (e.g. `"32x32"`), when the bench declared
    /// it (v2).
    pub mesh: Option<String>,
    /// Sweep thread count the scenario pinned, when the bench declared it
    /// (v2).
    pub threads: Option<u64>,
    /// Iterations per timing batch.
    pub batch_iters: u64,
    /// Total iterations executed during measurement.
    pub iters: u64,
    /// Timing samples kept after trimming.
    pub samples: u64,
    /// Samples discarded as IQR outliers.
    pub trimmed: u64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time, nanoseconds.
    pub p95_ns: f64,
    /// Per-iteration standard deviation, nanoseconds.
    pub stddev_ns: f64,
    /// Fastest kept sample, nanoseconds.
    pub min_ns: f64,
    /// Slowest kept sample, nanoseconds.
    pub max_ns: f64,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes records to the current (`hotnoc-bench-v2`) JSON document.
pub fn to_json(env: &BenchEnv, records: &[&BenchRecord]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"");
    s.push_str(SCHEMA);
    s.push_str("\",\n  \"env\": {");
    s.push_str(&format!(
        "\"threads\": {}, \"available_parallelism\": {}, \"os\": \"{}\"",
        env.threads,
        env.available_parallelism,
        esc(&env.os),
    ));
    s.push_str("},\n  \"results\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let mut meta = String::new();
        if let Some(mesh) = &r.mesh {
            meta.push_str(&format!(" \"mesh\": \"{}\",", esc(mesh)));
        }
        if let Some(threads) = r.threads {
            meta.push_str(&format!(" \"threads\": {threads},"));
        }
        s.push_str(&format!(
            "\n    {{\"id\": \"{}\",{meta} \"batch_iters\": {}, \"iters\": {}, \
             \"samples\": {}, \"trimmed\": {}, \"mean_ns\": {:.3}, \
             \"median_ns\": {:.3}, \"p95_ns\": {:.3}, \"stddev_ns\": {:.3}, \
             \"min_ns\": {:.3}, \"max_ns\": {:.3}}}",
            esc(&r.id),
            r.batch_iters,
            r.iters,
            r.samples,
            r.trimmed,
            r.mean_ns,
            r.median_ns,
            r.p95_ns,
            r.stddev_ns,
            r.min_ns,
            r.max_ns,
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Parses and validates a bench report, returning its records. Accepts the
/// current `hotnoc-bench-v2` schema and the legacy `hotnoc-bench-v1`.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax or schema
/// violation (wrong schema tag, missing field, non-finite statistic, ...).
pub fn parse_report(text: &str) -> Result<Vec<BenchRecord>, String> {
    parse_document(text).map(|doc| doc.records)
}

/// Parses and validates a bench report document (v1 or v2), returning the
/// schema tag, the environment block (v2) and the records.
///
/// # Errors
///
/// Same as [`parse_report`]; additionally, a v2 document without an `env`
/// object (or with a malformed one) is rejected.
pub fn parse_document(text: &str) -> Result<BenchReport, String> {
    let doc = Json::parse(text)?;
    if !matches!(doc, Json::Object(_)) {
        return Err("top level is not an object".into());
    }
    let schema = doc.req_str("schema")?.to_string();
    if schema != SCHEMA && schema != SCHEMA_V1 {
        return Err(format!(
            "unknown schema {schema:?} (want {SCHEMA:?} or {SCHEMA_V1:?})"
        ));
    }
    let env = if schema == SCHEMA {
        let Some(e) = doc.get("env").filter(|v| matches!(v, Json::Object(_))) else {
            return Err(format!("schema {SCHEMA:?} requires an \"env\" object"));
        };
        let int = |k: &str| e.req_u64(k).map_err(|err| format!("env: {err}"));
        Some(BenchEnv {
            threads: int("threads")?,
            available_parallelism: int("available_parallelism")?,
            os: e
                .req_str("os")
                .map_err(|err| format!("env: {err}"))?
                .to_string(),
        })
    } else {
        None
    };
    let items = doc
        .req_array("results")
        .map_err(|_| "missing \"results\" array".to_string())?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        if !matches!(item, Json::Object(_)) {
            return Err(format!("results[{i}] is not an object"));
        }
        let num = |k: &str| item.req_f64(k).map_err(|e| format!("results[{i}]: {e}"));
        let int = |k: &str| item.req_u64(k).map_err(|e| format!("results[{i}]: {e}"));
        let rec = BenchRecord {
            id: item
                .req_str("id")
                .map_err(|e| format!("results[{i}]: {e}"))?
                .to_string(),
            mesh: match item.get("mesh") {
                None => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => return Err(format!("results[{i}].mesh is not a string")),
            },
            threads: match item.get("threads") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    format!("results[{i}].threads is not a non-negative integer")
                })?),
            },
            batch_iters: int("batch_iters")?,
            iters: int("iters")?,
            samples: int("samples")?,
            trimmed: int("trimmed")?,
            mean_ns: num("mean_ns")?,
            median_ns: num("median_ns")?,
            p95_ns: num("p95_ns")?,
            stddev_ns: num("stddev_ns")?,
            min_ns: num("min_ns")?,
            max_ns: num("max_ns")?,
        };
        if rec.id.is_empty() {
            return Err(format!("results[{i}].id is empty"));
        }
        if rec.samples == 0 {
            return Err(format!("results[{i}].samples is zero"));
        }
        if rec.min_ns > rec.median_ns || rec.median_ns > rec.max_ns {
            return Err(format!("results[{i}]: min/median/max out of order"));
        }
        out.push(rec);
    }
    Ok(BenchReport {
        schema,
        env,
        records: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            mesh: None,
            threads: None,
            batch_iters: 8,
            iters: 800,
            samples: 100,
            trimmed: 2,
            mean_ns: 123.456,
            median_ns: 120.0,
            p95_ns: 150.5,
            stddev_ns: 9.1,
            min_ns: 100.0,
            max_ns: 180.0,
        }
    }

    fn env() -> BenchEnv {
        BenchEnv {
            threads: 4,
            available_parallelism: 8,
            os: "linux".to_string(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let mut a = rec("noc/steps_per_sec/32x32_loaded_t4");
        a.mesh = Some("32x32".to_string());
        a.threads = Some(4);
        let b = rec("noc/transpose \"quoted\"");
        let json = to_json(&env(), &[&a, &b]);
        let doc = parse_document(&json).expect("valid report");
        assert_eq!(doc.schema, SCHEMA);
        assert_eq!(doc.env, Some(env()));
        assert_eq!(doc.records.len(), 2);
        assert_eq!(doc.records[0].id, a.id);
        assert_eq!(doc.records[0].mesh.as_deref(), Some("32x32"));
        assert_eq!(doc.records[0].threads, Some(4));
        assert_eq!(doc.records[1].id, b.id);
        assert_eq!(doc.records[1].mesh, None);
        assert_eq!(doc.records[1].threads, None);
        assert_eq!(doc.records[0].iters, 800);
        assert!((doc.records[0].mean_ns - 123.456).abs() < 1e-9);
    }

    #[test]
    fn legacy_v1_documents_still_parse() {
        // A v1 document: no env block, no per-record metadata.
        let json = format!(
            "{{\"schema\": \"{SCHEMA_V1}\", \"results\": [\
             {{\"id\": \"a/b\", \"batch_iters\": 1, \"iters\": 10, \
             \"samples\": 5, \"trimmed\": 0, \"mean_ns\": 2.0, \
             \"median_ns\": 2.0, \"p95_ns\": 3.0, \"stddev_ns\": 0.5, \
             \"min_ns\": 1.0, \"max_ns\": 4.0}}]}}"
        );
        let doc = parse_document(&json).expect("v1 parses");
        assert_eq!(doc.schema, SCHEMA_V1);
        assert_eq!(doc.env, None);
        assert_eq!(doc.records.len(), 1);
        assert_eq!(doc.records[0].mesh, None);
        assert_eq!(parse_report(&json).expect("compat").len(), 1);
    }

    #[test]
    fn v2_without_env_is_rejected() {
        let json = to_json(&env(), &[&rec("a/b")]).replace(
            "\"env\": {\"threads\": 4, \"available_parallelism\": 8, \"os\": \"linux\"},",
            "",
        );
        let err = parse_document(&json).unwrap_err();
        assert!(err.contains("requires an \"env\""), "got: {err}");
    }

    #[test]
    fn rejects_wrong_schema() {
        let json = to_json(&env(), &[&rec("a/b")]).replace(SCHEMA, "bogus-v0");
        assert!(parse_report(&json).unwrap_err().contains("unknown schema"));
    }

    #[test]
    fn rejects_missing_field() {
        let json = to_json(&env(), &[&rec("a/b")]).replace("\"p95_ns\"", "\"q95_ns\"");
        assert!(parse_report(&json).unwrap_err().contains("p95_ns"));
    }

    #[test]
    fn rejects_malformed_syntax() {
        assert!(parse_report("{\"schema\": ").is_err());
        assert!(parse_report("[]").is_err());
        assert!(parse_report("{} trailing").is_err());
    }

    #[test]
    fn rejects_unordered_stats() {
        let mut bad = rec("a/b");
        bad.min_ns = 1.0e9; // above median
        let json = to_json(&env(), &[&bad]);
        assert!(parse_report(&json).unwrap_err().contains("out of order"));
    }

    #[test]
    fn empty_results_are_valid() {
        let json = to_json(&env(), &[]);
        assert_eq!(parse_report(&json).expect("valid").len(), 0);
    }

    #[test]
    fn env_capture_is_sane() {
        let e = BenchEnv::capture();
        assert!(e.threads >= 1);
        assert!(e.available_parallelism >= 1);
        assert!(!e.os.is_empty());
    }
}
