//! Offline stand-in for the real `criterion` crate.
//!
//! Implements the subset the bench harnesses use: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size` and `finish`), `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark is warmed up briefly, then timed over a fixed wall-clock budget;
//! the mean iteration time is printed. No statistical analysis, HTML reports,
//! or regression detection — swap the path dependency for the registry crate
//! when a registry is reachable; the bench sources compile unchanged.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Total measurement budget per benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stub sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`: times the closure passed to [`iter`].
///
/// [`iter`]: Bencher::iter
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    // Warm up and estimate a batch size that keeps batches around 10 ms.
    let mut per_iter = time_batch(&mut f, 1);
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARMUP_BUDGET && per_iter < Duration::from_millis(10) {
        per_iter = time_batch(&mut f, 1);
    }
    let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut iters: u64 = 0;
    while total < MEASURE_BUDGET {
        let elapsed = time_batch(&mut f, batch);
        if elapsed.is_zero() {
            // The closure never called `Bencher::iter` (or it is free):
            // nothing to measure, and looping would never fill the budget.
            println!("bench {id:<48} skipped (no Bencher::iter call)");
            return;
        }
        total += elapsed;
        iters += batch;
    }

    let mean_ns = total.as_nanos() as f64 / iters as f64;
    println!(
        "bench {id:<48} {:>14}/iter ({iters} iters)",
        fmt_ns(mean_ns)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Groups bench functions under one runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("stub/self_test", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_composes_names_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
