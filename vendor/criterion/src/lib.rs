//! Offline stand-in for the real `criterion` crate.
//!
//! Implements the subset the bench harnesses use: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size` and `finish`), `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — plus a
//! statistics layer the registry crate would provide: every benchmark is
//! warmed up, measured as a series of fixed-size batches, IQR-trimmed for
//! outliers, and summarized as mean/median/p95/std-dev. `criterion_main!`
//! additionally writes one machine-readable `BENCH_<group>.json` per id
//! prefix (see [`report`]) so perf baselines can be committed and diffed.
//!
//! Environment knobs (both optional):
//!
//! * `HOTNOC_BENCH_BUDGET_MS` — measurement budget per benchmark in
//!   milliseconds (default 300). CI smoke jobs set this low.
//! * `HOTNOC_BENCH_DIR` — directory receiving `BENCH_*.json` (default `.`).

pub mod report;

use report::{BenchEnv, BenchRecord};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target number of timing samples per benchmark.
const SAMPLE_TARGET: u32 = 64;
/// Hard cap on collected samples (guards against a budget raise).
const SAMPLE_CAP: usize = 512;

/// Completed measurements, drained by [`write_reports`].
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn measure_budget() -> Duration {
    let ms = std::env::var("HOTNOC_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300)
        .max(1);
    Duration::from_millis(ms)
}

/// Stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Scenario metadata stamped onto subsequent records (`hotnoc-bench-v2`
/// `mesh`/`threads` fields). Not part of the real criterion API; baseline
/// comparison needs it for apples-to-apples matching.
#[derive(Debug, Clone, Default)]
struct RecordMeta {
    mesh: Option<String>,
    threads: Option<u64>,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, &RecordMeta::default(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            meta: RecordMeta::default(),
        }
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    meta: RecordMeta,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stub sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Tags every subsequent record of this group with the scenario's mesh
    /// and sweep thread count (the v2 schema's per-record metadata).
    /// Harness extension, not part of the real criterion API.
    pub fn meta(&mut self, mesh: &str, threads: u64) -> &mut Self {
        self.meta = RecordMeta {
            mesh: Some(mesh.to_string()),
            threads: Some(threads),
        };
        self
    }

    /// Clears metadata set by [`BenchmarkGroup::meta`].
    pub fn clear_meta(&mut self) -> &mut Self {
        self.meta = RecordMeta::default();
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, &self.meta, f);
        self
    }

    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`: times the closure passed to [`iter`].
///
/// [`iter`]: Bencher::iter
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, meta: &RecordMeta, mut f: F) {
    let budget = measure_budget();
    let warmup = (budget / 6).max(Duration::from_millis(5));

    // Warm up caches/allocators and estimate the per-iteration cost.
    let mut per_iter = time_batch(&mut f, 1);
    let warm_start = Instant::now();
    while warm_start.elapsed() < warmup && per_iter < budget / 10 {
        per_iter = time_batch(&mut f, 1);
    }

    // Size batches so roughly SAMPLE_TARGET of them fill the budget.
    let per_sample = budget.as_nanos() / SAMPLE_TARGET as u128;
    let batch = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::new();
    let mut total = Duration::ZERO;
    let mut iters: u64 = 0;
    while total < budget && samples_ns.len() < SAMPLE_CAP {
        let elapsed = time_batch(&mut f, batch);
        if elapsed.is_zero() {
            // The closure never called `Bencher::iter` (or it is free):
            // nothing to measure, and looping would never fill the budget.
            println!("bench {id:<48} skipped (no Bencher::iter call)");
            return;
        }
        samples_ns.push(elapsed.as_nanos() as f64 / batch as f64);
        total += elapsed;
        iters += batch;
    }

    let mut record = summarize(id, batch, iters, samples_ns);
    record.mesh.clone_from(&meta.mesh);
    record.threads = meta.threads;
    println!(
        "bench {id:<48} {:>12} median {:>12} p95 {:>10} sd ({} samples, {} trimmed, {iters} iters)",
        fmt_ns(record.median_ns),
        fmt_ns(record.p95_ns),
        fmt_ns(record.stddev_ns),
        record.samples,
        record.trimmed,
    );
    RESULTS.lock().expect("results poisoned").push(record);
}

/// IQR-trims `samples_ns` and reduces it to a [`BenchRecord`].
fn summarize(id: &str, batch: u64, iters: u64, mut samples_ns: Vec<f64>) -> BenchRecord {
    samples_ns.sort_by(f64::total_cmp);
    let q = |s: &[f64], p: f64| -> f64 {
        // Nearest-rank on the sorted slice; robust for small sample counts.
        let idx = ((p * s.len() as f64).ceil() as usize).clamp(1, s.len()) - 1;
        s[idx]
    };
    let raw = samples_ns.len();
    let (q1, q3) = (q(&samples_ns, 0.25), q(&samples_ns, 0.75));
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = samples_ns
        .iter()
        .copied()
        .filter(|&s| (lo..=hi).contains(&s))
        .collect();
    let kept = if kept.is_empty() { samples_ns } else { kept };

    let n = kept.len() as f64;
    let mean = kept.iter().sum::<f64>() / n;
    let var = kept.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    BenchRecord {
        id: id.to_string(),
        mesh: None,
        threads: None,
        batch_iters: batch,
        iters,
        samples: kept.len() as u64,
        trimmed: (raw - kept.len()) as u64,
        mean_ns: mean,
        median_ns: q(&kept, 0.5),
        p95_ns: q(&kept, 0.95),
        stddev_ns: var.sqrt(),
        min_ns: kept[0],
        max_ns: *kept.last().expect("non-empty"),
    }
}

/// Writes one `BENCH_<group>.json` per id prefix (the segment before the
/// first `/`) into `HOTNOC_BENCH_DIR` (default: the working directory), then
/// clears the in-process result registry. Called by `criterion_main!`.
pub fn write_reports() {
    let mut results = RESULTS.lock().expect("results poisoned");
    if results.is_empty() {
        return;
    }
    let dir = std::env::var("HOTNOC_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let mut groups: Vec<(String, Vec<&BenchRecord>)> = Vec::new();
    for r in results.iter() {
        let prefix: String =
            r.id.split('/')
                .next()
                .unwrap_or("misc")
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
        match groups.iter_mut().find(|(p, _)| *p == prefix) {
            Some((_, v)) => v.push(r),
            None => groups.push((prefix, vec![r])),
        }
    }
    let env = BenchEnv::capture();
    for (prefix, records) in &groups {
        let path = format!("{dir}/BENCH_{prefix}.json");
        let json = report::to_json(&env, records);
        match std::fs::write(&path, json) {
            Ok(()) => println!("[bench report saved to {path}]"),
            Err(e) => eprintln!("[failed to save {path}: {e}]"),
        }
    }
    results.clear();
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Groups bench functions under one runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group and writing the `BENCH_*.json` reports,
/// mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_reports();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.bench_function("stub/self_test", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_composes_names_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }

    #[test]
    fn summarize_orders_quantiles_and_trims_outliers() {
        let mut samples: Vec<f64> = (0..100).map(|i| 100.0 + i as f64).collect();
        samples.push(1.0e9); // gross outlier, must be trimmed
        let r = summarize("t/x", 10, 1000, samples);
        assert_eq!(r.trimmed, 1);
        assert_eq!(r.samples, 100);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.max_ns);
        assert!(r.max_ns < 1.0e6, "outlier survived: {}", r.max_ns);
        assert!(r.stddev_ns > 0.0);
    }

    #[test]
    fn summarize_handles_single_sample() {
        let r = summarize("t/one", 1, 1, vec![42.0]);
        assert_eq!(r.samples, 1);
        assert_eq!(r.median_ns, 42.0);
        assert_eq!(r.p95_ns, 42.0);
        assert_eq!(r.stddev_ns, 0.0);
    }
}
