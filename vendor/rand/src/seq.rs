//! Sequence helpers: the `SliceRandom` subset the workspace uses.

use crate::RngCore;

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}
