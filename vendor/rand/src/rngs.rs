//! The standard generator: xoshiro256++ seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// Deterministic stand-in for `rand::rngs::StdRng`.
///
/// xoshiro256++ passes BigCrush and is more than adequate for simulation
/// workloads; it is *not* cryptographically secure (neither is this stub's
/// contract — the real `StdRng` is ChaCha12).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}
