//! Offline stand-in for the real `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` and
//! `seq::SliceRandom::shuffle` — on top of a xoshiro256++ generator seeded via
//! SplitMix64. Deterministic per seed, which is all the simulators and tests
//! rely on. Swap the path dependency for the registry crate when a registry is
//! reachable; the statistical quality differs (real `StdRng` is ChaCha12) but
//! every API call site compiles unchanged.

pub mod rngs;
pub mod seq;

use std::ops::Range;

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the real crate's
/// `Standard: Distribution<T>` bound).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Half-open ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(-2.5..4.5);
            assert!((-2.5..4.5).contains(&f));
            let i: i32 = rng.gen_range(-10..-2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 should move at least one element");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
