//! Property-based integration tests of the cycle-accurate NoC: no loss, no
//! duplication, bounded latency, conservation of flits — under randomized
//! traffic on randomized mesh sizes.

use hotnoc::noc::{
    Mesh, Network, NocConfig, Packet, PacketClass, TrafficGenerator, TrafficPattern,
};
use proptest::prelude::*;

proptest! {
    // Raised from 24 once the step loop became occupancy-driven (ROADMAP
    // open item): the suite now affords a denser sample of the flow-control
    // state space.
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_offered_packets_are_delivered(
        side in 2usize..6,
        rate in 0.01f64..0.15,
        len in 1u32..8,
        seed in 0u64..500,
    ) {
        let mesh = Mesh::square(side).unwrap();
        let mut net = Network::new(mesh, NocConfig::default());
        let mut gen = TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, rate, len, seed);
        let (offered, drained) = gen.run(&mut net, 1_000, 300_000);
        prop_assert!(drained, "network failed to drain");
        prop_assert_eq!(net.stats().packets_delivered, offered);
        prop_assert_eq!(net.stats().flits_ejected, offered * len as u64);
        prop_assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn buffer_reads_equal_writes_after_drain(
        side in 2usize..6,
        seed in 0u64..500,
    ) {
        let mesh = Mesh::square(side).unwrap();
        let mut net = Network::new(mesh, NocConfig::default());
        let mut gen = TrafficGenerator::new(mesh, TrafficPattern::Transpose, 0.08, 4, seed);
        gen.run(&mut net, 500, 100_000);
        let snap = net.snapshot();
        let writes: u64 = snap.routers.iter().map(|r| r.buffer_writes).sum();
        let reads: u64 = snap.routers.iter().map(|r| r.buffer_reads).sum();
        prop_assert_eq!(writes, reads, "flits left buffered after drain");
    }

    #[test]
    fn latency_at_least_distance(
        sx in 0u8..4, sy in 0u8..4, dx in 0u8..4, dy in 0u8..4, len in 1u32..6,
    ) {
        prop_assume!((sx, sy) != (dx, dy));
        let mesh = Mesh::square(4).unwrap();
        let mut net = Network::new(mesh, NocConfig::default());
        let src = mesh.node_id_at(sx, sy).unwrap();
        let dst = mesh.node_id_at(dx, dy).unwrap();
        net.inject(Packet::new(0, src, dst, PacketClass::Data, len)).unwrap();
        net.run_until_idle(10_000).unwrap();
        let rec = net.drain_delivered(dst);
        prop_assert_eq!(rec.len(), 1);
        let hops = mesh.coord(src).manhattan(mesh.coord(dst)) as u64;
        // Each hop costs at least router + link cycles; serialization adds len.
        prop_assert!(rec[0].latency() >= hops + len as u64);
    }
}

#[test]
fn saturating_hotspot_traffic_eventually_drains() {
    let mesh = Mesh::square(4).unwrap();
    let mut net = Network::new(mesh, NocConfig::default());
    let hotspot = hotnoc::noc::Coord::new(2, 2);
    let mut gen = TrafficGenerator::new(
        mesh,
        TrafficPattern::Hotspot {
            nodes: vec![hotspot],
            fraction: 0.9,
        },
        0.3,
        4,
        11,
    );
    for _ in 0..500 {
        gen.tick(&mut net);
        net.step();
    }
    // Even past saturation, stopping injection lets everything drain: the
    // network is deadlock free under XY routing + credits + wormhole VCs.
    net.run_until_idle(500_000).expect("deadlock-free drain");
    assert_eq!(net.stats().packets_delivered, gen.generated());
}
