//! Golden-determinism guard for the `hotnoc-trace-v1` event stream.
//!
//! Two layers of protection for the tracing tentpole:
//!
//! 1. **Byte fingerprints of serialized traces** for configurations A–E
//!    under the same canned three-fault hotspot scenario that
//!    `golden_faults` pins. The fingerprint folds the exact
//!    `hotnoc-trace-v1` JSONL bytes, so any change to event emission
//!    order, payloads, or the canonical serialization shows up here. The
//!    CI matrix runs this test at `HOTNOC_THREADS` in {1, 2, 4} with
//!    `set_par_threshold(1)`, which pins the striped parallel sweep.
//!
//! 2. **Kill/resume and thread-count byte-equality** for campaign
//!    `--trace-dir`: a campaign interrupted by `max_jobs` and resumed at
//!    a different thread count must leave byte-identical per-job traces.
//!
//! The healthy golden fingerprints (`golden_determinism`) must NOT move
//! when tracing is wired in: a network without a sink takes the exact
//! same simulation path. That invariant is asserted here directly by
//! comparing a traced and an untraced run of the same scenario.
//!
//! If a fingerprint changes after an *intentional* change to event
//! emission or the trace schema, regenerate with
//! `cargo test --test golden_trace -- --nocapture` and update `GOLDEN`.

use hotnoc::core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc::noc::{Coord, FaultPlan, Mesh, Network, NocConfig, TrafficGenerator, TrafficPattern};
use hotnoc::obs::{TraceEvent, VecSink};
use hotnoc::scenario::runner::{run_campaign, RunnerOptions};
use hotnoc::scenario::spec::{FaultEventSpec, FaultKindSpec};
use hotnoc::scenario::{
    CampaignSpec, ChipKind, Mode, Policy, PolicyAxis, ScenarioSpec, TraceDoc, Workload,
};
use std::path::{Path, PathBuf};

/// FNV-1a over raw bytes — the serialized trace IS the contract.
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The same deterministic hotspot scenario as `golden_faults`.
fn scenario(id: ChipConfigId) -> (Mesh, TrafficGenerator) {
    let spec = ChipSpec::of(id, Fidelity::Quick);
    let side = spec.mesh_side;
    let mesh = Mesh::square(side).expect("mesh");
    let hot = spec.hottest_tile();
    let hot_coord = Coord::new((hot % side) as u8, (hot / side) as u8);
    let band = spec.warm_band_row() as u8;
    let pattern = TrafficPattern::Hotspot {
        nodes: vec![
            hot_coord,
            Coord::new(0, band),
            Coord::new(side as u8 - 1, band),
        ],
        fraction: 0.5,
    };
    let gen = TrafficGenerator::new(mesh, pattern, 0.15, 4, 0x5EED + id as u64);
    (mesh, gen)
}

/// The canned fault plan from `golden_faults`, scaled to the mesh side.
fn fault_plan(side: usize) -> FaultPlan {
    let s = side as u8;
    FaultPlan::new()
        .fail_router(100, Coord::new(1, 1))
        .fail_link(200, Coord::new(s - 2, s - 2), Coord::new(s - 1, s - 2))
        .repair_router(400, Coord::new(1, 1))
}

/// Drives the degraded scenario with an optional trace sink and returns
/// the final delivered-flit count (a cheap simulation fingerprint) plus
/// the trace events when a sink was installed.
fn run(id: ChipConfigId, traced: bool) -> (u64, Vec<TraceEvent>) {
    let side = ChipSpec::of(id, Fidelity::Quick).mesh_side;
    let (mesh, mut gen) = scenario(id);
    let mut net = Network::new(mesh, NocConfig::default());
    net.set_par_threshold(1);
    net.install_fault_plan(fault_plan(side))
        .expect("canned plan is valid on every config");
    if traced {
        net.set_trace_sink(Box::new(VecSink::new()));
    }
    for _ in 0..600 {
        gen.tick(&mut net);
        net.step();
    }
    let mut budget = 50_000u64;
    while net.in_flight() > 0 && budget > 0 {
        net.step();
        budget -= 1;
    }
    assert_eq!(net.in_flight(), 0, "{id}: degraded network failed to drain");
    let events = match net.take_trace_sink() {
        Some(mut sink) => sink.drain(),
        None => Vec::new(),
    };
    (net.stats().flits_ejected, events)
}

/// Serializes config `id`'s degraded trace and fingerprints the bytes.
fn trace_fingerprint(id: ChipConfigId) -> u64 {
    let (_, events) = run(id, true);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::RouterFailed { .. })),
        "{id}: trace missed the canned router failure"
    );
    let doc = TraceDoc::new(&format!("golden-{id}"), events);
    let text = doc.to_jsonl();
    // The serialized trace must survive its own parser byte-for-byte.
    let reparsed = TraceDoc::parse(&text).expect("golden trace parses");
    assert_eq!(reparsed.to_jsonl(), text, "{id}: trace round-trip unstable");
    fingerprint(text.as_bytes())
}

/// Byte fingerprints of the `hotnoc-trace-v1` documents recorded from the
/// implementation that introduced event tracing, configs A–E under the
/// canned three-fault plan.
const GOLDEN: [(ChipConfigId, u64); 5] = [
    (ChipConfigId::A, 0x6f1b8d257826ed75),
    (ChipConfigId::B, 0xbafdb67df6b1493d),
    (ChipConfigId::C, 0x208853081a8bcde4),
    (ChipConfigId::D, 0x01376e200508fbfa),
    (ChipConfigId::E, 0x4528345b4e8210dd),
];

#[test]
fn degraded_traces_reproduce_recorded_bytes_on_configs_a_to_e() {
    let results: Vec<(ChipConfigId, u64)> = GOLDEN
        .iter()
        .map(|&(id, _)| (id, trace_fingerprint(id)))
        .collect();
    for (id, got) in &results {
        println!("config {id}: trace fingerprint {got:#018x}");
    }
    for ((id, expected), (_, got)) in GOLDEN.iter().zip(&results) {
        assert_eq!(
            got, expected,
            "config {id}: serialized trace diverged from the recorded bytes \
             (expected {expected:#018x}, got {got:#018x})"
        );
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    for id in [ChipConfigId::A, ChipConfigId::C, ChipConfigId::E] {
        let (plain, none) = run(id, false);
        let (traced, events) = run(id, true);
        assert!(none.is_empty());
        assert!(!events.is_empty(), "{id}: traced run recorded nothing");
        assert_eq!(
            plain, traced,
            "{id}: installing a trace sink changed the simulation"
        );
    }
}

/// A small traffic campaign over the router-failure axis, so the per-job
/// traces carry fault epochs alongside the congestion/drop events.
fn faulty_campaign(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        seed: 77,
        fidelity: Fidelity::Quick,
        mode: Mode::Cosim,
        sim_time_ms: None,
        configs: vec![ChipKind::Config(ChipConfigId::A)],
        workloads: vec![
            Workload::Traffic {
                pattern: TrafficPattern::UniformRandom,
                rate: 0.08,
                packet_len: 3,
                cycles: 400,
            },
            Workload::Traffic {
                pattern: TrafficPattern::Transpose,
                rate: 0.08,
                packet_len: 3,
                cycles: 400,
            },
        ],
        policies: vec![PolicyAxis::Baseline],
        schemes: vec![],
        periods: vec![],
        offered_loads: vec![],
        failed_routers: vec![1],
        failed_links: vec![],
        seeds: vec![1, 2],
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hotnoc-golden-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn read_traces(dir: &Path) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("trace dir exists")
        .map(|e| e.expect("dir entry"))
        .filter(|e| e.file_name().to_string_lossy().starts_with("TRACE_"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read_to_string(e.path()).expect("trace readable"),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn campaign_trace_dir_is_byte_identical_across_kill_resume_and_threads() {
    let spec = faulty_campaign("golden-trace-camp");
    let total_jobs = spec.expand().len();
    let run_with =
        |tag: &str, threads: usize, kill_after: Option<usize>| -> Vec<(String, String)> {
            let dir = tmp_dir(tag);
            let opts = RunnerOptions {
                threads,
                out_dir: dir.clone(),
                max_jobs: kill_after,
                trace_dir: Some(dir.join("traces")),
                ..RunnerOptions::default()
            };
            let first = run_campaign(&spec, &opts).expect("campaign runs");
            if kill_after.is_some() {
                assert!(!first.is_complete(), "max_jobs should have interrupted");
                // Resume the killed campaign at a different thread count.
                let resumed = run_campaign(
                    &spec,
                    &RunnerOptions {
                        threads: 4,
                        max_jobs: None,
                        ..opts
                    },
                )
                .expect("campaign resumes");
                assert!(resumed.is_complete());
            }
            let traces = read_traces(&dir.join("traces"));
            let _ = std::fs::remove_dir_all(&dir);
            traces
        };
    let reference = run_with("ref-t1", 1, None);
    assert_eq!(reference.len(), total_jobs, "one trace per job");
    for (name, text) in &reference {
        let doc = TraceDoc::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            doc.events
                .iter()
                .any(|e| matches!(e, TraceEvent::RouterFailed { .. })),
            "{name}: campaign trace missed the canned fault"
        );
    }
    assert_eq!(
        reference,
        run_with("t2", 2, None),
        "--trace-dir bytes diverged between 1 and 2 threads"
    );
    assert_eq!(
        reference,
        run_with("t4", 4, None),
        "--trace-dir bytes diverged between 1 and 4 threads"
    );
    assert_eq!(
        reference,
        run_with("killed", 2, Some(1)),
        "--trace-dir bytes diverged across kill/resume"
    );
}

#[test]
fn scenario_trace_round_trips_through_the_file_format() {
    let side = ChipSpec::of(ChipConfigId::A, Fidelity::Quick).mesh_side as u8;
    let spec = ScenarioSpec {
        name: "golden-roundtrip".into(),
        chip: ChipKind::Config(ChipConfigId::A),
        workload: Workload::Traffic {
            pattern: TrafficPattern::UniformRandom,
            rate: 0.08,
            packet_len: 3,
            cycles: 500,
        },
        policy: Policy::Baseline,
        mode: Mode::Cosim,
        fidelity: Fidelity::Quick,
        sim_time_ms: None,
        faults: vec![FaultEventSpec {
            at: 100,
            kind: FaultKindSpec::FailRouter(Coord::new(side - 2, side - 2)),
        }],
        seed: 3,
    };
    let (_, events) = hotnoc::scenario::run_scenario_traced(&spec).expect("traced run");
    assert!(matches!(events.first(), Some(TraceEvent::JobStart { .. })));
    assert!(matches!(events.last(), Some(TraceEvent::JobFinish { .. })));
    let text = TraceDoc::new(&spec.name, events).to_jsonl();
    let doc = TraceDoc::parse(&text).expect("parses");
    assert_eq!(doc.to_jsonl(), text, "file format round-trip unstable");
}
