//! Fast end-to-end smoke test: one short co-simulation per chip
//! configuration A–E. Guards the whole pipeline (NoC → LDPC workload →
//! power → thermal → reconfiguration) without the cost of the full
//! paper-exhibit runs.

use hotnoc::core::configs::ChipConfigId;
use hotnoc::core::experiment::quick_demo;

#[test]
fn every_chip_config_runs_and_migration_cools() {
    for id in ChipConfigId::ALL {
        let out = quick_demo(id).unwrap_or_else(|e| panic!("config {id:?} failed: {e}"));
        assert!(
            out.base_peak_celsius.is_finite(),
            "config {id:?}: non-finite base peak"
        );
        assert!(
            out.base_peak_celsius > 40.0,
            "config {id:?}: base peak {:.1} °C not above ambient",
            out.base_peak_celsius
        );
        assert!(
            out.reduction_celsius.is_finite() && out.reduction_celsius > 0.0,
            "config {id:?}: migration should reduce the peak, got {:.2} °C",
            out.reduction_celsius
        );
        assert!(
            out.reduction_celsius < out.base_peak_celsius,
            "config {id:?}: reduction {:.1} exceeds the peak itself",
            out.reduction_celsius
        );
    }
}
