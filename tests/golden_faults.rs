//! Golden-determinism guard for degraded fabrics.
//!
//! Same contract as `golden_determinism`, with a canned three-fault plan
//! layered on top of each config's hotspot scenario: a router fails
//! mid-injection, a link fails later, and the router is repaired before
//! injection ends. The fingerprints pin the entire observable degraded
//! timeline — per-cycle stats including the drop/detour counters, both
//! reconfiguration epochs (fail and repair), the drain, and the final
//! delivered-packet sequences. Any change to surround routing, fault
//! teardown or drop accounting that alters a single cycle shows up here.
//!
//! If a fingerprint changes after an *intentional* semantic change to the
//! fault path, regenerate with
//! `cargo test --test golden_faults -- --nocapture` and update `GOLDEN`.

use hotnoc::core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc::noc::{Coord, FaultPlan, Mesh, Network, NocConfig, TrafficGenerator, TrafficPattern};

/// FNV-1a, the same stable 64-bit fold the healthy golden test uses.
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The same deterministic hotspot scenario as `golden_determinism`.
fn scenario(id: ChipConfigId) -> (Mesh, TrafficGenerator) {
    let spec = ChipSpec::of(id, Fidelity::Quick);
    let side = spec.mesh_side;
    let mesh = Mesh::square(side).expect("mesh");
    let hot = spec.hottest_tile();
    let hot_coord = Coord::new((hot % side) as u8, (hot / side) as u8);
    let band = spec.warm_band_row() as u8;
    let pattern = TrafficPattern::Hotspot {
        nodes: vec![
            hot_coord,
            Coord::new(0, band),
            Coord::new(side as u8 - 1, band),
        ],
        fraction: 0.5,
    };
    let gen = TrafficGenerator::new(mesh, pattern, 0.15, 4, 0x5EED + id as u64);
    (mesh, gen)
}

/// The canned fault plan, scaled to the config's mesh side: router (1, 1)
/// fails at cycle 100 and is repaired at 400; the east link out of
/// (side-2, side-2) fails at 200 and stays down through the drain.
fn fault_plan(side: usize) -> FaultPlan {
    let s = side as u8;
    FaultPlan::new()
        .fail_router(100, Coord::new(1, 1))
        .fail_link(200, Coord::new(s - 2, s - 2), Coord::new(s - 1, s - 2))
        .repair_router(400, Coord::new(1, 1))
}

/// Drives the degraded scenario and folds every observable per-cycle
/// quantity — including the fault counters — into one 64-bit fingerprint.
fn run_fingerprint(id: ChipConfigId) -> u64 {
    let side = ChipSpec::of(id, Fidelity::Quick).mesh_side;
    let (mesh, mut gen) = scenario(id);
    let mut net = Network::new(mesh, NocConfig::default());
    // Force striping at any worklist size so the CI matrix over
    // HOTNOC_THREADS in {1, 2, 4} genuinely pins the parallel path.
    net.set_par_threshold(1);
    net.install_fault_plan(fault_plan(side))
        .expect("canned plan is valid on every config");
    let mut fp = Fingerprint::new();

    // Phase 1: open-loop injection across both reconfiguration epochs.
    for _ in 0..600 {
        gen.tick(&mut net);
        net.step();
        let s = net.stats();
        fp.u64(s.packets_injected);
        fp.u64(s.packets_delivered);
        fp.u64(s.flits_injected);
        fp.u64(s.flits_ejected);
        fp.u64(s.total_packet_latency);
        fp.u64(s.max_packet_latency);
        fp.u64(s.flit_hops);
        fp.u64(s.packets_dropped);
        fp.u64(s.flits_dropped);
        fp.u64(s.detour_hops);
        fp.u64(net.in_flight());
    }

    // Phase 2: drain. The link is still down, so the drain exercises the
    // degraded routing function the whole way.
    let mut budget = 50_000u64;
    while net.in_flight() > 0 && budget > 0 {
        net.step();
        fp.u64(net.stats().flits_ejected);
        fp.u64(net.in_flight());
        budget -= 1;
    }
    assert_eq!(net.in_flight(), 0, "{id}: degraded network failed to drain");

    // Phase 3: idle tail.
    for _ in 0..50 {
        net.step();
    }
    fp.u64(net.cycle());

    // The delivered-packet sequences, node by node in delivery order.
    for rec in net.drain_all_delivered() {
        fp.u64(rec.packet_id.0);
        fp.u64(rec.src.index() as u64);
        fp.u64(rec.dst.index() as u64);
        fp.u64(rec.class as u64);
        fp.u64(rec.inject_cycle);
        fp.u64(rec.eject_cycle);
    }

    let s = net.stats();
    // The plan must actually bite: a fingerprint of an accidentally
    // healthy run would pin the wrong behaviour.
    assert!(
        s.packets_dropped > 0 || s.detour_hops > 0,
        "{id}: fault plan had no observable effect"
    );
    assert_eq!(
        s.packets_injected,
        s.packets_delivered + s.packets_dropped,
        "{id}: packet conservation violated"
    );
    fp.u64(s.packets_injected);
    fp.u64(s.packets_delivered);
    fp.u64(s.packets_dropped);
    fp.u64(s.flits_dropped);
    fp.u64(s.detour_hops);
    fp.u64(s.latency_histogram.count());
    for &b in s.latency_histogram.buckets() {
        fp.u64(b);
    }
    fp.0
}

/// Fingerprints recorded from the implementation that introduced runtime
/// faults, configurations A–E under the canned three-fault plan.
const GOLDEN: [(ChipConfigId, u64); 5] = [
    (ChipConfigId::A, 0x0e2aa81b7f0d7c04),
    (ChipConfigId::B, 0x0b8fc6ac3f7c0c32),
    (ChipConfigId::C, 0x1dbe16771e489b4c),
    (ChipConfigId::D, 0xda3919f027b2b637),
    (ChipConfigId::E, 0xde329a48e0dc2d40),
];

#[test]
fn degraded_step_loop_reproduces_recorded_semantics_on_configs_a_to_e() {
    let results: Vec<(ChipConfigId, u64)> = GOLDEN
        .iter()
        .map(|&(id, _)| (id, run_fingerprint(id)))
        .collect();
    for (id, got) in &results {
        println!("config {id}: fault fingerprint {got:#018x}");
    }
    for ((id, expected), (_, got)) in GOLDEN.iter().zip(&results) {
        assert_eq!(
            got, expected,
            "config {id}: degraded step loop diverged from the recorded \
             semantics (expected {expected:#018x}, got {got:#018x})"
        );
    }
}
