//! Integration of the reconfiguration engine with the NoC: §2.3's claim
//! that "the migration operation is totally transparent to the outside
//! world" thanks to address transformation at the I/O interface.

use hotnoc::noc::{AddressMap, Mesh, Network, NocConfig, Packet, PacketClass};
use hotnoc::reconfig::phases::PhaseCostModel;
use hotnoc::reconfig::{CumulativeMap, MigrationScheme, ReconfigController, StateSpec};

#[test]
fn external_traffic_follows_the_workload_across_migrations() {
    let mesh = Mesh::square(4).unwrap();
    let mut controller = ReconfigController::new(
        mesh,
        MigrationScheme::XYShift,
        1,
        &StateSpec::default(),
        &PhaseCostModel::default(),
    );

    // Logical destination the outside world always addresses.
    let logical_dst = mesh.node_id_at(1, 2).unwrap();

    for round in 0u64..6 {
        // A fresh network per round keeps the check simple; the address map
        // reflects the cumulative migration state.
        let mut net = Network::new(mesh, NocConfig::default());
        net.set_address_map(Box::new(controller.map().clone()));

        let src = mesh.node_id_at(0, 0).unwrap();
        let p = Packet::new(round, src, logical_dst, PacketClass::Data, 3);
        net.inject_external(p).unwrap();
        net.run_until_idle(10_000).unwrap();

        // The packet must arrive wherever the logical workload physically
        // lives right now.
        let expected_physical = controller
            .map()
            .logical_to_physical(mesh.coord(logical_dst));
        let delivered = net.drain_delivered(mesh.node_id(expected_physical).unwrap());
        assert_eq!(
            delivered.len(),
            1,
            "round {round}: packet did not follow the workload"
        );

        // Outbound traffic translates back to logical coordinates.
        let rec = delivered[0];
        let out = net.externalize(hotnoc::noc::DeliveredPacket {
            src: mesh.node_id(expected_physical).unwrap(),
            ..rec
        });
        assert_eq!(
            out.src, logical_dst,
            "round {round}: outbound source not re-translated"
        );

        controller.on_block_complete().expect("period of 1 block");
    }
}

#[test]
fn cumulative_map_closes_after_group_order() {
    let mesh = Mesh::square(5).unwrap();
    for scheme in MigrationScheme::FIGURE1 {
        let mut controller = ReconfigController::new(
            mesh,
            scheme,
            1,
            &StateSpec::default(),
            &PhaseCostModel::default(),
        );
        let order = scheme.order(mesh);
        for _ in 0..order {
            controller.on_block_complete().expect("fires each block");
        }
        assert!(
            controller.map().is_identity(),
            "{scheme}: map did not close after {order} migrations"
        );
    }
}

#[test]
fn migration_events_are_deterministic() {
    let mesh = Mesh::square(4).unwrap();
    let mk = || {
        ReconfigController::new(
            mesh,
            MigrationScheme::Rotation,
            2,
            &StateSpec::default(),
            &PhaseCostModel::default(),
        )
    };
    let mut a = mk();
    let mut b = mk();
    for _ in 0..8 {
        assert_eq!(a.on_block_complete(), b.on_block_complete());
    }
}

#[test]
fn controller_map_matches_direct_composition() {
    let mesh = Mesh::square(5).unwrap();
    let scheme = MigrationScheme::XYShift;
    let mut controller = ReconfigController::new(
        mesh,
        scheme,
        1,
        &StateSpec::default(),
        &PhaseCostModel::default(),
    );
    let mut reference = CumulativeMap::identity(mesh);
    for _ in 0..7 {
        controller.on_block_complete();
        reference.apply_scheme(scheme);
    }
    for c in mesh.iter_coords() {
        assert_eq!(
            controller.map().logical_to_physical(c),
            reference.logical_to_physical(c)
        );
    }
}
