//! Golden-determinism guard for the NoC step loop.
//!
//! The per-cycle behaviour of `Network::step` — statistics, in-flight
//! occupancy and the exact delivered-packet sequences — was recorded on the
//! seed (pre-worklist) implementation for one traffic scenario per chip
//! configuration A–E. Any refactor of the step loop must reproduce these
//! fingerprints bit-for-bit: the event-skipping optimization is required to
//! be cycle-for-cycle identical to the seed semantics, not merely
//! statistically equivalent.
//!
//! If this test ever fails after an intentional semantic change to the
//! router microarchitecture (not an optimization!), regenerate the constants
//! with `cargo test --test golden_determinism -- --nocapture` after
//! temporarily enabling the `print` below.

use hotnoc::core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc::noc::{Coord, Mesh, Network, NocConfig, TrafficGenerator, TrafficPattern};

/// FNV-1a, the same stable 64-bit fold the vendored proptest uses for seeds.
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One deterministic scenario per chip configuration: the config's mesh,
/// hotspot traffic aimed at its hottest tile, config-keyed RNG seed.
fn scenario(id: ChipConfigId) -> (Mesh, TrafficGenerator) {
    let spec = ChipSpec::of(id, Fidelity::Quick);
    let side = spec.mesh_side;
    let mesh = Mesh::square(side).expect("mesh");
    let hot = spec.hottest_tile();
    let hot_coord = Coord::new((hot % side) as u8, (hot / side) as u8);
    let band = spec.warm_band_row() as u8;
    let pattern = TrafficPattern::Hotspot {
        nodes: vec![
            hot_coord,
            Coord::new(0, band),
            Coord::new(side as u8 - 1, band),
        ],
        fraction: 0.5,
    };
    let gen = TrafficGenerator::new(mesh, pattern, 0.15, 4, 0x5EED + id as u64);
    (mesh, gen)
}

/// Drives the scenario and folds every observable per-cycle quantity into
/// one 64-bit fingerprint.
fn run_fingerprint(id: ChipConfigId) -> u64 {
    let (mesh, mut gen) = scenario(id);
    let mut net = Network::new(mesh, NocConfig::default());
    // The configs' meshes are small, so without this the striped sweep
    // would never engage: force striping at any worklist size so the CI
    // matrix over HOTNOC_THREADS in {1, 2, 4} genuinely pins the parallel
    // path to the same fingerprints as the serial one.
    net.set_par_threshold(1);
    let mut fp = Fingerprint::new();

    // Phase 1: open-loop injection, fingerprinting per-cycle stats.
    for _ in 0..600 {
        gen.tick(&mut net);
        net.step();
        let s = net.stats();
        fp.u64(s.packets_injected);
        fp.u64(s.packets_delivered);
        fp.u64(s.flits_injected);
        fp.u64(s.flits_ejected);
        fp.u64(s.total_packet_latency);
        fp.u64(s.max_packet_latency);
        fp.u64(s.flit_hops);
        fp.u64(net.in_flight());
    }

    // Phase 2: drain, still fingerprinting every cycle.
    let mut budget = 50_000u64;
    while net.in_flight() > 0 && budget > 0 {
        net.step();
        fp.u64(net.stats().flits_ejected);
        fp.u64(net.in_flight());
        budget -= 1;
    }
    assert_eq!(net.in_flight(), 0, "{id}: network failed to drain");

    // Phase 3: idle tail — trailing credits must land identically, and an
    // idle network must still advance its clock.
    for _ in 0..50 {
        net.step();
    }
    fp.u64(net.cycle());

    // The delivered-packet sequences, node by node in delivery order.
    for rec in net.drain_all_delivered() {
        fp.u64(rec.packet_id.0);
        fp.u64(rec.src.index() as u64);
        fp.u64(rec.dst.index() as u64);
        fp.u64(rec.class as u64);
        fp.u64(rec.inject_cycle);
        fp.u64(rec.eject_cycle);
    }

    let s = net.stats();
    fp.u64(s.packets_injected);
    fp.u64(s.packets_delivered);
    fp.u64(s.latency_histogram.count());
    for &b in s.latency_histogram.buckets() {
        fp.u64(b);
    }
    fp.0
}

/// Fingerprints recorded from the seed `Network::step` implementation
/// (commit e1b3fa3) for configurations A–E.
const GOLDEN: [(ChipConfigId, u64); 5] = [
    (ChipConfigId::A, 0x84b375b6989e4099),
    (ChipConfigId::B, 0x4bc0b1ce92c61231),
    (ChipConfigId::C, 0x6026d66b2136474c),
    (ChipConfigId::D, 0xd163f0425f6583e6),
    (ChipConfigId::E, 0x35062f3913c02104),
];

#[test]
fn step_loop_reproduces_seed_semantics_on_configs_a_to_e() {
    let results: Vec<(ChipConfigId, u64)> = GOLDEN
        .iter()
        .map(|&(id, _)| (id, run_fingerprint(id)))
        .collect();
    for (id, got) in &results {
        println!("config {id}: fingerprint {got:#018x}");
    }
    for ((id, expected), (_, got)) in GOLDEN.iter().zip(&results) {
        assert_eq!(
            got, expected,
            "config {id}: step loop diverged from the seed semantics \
             (expected {expected:#018x}, got {got:#018x})"
        );
    }
}
