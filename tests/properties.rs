//! Property-based tests (proptest) over the core invariants of the stack:
//! transformation group laws, address-map bijectivity, thermal linearity,
//! packetization round-trips and apportionment conservation.

use hotnoc::ldpc::{ClusterMapping, LdpcCode};
use hotnoc::noc::flit::packetize;
use hotnoc::noc::io_interface::check_bijection;
use hotnoc::noc::{Mesh, NodeId, Packet, PacketClass};
use hotnoc::reconfig::{CumulativeMap, MigrationScheme, OrbitDecomposition};
use hotnoc::thermal::{Floorplan, PackageConfig, RcNetwork};
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = MigrationScheme> {
    prop_oneof![
        Just(MigrationScheme::Rotation),
        Just(MigrationScheme::XMirror),
        Just(MigrationScheme::XYMirror),
        (1u8..6).prop_map(|offset| MigrationScheme::XTranslation { offset }),
        (1u8..6).prop_map(|offset| MigrationScheme::YTranslation { offset }),
        Just(MigrationScheme::XYShift),
    ]
}

proptest! {
    #[test]
    fn transforms_are_bijections(side in 2usize..9, scheme in scheme_strategy()) {
        let mesh = Mesh::square(side).unwrap();
        let perm = scheme.permutation(mesh);
        let mut seen = vec![false; mesh.len()];
        for p in perm {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn transform_order_restores_identity(side in 2usize..8, scheme in scheme_strategy()) {
        let mesh = Mesh::square(side).unwrap();
        let k = scheme.order(mesh);
        prop_assert!(k >= 1);
        for c in mesh.iter_coords() {
            prop_assert_eq!(scheme.apply_k(c, mesh, k), c);
        }
    }

    #[test]
    fn orbits_partition_and_average_conserves(
        side in 2usize..8,
        scheme in scheme_strategy(),
        seed in 0u64..1000,
    ) {
        let mesh = Mesh::square(side).unwrap();
        let d = OrbitDecomposition::new(scheme, mesh);
        let covered: usize = d.orbits().iter().map(Vec::len).sum();
        prop_assert_eq!(covered, mesh.len());

        // Pseudo-random power map, conserved under orbit averaging.
        let power: Vec<f64> = (0..mesh.len())
            .map(|i| ((seed.wrapping_mul(i as u64 + 1) % 97) as f64) / 10.0 + 0.1)
            .collect();
        let avg = d.time_averaged_power(&power);
        let before: f64 = power.iter().sum();
        let after: f64 = avg.iter().sum();
        prop_assert!((before - after).abs() < 1e-9);
        // Averaging never raises the maximum.
        let max_before = power.iter().cloned().fold(f64::MIN, f64::max);
        let max_after = avg.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(max_after <= max_before + 1e-12);
    }

    #[test]
    fn cumulative_maps_stay_bijective(
        side in 2usize..7,
        schemes in proptest::collection::vec(scheme_strategy(), 1..12),
    ) {
        let mesh = Mesh::square(side).unwrap();
        let mut map = CumulativeMap::identity(mesh);
        for s in schemes {
            map.apply_scheme(s);
            prop_assert_eq!(check_bijection(&map, mesh), None);
        }
    }

    #[test]
    fn packetize_roundtrip(len in 1u32..64, id in 0u64..10_000) {
        let p = Packet::new(id, NodeId::new(0), NodeId::new(1), PacketClass::Data, len);
        let flits = packetize(&p, 2, 0);
        prop_assert_eq!(flits.len() as u32, len);
        prop_assert!(flits[0].is_head());
        prop_assert!(flits.last().unwrap().is_tail());
        for (i, f) in flits.iter().enumerate() {
            prop_assert_eq!(f.seq as usize, i);
            prop_assert_eq!(f.packet, p.id);
        }
    }

    #[test]
    fn thermal_superposition(
        a_idx in 0usize..16,
        b_idx in 0usize..16,
        a_watts in 0.1f64..5.0,
        b_watts in 0.1f64..5.0,
    ) {
        let plan = Floorplan::mesh_grid(4, 4, 4.36e-6).unwrap();
        let net = RcNetwork::build(&plan, &PackageConfig::date05_defaults()).unwrap();
        let amb = net.ambient();
        let mut pa = vec![0.0; 16];
        pa[a_idx] = a_watts;
        let mut pb = vec![0.0; 16];
        pb[b_idx] = b_watts;
        let pab: Vec<f64> = pa.iter().zip(&pb).map(|(x, y)| x + y).collect();
        let ta = net.steady_state(&pa).unwrap();
        let tb = net.steady_state(&pb).unwrap();
        let tab = net.steady_state(&pab).unwrap();
        for i in 0..16 {
            let lhs = tab[i] - amb;
            let rhs = (ta[i] - amb) + (tb[i] - amb);
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }
    }

    #[test]
    fn mesh_roundtrips(w in 1usize..16, h in 1usize..16) {
        let mesh = Mesh::new(w, h).unwrap();
        for c in mesh.iter_coords() {
            let id = mesh.node_id(c).unwrap();
            prop_assert_eq!(mesh.coord(id), c);
        }
    }

    #[test]
    fn weighted_mapping_conserves_nodes(
        weights in proptest::collection::vec(0.1f64..5.0, 2..20),
    ) {
        let code = LdpcCode::gallager(240, 3, 6, 1).unwrap();
        let m = ClusterMapping::weighted(&code, &weights).unwrap();
        prop_assert_eq!(m.var_cluster().len(), 240);
        prop_assert_eq!(m.chk_cluster().len(), 120);
        // Every cluster owns at least one variable and one check.
        for cl in 0..weights.len() {
            prop_assert!(m.var_cluster().contains(&cl));
            prop_assert!(m.chk_cluster().contains(&cl));
        }
        // Ops are conserved.
        let total: u64 = m.ops_per_cluster(&code).iter().sum();
        prop_assert_eq!(total, 2 * code.edges() as u64);
    }
}
