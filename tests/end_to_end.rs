//! End-to-end integration: the full paper pipeline at reduced fidelity,
//! asserting the qualitative claims of §3 hold through the whole stack
//! (workload -> activity -> power -> thermal -> migration).

use hotnoc::core::chip::Chip;
use hotnoc::core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc::core::cosim::{predicted_reduction, run_cosim, CosimParams};
use hotnoc::reconfig::MigrationScheme;

fn chip(id: ChipConfigId) -> (Chip, hotnoc::core::chip::CalibratedPower) {
    let mut chip = Chip::build(ChipSpec::of(id, Fidelity::Quick)).expect("chip builds");
    let cal = chip.calibrate().expect("calibration succeeds");
    (chip, cal)
}

#[test]
fn every_config_calibrates_to_its_figure1_base() {
    for id in ChipConfigId::ALL {
        let (chip, cal) = chip(id);
        let temps = chip
            .steady_with_leakage(&cal.dynamic)
            .expect("steady state");
        let peak = temps.iter().cloned().fold(f64::MIN, f64::max);
        let target = chip.spec().base_peak_celsius;
        assert!(
            (peak - target).abs() < 0.1,
            "{id}: calibrated peak {peak:.2} vs target {target:.2}"
        );
    }
}

#[test]
fn rotation_and_xy_mirror_lead_on_even_meshes() {
    // §3: "For circuit configurations A and B, the rotational and X-Y
    // mirroring migrations reduce the peak temperature the most."
    for id in [ChipConfigId::A, ChipConfigId::B] {
        let (chip, cal) = chip(id);
        let pred = |s| predicted_reduction(&chip, &cal, s).expect("predict");
        let rot = pred(MigrationScheme::Rotation);
        let xym = pred(MigrationScheme::XYMirror);
        let others = [
            pred(MigrationScheme::XMirror),
            pred(MigrationScheme::XTranslation { offset: 1 }),
            pred(MigrationScheme::XYShift),
        ];
        for o in others {
            assert!(rot > o, "{id}: rotation {rot:.2} not above {o:.2}");
            assert!(
                xym > o - 1.5,
                "{id}: x-y mirror {xym:.2} too far below {o:.2}"
            );
        }
    }
}

#[test]
fn translation_leads_on_odd_meshes() {
    // §3: "for the larger configurations, translation is more effective."
    for id in [ChipConfigId::C, ChipConfigId::D, ChipConfigId::E] {
        let (chip, cal) = chip(id);
        let xys = predicted_reduction(&chip, &cal, MigrationScheme::XYShift).expect("predict");
        for s in [
            MigrationScheme::Rotation,
            MigrationScheme::XMirror,
            MigrationScheme::XYMirror,
        ] {
            let r = predicted_reduction(&chip, &cal, s).expect("predict");
            assert!(xys > r, "{id}: X-Y shift {xys:.2} not above {s} {r:.2}");
        }
    }
}

#[test]
fn rotation_cannot_cool_config_e_center() {
    // §3: the hotspots of E are near the centre, which rotation fixes.
    let (chip, cal) = chip(ChipConfigId::E);
    let rot = predicted_reduction(&chip, &cal, MigrationScheme::Rotation).expect("predict");
    assert!(
        rot.abs() < 0.5,
        "rotation should be ~useless on E's centre hotspot, got {rot:.2}"
    );
    let r = run_cosim(
        &chip,
        &cal,
        Some(MigrationScheme::Rotation),
        &CosimParams::quick(),
    )
    .expect("cosim");
    assert!(
        r.reduction < 0.5,
        "with migration energy, rotation on E must not help: {:.2}",
        r.reduction
    );
}

#[test]
fn warm_band_resists_right_shift_everywhere() {
    // §3: "one of the rows had a significantly higher power output ...
    // a warm band that right shifting alone is unable to distribute."
    for id in ChipConfigId::ALL {
        let (chip, cal) = chip(id);
        let rs = predicted_reduction(&chip, &cal, MigrationScheme::XTranslation { offset: 1 })
            .expect("predict");
        let best = MigrationScheme::FIGURE1
            .iter()
            .map(|&s| predicted_reduction(&chip, &cal, s).expect("predict"))
            .fold(f64::MIN, f64::max);
        assert!(
            rs < 0.62 * best,
            "{id}: right shift {rs:.2} rivals the best scheme {best:.2}"
        );
    }
}

#[test]
fn migration_throughput_penalty_shrinks_with_period() {
    let (chip, cal) = chip(ChipConfigId::A);
    let penalty = |blocks| {
        let params = CosimParams {
            period_blocks: blocks,
            ..CosimParams::quick()
        };
        run_cosim(&chip, &cal, Some(MigrationScheme::XYShift), &params)
            .expect("cosim")
            .throughput_penalty
    };
    let p1 = penalty(24);
    let p4 = penalty(96);
    let p8 = penalty(192);
    assert!(p1 > p4 && p4 > p8);
    // Quadrupling the period cuts the penalty ~4x (stall is constant).
    let ratio = p1 / p4;
    assert!((2.5..4.5).contains(&ratio), "ratio {ratio}");
}

#[test]
fn migration_preserves_total_compute() {
    // The permuted power maps used by the co-simulation conserve power.
    let (chip, cal) = chip(ChipConfigId::B);
    use hotnoc::reconfig::OrbitDecomposition;
    for s in MigrationScheme::FIGURE1 {
        let avg = OrbitDecomposition::new(s, chip.mesh()).time_averaged_power(&cal.dynamic);
        let before: f64 = cal.dynamic.iter().sum();
        let after: f64 = avg.iter().sum();
        assert!((before - after).abs() < 1e-9, "{s} lost power");
    }
}
