//! Quickstart: build the paper's configuration A, calibrate it against the
//! published base temperature, and run a short X-Y-shift migration
//! co-simulation.
//!
//! Run with: `cargo run --example quickstart`

use hotnoc::core::chip::Chip;
use hotnoc::core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc::core::cosim::{run_cosim, CosimParams};
use hotnoc::core::report::heatmap_ascii;
use hotnoc::reconfig::MigrationScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build configuration A: a 4x4 LDPC-decoder NoC (Quick fidelity
    //    keeps this example fast; use Fidelity::Full for paper-scale runs).
    let spec = ChipSpec::of(ChipConfigId::A, Fidelity::Quick);
    println!(
        "Building config {}: {}x{} mesh, {}-bit LDPC code, target base peak {:.2} C",
        spec.id, spec.mesh_side, spec.mesh_side, spec.code_n, spec.base_peak_celsius
    );
    let mut chip = Chip::build(spec)?;

    // 2. Measure switching activity on the cycle-accurate NoC and calibrate
    //    the per-tile power map to the paper's base operating point.
    let cal = chip.calibrate()?;
    println!(
        "Calibrated: block = {} cycles ({:.1} us), chip power = {:.1} W",
        cal.block_cycles,
        cal.block_seconds * 1e6,
        cal.total_dynamic
    );
    println!("\nPer-tile dynamic power (W):");
    println!("{}", heatmap_ascii(&cal.dynamic, 4, 4));

    // 3. Static thermal baseline.
    let base = chip.steady_with_leakage(&cal.dynamic)?;
    println!("Static (no-migration) temperatures (C):");
    println!("{}", heatmap_ascii(&base, 4, 4));

    // 4. Runtime reconfiguration: migrate every decoded block with the
    //    X-Y shift transformation.
    let result = run_cosim(
        &chip,
        &cal,
        Some(MigrationScheme::XYShift),
        &CosimParams::quick(),
    )?;
    println!(
        "X-Y shift migration, period {:.1} us:",
        result.period_seconds * 1e6
    );
    println!("  base peak:          {:.2} C", result.base_peak);
    println!("  migrated peak:      {:.2} C", result.peak);
    println!("  reduction:          {:.2} C", result.reduction);
    println!(
        "  throughput penalty: {:.2} %",
        result.throughput_penalty * 100.0
    );
    println!("  migrations run:     {}", result.migrations);
    Ok(())
}
