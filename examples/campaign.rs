//! Campaign engine walkthrough: define a custom campaign programmatically,
//! run it in parallel with resume-capable journaling, and read the results
//! back from the emitted `CAMPAIGN_*.json`.
//!
//! Run with `cargo run --release --example campaign`.

use hotnoc::core::configs::{ChipConfigId, Fidelity};
use hotnoc::noc::TrafficPattern;
use hotnoc::reconfig::MigrationScheme;
use hotnoc::scenario::runner::{
    parse_campaign_document, run_campaign, summary_table, RunnerOptions,
};
use hotnoc::scenario::{CampaignSpec, ChipKind, Mode, PolicyAxis, ScenarioOutcome, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small mixed campaign: a thermal sweep (two schemes x two periods;
    // the seed axis collapses for deterministic LDPC jobs) plus a traffic
    // sweep over three seeds — 7 jobs total.
    let spec = CampaignSpec {
        name: "example".to_string(),
        seed: 42,
        fidelity: Fidelity::Quick,
        mode: Mode::Cosim,
        sim_time_ms: None,
        configs: vec![ChipKind::Config(ChipConfigId::A)],
        workloads: vec![
            Workload::Ldpc,
            Workload::Traffic {
                pattern: TrafficPattern::Transpose,
                rate: 0.08,
                packet_len: 4,
                cycles: 1000,
            },
        ],
        policies: vec![PolicyAxis::Periodic],
        schemes: vec![MigrationScheme::XYShift, MigrationScheme::Rotation],
        periods: vec![8, 32],
        offered_loads: vec![],
        failed_routers: vec![],
        failed_links: vec![],
        seeds: vec![1, 2, 3],
    };
    println!("expanding {} jobs:", spec.expand().len());
    for job in spec.expand() {
        println!("  {}", job.name);
    }

    let out_dir = std::env::temp_dir().join("hotnoc-campaign-example");
    let run = run_campaign(
        &spec,
        &RunnerOptions {
            out_dir: out_dir.clone(),
            progress: true,
            ..RunnerOptions::default()
        },
    )?;
    println!("\n{}", summary_table(&run));

    // The artifact is machine-readable and self-describing: re-parse it and
    // pull the best thermal result back out.
    let artifact = run.json_path.expect("campaign completed");
    let doc = parse_campaign_document(&std::fs::read_to_string(&artifact)?)
        .map_err(std::io::Error::other)?;
    let best = doc
        .records
        .iter()
        .filter_map(|r| match &r.outcome {
            ScenarioOutcome::Cosim(m) => Some((r.spec.name.clone(), m.reduction)),
            _ => None,
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("cosim records exist");
    println!("best peak reduction: {:.2} C by {}", best.1, best.0);
    println!("artifact: {}", artifact.display());
    std::fs::remove_dir_all(&out_dir).ok();
    Ok(())
}
