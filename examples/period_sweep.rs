//! The §3 migration-period trade-off: shorter periods flatten the thermal
//! profile harder but stall the decoder more often. The paper's numbers:
//! 109.3 us -> 1.6 % throughput loss; 437.2 us -> < 0.4 % and the peak
//! rises by less than 0.1 C; 874.4 us -> < 0.2 %.
//!
//! Run with: `cargo run --example period_sweep` (add `--full` for
//! paper-scale fidelity; slower).

use hotnoc::core::configs::{ChipConfigId, Fidelity};
use hotnoc::core::cosim::CosimParams;
use hotnoc::core::experiment::run_period_sweep;
use hotnoc::core::report::period_ascii;
use hotnoc::reconfig::MigrationScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let (fidelity, params, periods): (_, _, &[u64]) = if full {
        (Fidelity::Full, CosimParams::default(), &[1, 4, 8])
    } else {
        // Quick-fidelity blocks are ~2.5 us, so 24/96/192 blocks span the
        // same absolute periods as the paper's 1/4/8 full-size blocks.
        (Fidelity::Quick, CosimParams::quick(), &[24, 96, 192])
    };
    let table = run_period_sweep(
        ChipConfigId::A,
        MigrationScheme::XYShift,
        periods,
        fidelity,
        &params,
    )?;
    println!("{}", period_ascii(&table));
    if let [first, .., last] = table.rows.as_slice() {
        println!(
            "Raising the period {}x cuts the penalty from {:.2}% to {:.2}% while the \
             peak rises only {:.3} C.",
            last.period_blocks / first.period_blocks,
            first.penalty_pct,
            last.penalty_pct,
            last.peak - first.peak
        );
    }
    Ok(())
}
