//! Exercises the LDPC workload end to end: code construction, systematic
//! encoding, AWGN transmission, iterative decoding, and the NoC traffic the
//! decoder induces — the workload behind the paper's thermal experiments.
//!
//! Run with: `cargo run --example ldpc_decode`

use hotnoc::ldpc::app::{ComputeModel, LdpcNocApp};
use hotnoc::ldpc::channel::AwgnChannel;
use hotnoc::ldpc::schedule::MessageParams;
use hotnoc::ldpc::{
    ClusterMapping, DecoderWorkspace, Encoder, LdpcCode, MinSumDecoder, SumProductDecoder,
};
use hotnoc::noc::{Mesh, Network, NocConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A (3,6)-regular Gallager code, rate ~1/2.
    let code = LdpcCode::gallager(1200, 3, 6, 7)?;
    let encoder = Encoder::new(&code)?;
    println!(
        "Code: n={}, checks={}, rate={:.3}, edges={}, k={}",
        code.n(),
        code.m(),
        code.rate(),
        code.edges(),
        encoder.k()
    );

    // Frame-error rate over an SNR sweep, min-sum vs sum-product. One
    // workspace serves every decode: steady state allocates nothing.
    let mut ws = DecoderWorkspace::for_code(&code);
    let mut rng = StdRng::seed_from_u64(1);
    println!(
        "\n{:>8} {:>14} {:>14} {:>12}",
        "Eb/N0", "min-sum FER", "sum-prod FER", "avg iters"
    );
    for snr_db in [1.5, 2.0, 2.5, 3.0, 3.5] {
        let trials = 40;
        let (mut ms_fail, mut sp_fail, mut iters) = (0, 0, 0usize);
        let mut chan_a = AwgnChannel::new(snr_db, code.rate(), 11);
        let mut chan_b = AwgnChannel::new(snr_db, code.rate(), 11);
        for _ in 0..trials {
            let msg: Vec<bool> = (0..encoder.k()).map(|_| rng.gen()).collect();
            let word = encoder.encode(&msg)?;
            let st_ms =
                MinSumDecoder::default().decode_with(&code, &chan_a.transmit(&word), &mut ws);
            if !(st_ms.converged && ws.bits() == &word[..]) {
                ms_fail += 1;
            }
            iters += st_ms.iterations;
            let st_sp =
                SumProductDecoder::default().decode_with(&code, &chan_b.transmit(&word), &mut ws);
            if !(st_sp.converged && ws.bits() == &word[..]) {
                sp_fail += 1;
            }
        }
        println!(
            "{snr_db:>7}dB {:>14.3} {:>14.3} {:>12.1}",
            ms_fail as f64 / trials as f64,
            sp_fail as f64 / trials as f64,
            iters as f64 / trials as f64
        );
    }

    // The decoder as a NoC application: one block on a 4x4 mesh.
    let mapping = ClusterMapping::contiguous(&code, 16)?;
    let mut app = LdpcNocApp::new(
        code,
        mapping,
        LdpcNocApp::identity_placement(16),
        MessageParams::default(),
        ComputeModel::default(),
    )?;
    let mut net = Network::new(Mesh::square(4)?, NocConfig::default());
    let run = app.run_block(&mut net, 10)?;
    println!(
        "\nOne 10-iteration block on a 4x4 NoC: {} cycles ({:.1} us at 500 MHz), \
         {} packets, {} flit-hops",
        run.cycles,
        run.cycles as f64 / 500.0,
        run.packets_delivered,
        net.stats().flit_hops
    );
    println!(
        "Mean packet latency: {:.1} cycles",
        net.stats().mean_latency().unwrap_or(0.0)
    );
    Ok(())
}
