//! Records a transient thermal trace of configuration E under rotation and
//! under X-Y shift, showing why rotation cannot cool a centre hotspot on an
//! odd mesh (§3 of the paper): the centre tile is a fixed point of the
//! rotation, so its temperature barely moves, while the X-Y shift walks the
//! hot workload across the die.
//!
//! Run with: `cargo run --example thermal_trace`
//! Writes `thermal_trace_<scheme>.csv` next to the binary.

use hotnoc::core::chip::Chip;
use hotnoc::core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc::core::report::heatmap_ascii;
use hotnoc::power::leakage;
use hotnoc::reconfig::{MigrationScheme, OrbitDecomposition};
use hotnoc::thermal::{Integrator, ThermalTrace, TransientSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut chip = Chip::build(ChipSpec::of(ChipConfigId::E, Fidelity::Quick))?;
    let cal = chip.calibrate()?;
    let base = chip.steady_with_leakage(&cal.dynamic)?;
    println!("Config E static temperatures (hotspot at the centre):");
    println!("{}", heatmap_ascii(&base, 5, 5));

    for scheme in [MigrationScheme::Rotation, MigrationScheme::XYShift] {
        let trace = simulate(&chip, &cal.dynamic, scheme)?;
        let stats = trace.stats().expect("non-empty trace");
        println!(
            "{scheme}: peak over {:.1} ms trace = {:.2} C (block {} hottest)",
            trace.duration() * 1e3,
            stats.peak,
            stats.peak_block
        );
        let path = format!(
            "thermal_trace_{}.csv",
            scheme.to_string().to_lowercase().replace([' ', '-'], "_")
        );
        std::fs::write(&path, trace.to_csv())?;
        println!("  trace written to {path}");
    }

    // The mechanism, analytically: the time-averaged power map.
    println!("\nTime-averaged power under rotation (centre unchanged):");
    let rot_avg = OrbitDecomposition::new(MigrationScheme::Rotation, chip.mesh())
        .time_averaged_power(&cal.dynamic);
    println!("{}", heatmap_ascii(&rot_avg, 5, 5));
    println!("Time-averaged power under X-Y shift (centre dispersed):");
    let xys_avg = OrbitDecomposition::new(MigrationScheme::XYShift, chip.mesh())
        .time_averaged_power(&cal.dynamic);
    println!("{}", heatmap_ascii(&xys_avg, 5, 5));
    Ok(())
}

/// A hand-rolled migration loop over the raw thermal API (the `cosim`
/// module packages this; the example shows the moving parts).
fn simulate(
    chip: &Chip,
    dynamic: &[f64],
    scheme: MigrationScheme,
) -> Result<ThermalTrace, Box<dyn std::error::Error>> {
    let mesh = chip.mesh();
    let dt = 10e-6;
    let period = 100e-6;
    let mut sim = TransientSim::new(chip.thermal(), dt, Integrator::BackwardEuler)?;
    sim.init_from_steady(dynamic)?;
    let mut trace = ThermalTrace::new(dt, dynamic.len());
    let areas = chip.tile_areas_mm2();

    let order = scheme.order(mesh);
    let mut k = 0usize;
    let mut since_migration = 0.0;
    for _ in 0..800 {
        // Power map for the current migration state.
        let mut power = vec![0.0; dynamic.len()];
        for (tile, &d) in dynamic.iter().enumerate() {
            let c = mesh.coord(hotnoc::noc::NodeId::new(tile as u16));
            let dst = scheme.apply_k(c, mesh, k % order);
            power[mesh.node_id(dst)?.index()] = d;
        }
        let leak = leakage::leakage_per_block(&areas, sim.block_temps(), chip.tech());
        for (p, l) in power.iter_mut().zip(&leak) {
            *p += l;
        }
        sim.step(&power)?;
        trace.push(sim.block_temps());
        since_migration += dt;
        if since_migration >= period {
            since_migration = 0.0;
            k += 1;
        }
    }
    Ok(trace)
}
