//! Grid-mode thermal refinement: HotSpot's block model resolves one
//! temperature per functional unit; grid mode subdivides each block for
//! sub-block resolution. This example compares the two on configuration A's
//! calibrated power map and shows the intra-block gradients block mode
//! cannot see.
//!
//! Run with: `cargo run --release --example grid_refinement`

use hotnoc::core::chip::Chip;
use hotnoc::core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc::core::report::heatmap_ascii;
use hotnoc::thermal::{Floorplan, GridModel, PackageConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut chip = Chip::build(ChipSpec::of(ChipConfigId::A, Fidelity::Quick))?;
    let cal = chip.calibrate()?;

    // Block mode (what the co-simulation uses).
    let block_temps = chip.thermal().steady_state(&cal.dynamic)?;
    let block_peak = block_temps.iter().cloned().fold(f64::MIN, f64::max);
    println!("Block mode (4x4 = 16 nodes), peak {block_peak:.2} C:");
    println!("{}", heatmap_ascii(&block_temps, 4, 4));

    // Grid mode with 3x3 cells per block.
    let plan = Floorplan::mesh_grid(4, 4, 4.36e-6)?;
    let grid = GridModel::build(&plan, &PackageConfig::date05_defaults(), 3)?;
    let cell_temps = grid.steady_state(&cal.dynamic)?;
    let grid_peak = cell_temps.iter().cloned().fold(f64::MIN, f64::max);
    let per_block_max = grid.max_per_block(&cell_temps);
    println!(
        "Grid mode (3x3 cells per block = 144 nodes), peak {grid_peak:.2} C \
         (delta vs block mode: {:+.2} C):",
        grid_peak - block_peak
    );
    println!("{}", heatmap_ascii(&per_block_max, 4, 4));

    // Intra-block gradient of the hottest block.
    let hottest = per_block_max
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty")
        .0;
    let cpb = grid.cells_per_block();
    let cells = &cell_temps[hottest * cpb..(hottest + 1) * cpb];
    let spread = cells.iter().cloned().fold(f64::MIN, f64::max)
        - cells.iter().cloned().fold(f64::MAX, f64::min);
    println!("Hottest block ({hottest}) internal cell temperatures (C):");
    println!("{}", heatmap_ascii(cells, 3, 3));
    println!("Intra-block spread: {spread:.3} C — invisible to block mode.");
    Ok(())
}
