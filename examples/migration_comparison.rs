//! Compares all five migration schemes of the paper's Figure 1 on one chip
//! configuration, together with the orbit analysis that explains the
//! outcome (fixed points, orbit lengths, §3's arguments).
//!
//! Run with: `cargo run --example migration_comparison [A|B|C|D|E]`

use hotnoc::core::chip::Chip;
use hotnoc::core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc::core::cosim::{predicted_reduction, run_cosim, CosimParams};
use hotnoc::noc::Mesh;
use hotnoc::reconfig::{MigrationScheme, OrbitDecomposition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let id = match std::env::args().nth(1).as_deref() {
        Some("B") => ChipConfigId::B,
        Some("C") => ChipConfigId::C,
        Some("D") => ChipConfigId::D,
        Some("E") => ChipConfigId::E,
        _ => ChipConfigId::A,
    };
    let spec = ChipSpec::of(id, Fidelity::Quick);
    let mesh = Mesh::square(spec.mesh_side)?;
    println!(
        "Configuration {id} ({}x{} mesh)\n",
        spec.mesh_side, spec.mesh_side
    );

    println!("Orbit structure (what each transform can and cannot move):");
    for scheme in MigrationScheme::FIGURE1 {
        let orbits = OrbitDecomposition::new(scheme, mesh);
        println!(
            "  {:<12} order {}  orbits {:>2}  fixed points {}  mean move {:.2} hops",
            scheme.to_string(),
            scheme.order(mesh),
            orbits.orbits().len(),
            orbits.fixed_points().len(),
            orbits.mean_move_distance(scheme),
        );
    }

    let mut chip = Chip::build(spec)?;
    let cal = chip.calibrate()?;
    println!(
        "\nBase peak {:.2} C; per-scheme outcome (short co-simulation):",
        chip.spec().base_peak_celsius
    );
    println!(
        "  {:<12} {:>12} {:>12} {:>12} {:>10}",
        "scheme", "predicted C", "measured C", "penalty %", "phases"
    );
    for scheme in MigrationScheme::FIGURE1 {
        let pred = predicted_reduction(&chip, &cal, scheme)?;
        let r = run_cosim(&chip, &cal, Some(scheme), &CosimParams::quick())?;
        println!(
            "  {:<12} {:>12.2} {:>12.2} {:>12.2} {:>10}",
            scheme.to_string(),
            pred,
            r.reduction,
            r.throughput_penalty * 100.0,
            r.phases
        );
    }
    println!(
        "\n(predicted = orbit-averaged steady state, an upper bound; measured\n\
         includes migration energy and finite-period ripple)"
    );
    Ok(())
}
