//! Runtime-adaptive migration-function selection — the extension §2.3 of
//! the paper enables ("allowing dynamic alteration of the migration
//! function at runtime"): one migration unit, re-programmed each period to
//! whichever transform best flattens the current power map.
//!
//! The paper's Figure 1 shows the best fixed scheme differs per chip
//! (rotation on the 4x4s, translation on the 5x5s); the adaptive policy
//! recovers near-best behaviour on every configuration without knowing the
//! chip in advance.
//!
//! Run with: `cargo run --release --example adaptive_migration`

use hotnoc::core::adaptive::run_adaptive_cosim;
use hotnoc::core::chip::Chip;
use hotnoc::core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc::core::cosim::{run_cosim, CosimParams};
use hotnoc::reconfig::MigrationScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>14} {:>14} {:>24}",
        "config", "best fixed C", "adaptive C", "schemes chosen"
    );
    for id in ChipConfigId::ALL {
        let mut chip = Chip::build(ChipSpec::of(id, Fidelity::Quick))?;
        let cal = chip.calibrate()?;
        let params = CosimParams::quick();

        let mut best_fixed = f64::MIN;
        let mut best_scheme = MigrationScheme::XYShift;
        for scheme in MigrationScheme::FIGURE1 {
            let r = run_cosim(&chip, &cal, Some(scheme), &params)?;
            if r.reduction > best_fixed {
                best_fixed = r.reduction;
                best_scheme = scheme;
            }
        }

        let adaptive = run_adaptive_cosim(&chip, &cal, &params)?;
        let mut tally: Vec<(String, usize)> = Vec::new();
        for s in &adaptive.schedule {
            let name = s.to_string();
            match tally.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => tally.push((name, 1)),
            }
        }
        let summary = tally
            .iter()
            .map(|(n, c)| format!("{n}x{c}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{:<8} {:>9.2} ({}) {:>14.2} {:>24}",
            id.to_string(),
            best_fixed,
            best_scheme,
            adaptive.reduction,
            summary
        );
    }
    println!("\n(reduced fidelity; the adaptive policy re-evaluates the orbit-average");
    println!(" predictor on the live power map at every migration point)");
    Ok(())
}
