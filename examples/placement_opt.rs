//! Demonstrates the paper's baseline flow: thermally-aware static placement
//! minimizing peak temperature via simulated annealing, compared against
//! identity/random placements and a communication-aware blend.
//!
//! The paper: "our workload was mapped onto PEs using a thermally-aware
//! placement algorithm that minimizes the peak temperature. Using such a
//! thermally-aware mapping puts our method in a worst-case light."
//!
//! Run with: `cargo run --example placement_opt`

use hotnoc::ldpc::{ClusterMapping, LdpcCode};
use hotnoc::noc::Mesh;
use hotnoc::placement::{
    annealer::Annealer,
    cost::{BlendedCost, CommCost, PeakTempCost, PlacementCost},
    random::{identity_assignment, random_assignment},
    thermally_aware_placement,
};
use hotnoc::thermal::{Floorplan, PackageConfig, RcNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4x4 chip with a deliberately bad initial workload distribution:
    // all the heavy LDPC clusters bunched in one corner.
    let mesh = Mesh::square(4)?;
    let plan = Floorplan::mesh_grid(4, 4, 4.36e-6)?;
    let net = RcNetwork::build(&plan, &PackageConfig::date05_defaults())?;

    let mut cluster_power = vec![0.8; 16];
    for hot in [0usize, 1, 4, 5] {
        cluster_power[hot] = 2.6; // the hot quadrant
    }

    let cost = PeakTempCost::new(&net, &cluster_power);
    println!(
        "Identity placement peak: {:.2} C",
        cost.evaluate(&identity_assignment(16))
    );
    println!(
        "Random placement peak:   {:.2} C",
        cost.evaluate(&random_assignment(16, 3))
    );

    let annealer = Annealer::default();
    let result = thermally_aware_placement(&net, &cluster_power, &annealer);
    println!(
        "Thermally-aware (SA):    {:.2} C  (improvement {:.2} C)",
        result.peak_celsius,
        result.identity_peak_celsius - result.peak_celsius
    );
    println!("Assignment: {:?}", result.assignment);

    // Real flows also care about wire length: blend in communication cost
    // from the LDPC traffic matrix.
    let code = LdpcCode::gallager(960, 3, 6, 5)?;
    let mapping = ClusterMapping::contiguous(&code, 16)?;
    let traffic = mapping.traffic_matrix(&code);
    let comm = CommCost::new(mesh, &traffic);
    let thermal_cost = PeakTempCost::new(&net, &cluster_power);
    let blended = BlendedCost {
        primary: (&thermal_cost, 1.0),
        secondary: (&comm, 1e-5),
    };
    let (assignment, blended_cost) = annealer.optimize(16, &blended);
    println!(
        "\nBlended thermal+comm optimum: cost {:.3} (peak {:.2} C, comm {:.0} msg-hops)",
        blended_cost,
        thermal_cost.evaluate(&assignment),
        comm.evaluate(&assignment)
    );
    Ok(())
}
