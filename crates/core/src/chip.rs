//! Chip assembly: workload, activity measurement, power derivation and
//! calibration against the paper's base temperatures.

use crate::configs::ChipSpec;
use crate::error::CoreError;
use hotnoc_ldpc::app::{BlockRun, ComputeModel, LdpcNocApp};
use hotnoc_ldpc::schedule::MessageParams;
use hotnoc_ldpc::{ClusterMapping, LdpcCode};
use hotnoc_noc::{Mesh, Network, NocConfig};
use hotnoc_power::{leakage, pe_power, router_power, TechParams, TileActivity};
use hotnoc_thermal::{Floorplan, PackageConfig, RcNetwork};

/// The paper's functional-unit area: 4.36 mm² per PE tile.
pub const TILE_AREA_M2: f64 = 4.36e-6;

/// A fully assembled chip configuration ready for co-simulation.
#[derive(Debug)]
pub struct Chip {
    spec: ChipSpec,
    mesh: Mesh,
    thermal: RcNetwork,
    tech: TechParams,
    noc_cfg: NocConfig,
    app: LdpcNocApp,
}

/// The calibrated per-tile power model of a chip configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedPower {
    /// Dynamic power per tile (W), scaled so the steady-state peak
    /// (including leakage) hits the configuration's base temperature.
    pub dynamic: Vec<f64>,
    /// The scale factor applied to the raw activity-derived powers.
    pub scale: f64,
    /// Cycles per decoded block measured on the cycle-accurate NoC.
    pub block_cycles: u64,
    /// Seconds per decoded block at the configured clock.
    pub block_seconds: f64,
    /// Total calibrated dynamic chip power (W).
    pub total_dynamic: f64,
    /// The raw block-run measurement behind the power map.
    pub block_run: BlockRun,
}

impl Chip {
    /// Builds the chip: LDPC code, weighted cluster mapping, NoC
    /// application, floorplan and thermal network.
    ///
    /// # Errors
    ///
    /// Propagates construction failures from the substrates.
    pub fn build(spec: ChipSpec) -> Result<Chip, CoreError> {
        let mesh = Mesh::square(spec.mesh_side)?;
        let code = LdpcCode::gallager(spec.code_n, spec.wc, spec.wr, spec.seed)?;
        let mapping = ClusterMapping::weighted(&code, &spec.tile_weights)?;
        let app = LdpcNocApp::new(
            code,
            mapping,
            LdpcNocApp::identity_placement(spec.n_tiles()),
            MessageParams::default(),
            ComputeModel::default(),
        )?;
        let plan = Floorplan::mesh_grid(spec.mesh_side, spec.mesh_side, TILE_AREA_M2)?;
        let thermal = RcNetwork::build(&plan, &PackageConfig::date05_defaults())?;
        Ok(Chip {
            spec,
            mesh,
            thermal,
            tech: TechParams::ldpc_160nm(),
            noc_cfg: NocConfig::default(),
            app,
        })
    }

    /// The configuration specification.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// The mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The thermal network.
    pub fn thermal(&self) -> &RcNetwork {
        &self.thermal
    }

    /// The technology parameters.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// The NoC configuration (clock, flit width, buffering).
    pub fn noc_config(&self) -> &NocConfig {
        &self.noc_cfg
    }

    /// Per-tile areas in mm² (uniform grid).
    pub fn tile_areas_mm2(&self) -> Vec<f64> {
        vec![TILE_AREA_M2 * 1e6; self.spec.n_tiles()]
    }

    /// Runs one block on the cycle-accurate NoC, derives per-tile dynamic
    /// power from the measured switching activity, and calibrates its scale
    /// so the steady-state peak (with temperature-coupled leakage) equals
    /// the configuration's base peak temperature — the paper's measured
    /// operating point.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Noc`] if the block simulation fails to drain.
    /// * [`CoreError::CalibrationFailed`] if no scale reaches the target.
    pub fn calibrate(&mut self) -> Result<CalibratedPower, CoreError> {
        let mut net = Network::new(self.mesh, self.noc_cfg);
        let iterations = self.spec.iterations;
        let run = self.app.run_block(&mut net, iterations)?;

        // Raw per-tile dynamic power over the block window.
        let n = self.spec.n_tiles();
        let mut raw = vec![0.0f64; n];
        for (tile, slot) in raw.iter_mut().enumerate() {
            let r = run.activity.routers[tile];
            let act = TileActivity {
                buffer_writes: r.buffer_writes,
                buffer_reads: r.buffer_reads,
                xbar_traversals: r.xbar_traversals,
                arbitrations: r.arbitrations,
                link_flits: r.total_link_flits(),
                bit_transitions: r.bit_transitions,
                pe_ops: run.ops_per_node[tile],
            };
            *slot = router_power::router_dynamic_power(&act, run.cycles, &self.tech)
                + pe_power::pe_dynamic_power(act.pe_ops, run.cycles, &self.tech);
        }

        let target = self.spec.base_peak_celsius;
        let scale = self.solve_scale(&raw, target)?;
        let dynamic: Vec<f64> = raw.iter().map(|p| p * scale).collect();
        let total_dynamic = dynamic.iter().sum();
        let block_seconds = self.noc_cfg.cycles_to_seconds(run.cycles);
        Ok(CalibratedPower {
            dynamic,
            scale,
            block_cycles: run.cycles,
            block_seconds,
            total_dynamic,
            block_run: run,
        })
    }

    /// Steady-state block temperatures under `dynamic` power plus
    /// temperature-coupled leakage (fixed-point iteration). Leakage input
    /// temperatures are clamped at 250 °C as a numerical guard — the
    /// exponential model is only meaningful in the operating range.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Thermal`] on a malformed power vector.
    pub fn steady_with_leakage(&self, dynamic: &[f64]) -> Result<Vec<f64>, CoreError> {
        let areas = self.tile_areas_mm2();
        let mut temps = self.thermal.steady_state(dynamic)?;
        for _ in 0..6 {
            let clamped: Vec<f64> = temps.iter().map(|t| t.min(250.0)).collect();
            let leak = leakage::leakage_per_block(&areas, &clamped, &self.tech);
            let total: Vec<f64> = dynamic.iter().zip(&leak).map(|(d, l)| d + l).collect();
            temps = self.thermal.steady_state(&total)?;
        }
        Ok(temps)
    }

    /// Bisects the dynamic-power scale so the leakage-coupled steady peak
    /// hits `target` °C. The bracket is seeded from the leakage-free
    /// solution, which is exact by linearity of the RC network.
    fn solve_scale(&self, raw: &[f64], target: f64) -> Result<f64, CoreError> {
        let peak_at = |s: f64| -> Result<f64, CoreError> {
            let dynamic: Vec<f64> = raw.iter().map(|p| p * s).collect();
            let temps = self.steady_with_leakage(&dynamic)?;
            Ok(temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
        };
        let amb = self.thermal.ambient();
        let peak1 = self
            .thermal
            .steady_state(raw)?
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        // NaN peaks must land in the error arm, hence the negated > rather
        // than <=.
        let bracket_ok = peak1 > amb && target > amb;
        if !bracket_ok {
            return Err(CoreError::CalibrationFailed {
                target,
                achieved: peak1,
            });
        }
        // Leakage only adds heat, so the true scale is at most the
        // leakage-free estimate.
        let s0 = (target - amb) / (peak1 - amb);
        let (mut lo, mut hi) = (s0 / 10.0, s0 * 1.5);
        let (p_lo, p_hi) = (peak_at(lo)?, peak_at(hi)?);
        if !(p_lo <= target && target <= p_hi) {
            return Err(CoreError::CalibrationFailed {
                target,
                achieved: if target < p_lo { p_lo } else { p_hi },
            });
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if peak_at(mid)? < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Mutable access to the application model (placement changes during
    /// full re-simulation experiments).
    pub fn app_mut(&mut self) -> &mut LdpcNocApp {
        &mut self.app
    }

    /// The application model.
    pub fn app(&self) -> &LdpcNocApp {
        &self.app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{ChipConfigId, Fidelity};

    #[test]
    fn quick_chip_calibrates_to_target() {
        let spec = ChipSpec::of(ChipConfigId::A, Fidelity::Quick);
        let target = spec.base_peak_celsius;
        let mut chip = Chip::build(spec).unwrap();
        let cal = chip.calibrate().unwrap();
        let temps = chip.steady_with_leakage(&cal.dynamic).unwrap();
        let peak = temps.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (peak - target).abs() < 0.05,
            "calibrated peak {peak} vs target {target}"
        );
        assert!(cal.block_cycles > 0);
        assert!(cal.total_dynamic > 1.0, "chip should burn watts");
    }

    #[test]
    fn warm_band_row_is_hottest_in_power() {
        let spec = ChipSpec::of(ChipConfigId::B, Fidelity::Quick);
        let band = spec.warm_band_row();
        let n = spec.mesh_side;
        let mut chip = Chip::build(spec).unwrap();
        let cal = chip.calibrate().unwrap();
        let row_power = |r: usize| -> f64 { cal.dynamic[r * n..(r + 1) * n].iter().sum() };
        for row in 0..n {
            if row != band {
                assert!(
                    row_power(band) > row_power(row),
                    "band row {band} not hottest"
                );
            }
        }
    }

    #[test]
    fn five_by_five_builds() {
        let spec = ChipSpec::of(ChipConfigId::E, Fidelity::Quick);
        let mut chip = Chip::build(spec).unwrap();
        let cal = chip.calibrate().unwrap();
        assert_eq!(cal.dynamic.len(), 25);
        // Centre tile carries the most dynamic power for config E.
        let hottest = cal
            .dynamic
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(hottest, 12);
    }
}
