//! # hotnoc-core — the DATE'05 co-simulation runtime
//!
//! Ties every substrate together into the paper's experimental flow:
//!
//! 1. [`configs`] defines the five chip configurations (A, B on 4x4 meshes;
//!    C, D, E on 5x5) with their thermally-placed workload distributions and
//!    the base peak temperatures reported in Figure 1.
//! 2. [`chip::Chip`] builds a configuration: LDPC code + cluster mapping
//!    (`hotnoc-ldpc`), cycle-accurate activity measurement (`hotnoc-noc`),
//!    power derivation and calibration (`hotnoc-power`), floorplan and RC
//!    thermal network (`hotnoc-thermal`).
//! 3. [`cosim`] runs the transient thermal co-simulation with periodic
//!    migration (`hotnoc-reconfig`), including migration state-transfer
//!    energy — "our simulations also include the energy consumed during the
//!    migration operation".
//! 4. [`experiment`] packages the paper's exhibits: Figure 1 (peak-
//!    temperature reductions), the migration-period sweep, and the migration
//!    cost table; [`report`] renders them.
//!
//! ```no_run
//! use hotnoc_core::configs::ChipConfigId;
//! use hotnoc_core::experiment::quick_demo;
//!
//! let outcome = quick_demo(ChipConfigId::A)?;
//! println!("config A base peak: {:.2} C", outcome.base_peak_celsius);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod chip;
pub mod configs;
pub mod cosim;
pub mod error;
pub mod experiment;
pub mod report;

pub use adaptive::{run_adaptive_cosim, run_adaptive_cosim_traced, AdaptiveResult};
pub use chip::{CalibratedPower, Chip};
pub use configs::{ChipConfigId, ChipSpec};
pub use cosim::{run_cosim, run_cosim_traced, CosimParams, CosimResult};
pub use error::CoreError;
