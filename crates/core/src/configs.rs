//! The paper's five chip configurations.
//!
//! "The 4x4 chip is evaluated with two different configurations (referred to
//! as A and B), while the 5x5 chip is evaluated with three different
//! configurations (C, D, E). Differences in thermal profiles and power
//! consumption between the configurations are due to the irregularity of the
//! communication patterns and the amount of computation mapped to a single
//! PE."
//!
//! Each configuration is captured by its per-tile workload weights — the
//! amount of LDPC computation the (thermally-aware, §2 of the paper)
//! placement flow assigned to each PE. The paper's chips are fixed
//! placed-and-routed artifacts; the weights below are calibrated so that the
//! resulting power maps reproduce the base peak temperatures of Figure 1
//! (A 85.44 °C, B 84.05 °C, C 75.17 °C, D 72.80 °C, E 75.98 °C over a 40 °C
//! ambient) and the structural features §3 describes: every configuration
//! carries one row of "significantly higher power output" (the warm band),
//! and configuration E's hotspots sit near the centre of the die.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one of the paper's configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipConfigId {
    /// 4x4, base peak 85.44 °C.
    A,
    /// 4x4, base peak 84.05 °C.
    B,
    /// 5x5, base peak 75.17 °C.
    C,
    /// 5x5, base peak 72.80 °C.
    D,
    /// 5x5, base peak 75.98 °C (hotspots near the centre).
    E,
}

impl ChipConfigId {
    /// All five configurations in Figure 1 order.
    pub const ALL: [ChipConfigId; 5] = [
        ChipConfigId::A,
        ChipConfigId::B,
        ChipConfigId::C,
        ChipConfigId::D,
        ChipConfigId::E,
    ];
}

impl std::str::FromStr for ChipConfigId {
    type Err = String;

    /// Parses a configuration letter, case-insensitively (`"a"`/`"A"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "A" => Ok(ChipConfigId::A),
            "B" => Ok(ChipConfigId::B),
            "C" => Ok(ChipConfigId::C),
            "D" => Ok(ChipConfigId::D),
            "E" => Ok(ChipConfigId::E),
            other => Err(format!("unknown chip configuration {other:?} (want A-E)")),
        }
    }
}

impl fmt::Display for ChipConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChipConfigId::A => "A",
            ChipConfigId::B => "B",
            ChipConfigId::C => "C",
            ChipConfigId::D => "D",
            ChipConfigId::E => "E",
        };
        f.write_str(s)
    }
}

/// Fidelity level: full-size workload for benchmark/figure regeneration,
/// reduced workload for fast unit/integration tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Paper-scale code and simulation horizon.
    Full,
    /// Small code and short horizon (seconds-fast in debug builds).
    Quick,
}

/// Full description of one chip configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Which configuration this is.
    pub id: ChipConfigId,
    /// Mesh side length (4 or 5).
    pub mesh_side: usize,
    /// The paper's base (no-migration) peak temperature for this
    /// configuration, °C — the calibration target.
    pub base_peak_celsius: f64,
    /// Per-tile workload weights, row-major (node-id order). Length
    /// `mesh_side^2`.
    pub tile_weights: Vec<f64>,
    /// LDPC block length.
    pub code_n: usize,
    /// Variable degree.
    pub wc: usize,
    /// Check degree.
    pub wr: usize,
    /// Code construction seed.
    pub seed: u64,
    /// Decoder iterations per block (fixed schedule, as in hardware).
    pub iterations: usize,
}

/// Per-tile weights of configuration A (4x4, row-major, y=0 first).
///
/// Structure: a strong warm band on the bottom edge row (hottest at (1,0))
/// plus warmth along that tile's wrap-diagonal class
/// {(1,0),(2,1),(3,2),(0,3)}. Wrap-diagonal classes are invariant under the
/// X-Y shift, which handicaps translation on this chip; rotation's orbits
/// cut across both the band and the diagonal, which is why Figure 1 shows
/// rotation and X-Y mirroring strongest on the even-dimensioned chips.
const WEIGHTS_A: [f64; 16] = [
    2.20, 3.20, 2.00, 1.70, // y = 0 (warm band)
    0.70, 0.70, 1.90, 0.70, // y = 1 (diagonal warmth at x=2)
    0.70, 0.70, 0.70, 1.80, // y = 2 (diagonal warmth at x=3)
    1.60, 0.70, 0.70, 0.70, // y = 3 (diagonal warmth at x=0)
];

/// Configuration B (4x4): warm band on the top edge row (hottest at (2,3))
/// with warmth along its wrap-diagonal class {(2,3),(3,0),(0,1),(1,2)}.
const WEIGHTS_B: [f64; 16] = [
    0.70, 0.70, 0.70, 1.50, // y = 0 (diagonal warmth at x=3)
    1.80, 0.70, 0.70, 0.70, // y = 1 (diagonal warmth at x=0)
    0.70, 1.90, 0.70, 0.70, // y = 2 (diagonal warmth at x=1)
    1.60, 2.10, 3.00, 1.90, // y = 3 (warm band)
];

/// Configuration C (5x5): a single strong warm band on row 1 and no
/// diagonal structure. On the odd mesh the X-Y shift walks every tile
/// through five distinct rows and columns (no fixed points), dispersing the
/// band completely; rotation's inner-ring orbits pass through two band
/// members ((1,1) and (3,1) share an orbit), which limits it — §3's
/// "translation is more effective" for the larger chips.
const WEIGHTS_C: [f64; 25] = [
    0.70, 0.75, 0.70, 0.75, 0.70, // y = 0
    2.60, 3.00, 2.40, 2.20, 2.00, // y = 1 (warm band)
    0.70, 0.70, 0.75, 0.70, 0.70, // y = 2
    0.65, 0.70, 0.70, 0.70, 0.65, // y = 3
    0.65, 0.70, 0.65, 0.70, 0.65, // y = 4
];

/// Configuration D (5x5): warm band on row 3, milder contrast (the coolest
/// chip, base 72.8 °C).
const WEIGHTS_D: [f64; 25] = [
    0.70, 0.75, 0.70, 0.75, 0.70, // y = 0
    0.70, 0.70, 0.75, 0.70, 0.70, // y = 1
    0.70, 0.75, 0.70, 0.70, 0.70, // y = 2
    2.20, 2.60, 2.90, 2.30, 2.10, // y = 3 (warm band)
    0.65, 0.70, 0.65, 0.70, 0.65, // y = 4
];

/// Configuration E (5x5): hotspots near the centre of the chip — the centre
/// tile and a warm band through the centre row. Rotation and mirroring fix
/// the centre of an odd mesh, so they cannot move the dominant hotspot at
/// all; with the reconfiguration energy added, §3 reports rotation
/// "actually results in higher peak temperatures for configuration E".
const WEIGHTS_E: [f64; 25] = [
    0.70, 0.75, 0.70, 0.75, 0.70, // y = 0
    0.80, 0.95, 1.50, 0.95, 0.80, // y = 1
    2.10, 2.40, 3.00, 2.40, 2.10, // y = 2 (warm band through the centre)
    0.80, 0.95, 1.50, 0.95, 0.80, // y = 3
    0.70, 0.75, 0.70, 0.75, 0.70, // y = 4
];

/// LDPC code size and decoder iterations per fidelity level. 4320 bits at
/// 20 iterations gives ~109 us blocks on the 4x4 chip at 500 MHz — the
/// paper's migration period granularity.
fn code_params(fidelity: Fidelity) -> (usize, usize) {
    match fidelity {
        Fidelity::Full => (4320, 20),
        Fidelity::Quick => (480, 4),
    }
}

impl ChipSpec {
    /// The specification of configuration `id` at the given fidelity.
    pub fn of(id: ChipConfigId, fidelity: Fidelity) -> ChipSpec {
        let (mesh_side, base_peak, weights): (usize, f64, &[f64]) = match id {
            ChipConfigId::A => (4, 85.44, &WEIGHTS_A),
            ChipConfigId::B => (4, 84.05, &WEIGHTS_B),
            ChipConfigId::C => (5, 75.17, &WEIGHTS_C),
            ChipConfigId::D => (5, 72.80, &WEIGHTS_D),
            ChipConfigId::E => (5, 75.98, &WEIGHTS_E),
        };
        let (code_n, iterations) = code_params(fidelity);
        ChipSpec {
            id,
            mesh_side,
            base_peak_celsius: base_peak,
            tile_weights: weights.to_vec(),
            code_n,
            wc: 3,
            wr: 6,
            seed: 0xDA7E_2005 + id as u64,
            iterations,
        }
    }

    /// A user-defined chip outside the paper's five configurations: a
    /// square `mesh_side` x `mesh_side` die with arbitrary per-tile
    /// workload weights, calibrated to `base_peak_celsius`. The LDPC code
    /// parameters follow `fidelity` exactly as for the named
    /// configurations.
    ///
    /// The `id` field of the returned spec is a placeholder
    /// ([`ChipConfigId::A`]): custom chips are identified by the scenario
    /// that owns them, not by a Figure 1 letter, and nothing in the
    /// co-simulation pipeline reads `id`.
    ///
    /// # Panics
    ///
    /// Panics if `tile_weights.len() != mesh_side * mesh_side`.
    pub fn custom(
        mesh_side: usize,
        tile_weights: Vec<f64>,
        base_peak_celsius: f64,
        fidelity: Fidelity,
    ) -> ChipSpec {
        assert_eq!(
            tile_weights.len(),
            mesh_side * mesh_side,
            "tile_weights must cover the {mesh_side}x{mesh_side} mesh"
        );
        let (code_n, iterations) = code_params(fidelity);
        ChipSpec {
            id: ChipConfigId::A,
            mesh_side,
            base_peak_celsius,
            tile_weights,
            code_n,
            wc: 3,
            wr: 6,
            seed: 0xDA7E_2005,
            iterations,
        }
    }

    /// Number of tiles (PEs).
    pub fn n_tiles(&self) -> usize {
        self.mesh_side * self.mesh_side
    }

    /// Index of the tile with the highest workload weight.
    pub fn hottest_tile(&self) -> usize {
        self.tile_weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty weights")
            .0
    }

    /// The warm-band row: the row with the highest total weight. §3: "In
    /// all test cases, one of the rows had a significantly higher power
    /// output than the remaining rows."
    pub fn warm_band_row(&self) -> usize {
        let n = self.mesh_side;
        (0..n)
            .max_by(|&a, &b| {
                let wa: f64 = self.tile_weights[a * n..(a + 1) * n].iter().sum();
                let wb: f64 = self.tile_weights[b * n..(b + 1) * n].iter().sum();
                wa.total_cmp(&wb)
            })
            .expect("non-empty mesh")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_well_formed() {
        for id in ChipConfigId::ALL {
            let spec = ChipSpec::of(id, Fidelity::Full);
            assert_eq!(spec.tile_weights.len(), spec.n_tiles());
            assert!(spec.tile_weights.iter().all(|&w| w > 0.0));
            assert!(spec.code_n.is_multiple_of(spec.wr));
            assert!(spec.base_peak_celsius > 70.0 && spec.base_peak_celsius < 90.0);
        }
    }

    #[test]
    fn mesh_sides_match_paper() {
        assert_eq!(ChipSpec::of(ChipConfigId::A, Fidelity::Full).mesh_side, 4);
        assert_eq!(ChipSpec::of(ChipConfigId::B, Fidelity::Full).mesh_side, 4);
        for id in [ChipConfigId::C, ChipConfigId::D, ChipConfigId::E] {
            assert_eq!(ChipSpec::of(id, Fidelity::Full).mesh_side, 5);
        }
    }

    #[test]
    fn base_peaks_match_figure1() {
        let peaks: Vec<f64> = ChipConfigId::ALL
            .iter()
            .map(|&id| ChipSpec::of(id, Fidelity::Full).base_peak_celsius)
            .collect();
        assert_eq!(peaks, vec![85.44, 84.05, 75.17, 72.80, 75.98]);
    }

    #[test]
    fn every_config_has_a_warm_band() {
        for id in ChipConfigId::ALL {
            let spec = ChipSpec::of(id, Fidelity::Full);
            let n = spec.mesh_side;
            let band = spec.warm_band_row();
            let band_sum: f64 = spec.tile_weights[band * n..(band + 1) * n].iter().sum();
            for row in 0..n {
                if row == band {
                    continue;
                }
                let sum: f64 = spec.tile_weights[row * n..(row + 1) * n].iter().sum();
                assert!(
                    band_sum > 1.3 * sum,
                    "{id}: row {row} rivals the warm band ({sum} vs {band_sum})"
                );
            }
        }
    }

    #[test]
    fn config_e_hotspot_is_central() {
        let spec = ChipSpec::of(ChipConfigId::E, Fidelity::Full);
        // Centre tile of a 5x5 in row-major order is index 12.
        assert_eq!(spec.hottest_tile(), 12);
        assert_eq!(spec.warm_band_row(), 2);
    }

    #[test]
    fn configs_a_b_hotspots_off_center() {
        for id in [ChipConfigId::A, ChipConfigId::B] {
            let spec = ChipSpec::of(id, Fidelity::Full);
            let hot = spec.hottest_tile();
            let (x, y) = (hot % 4, hot / 4);
            assert!(
                x == 0 || y == 0 || x == 3 || y == 3,
                "{id}: hottest tile ({x},{y}) not on the edge"
            );
        }
    }

    #[test]
    fn quick_fidelity_is_smaller() {
        let full = ChipSpec::of(ChipConfigId::A, Fidelity::Full);
        let quick = ChipSpec::of(ChipConfigId::A, Fidelity::Quick);
        assert!(quick.code_n < full.code_n);
        assert!(quick.iterations < full.iterations);
        assert_eq!(quick.tile_weights, full.tile_weights);
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = ChipConfigId::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names, vec!["A", "B", "C", "D", "E"]);
    }
}
