//! Error type unifying the substrate errors.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the co-simulation runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// NoC simulation failure.
    Noc(hotnoc_noc::NocError),
    /// LDPC construction/mapping failure.
    Ldpc(hotnoc_ldpc::LdpcError),
    /// Thermal model failure.
    Thermal(hotnoc_thermal::ThermalError),
    /// Calibration could not reach the target peak temperature.
    CalibrationFailed {
        /// The target peak (°C).
        target: f64,
        /// Closest achieved peak (°C).
        achieved: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Noc(e) => write!(f, "noc: {e}"),
            CoreError::Ldpc(e) => write!(f, "ldpc: {e}"),
            CoreError::Thermal(e) => write!(f, "thermal: {e}"),
            CoreError::CalibrationFailed { target, achieved } => write!(
                f,
                "calibration failed: target peak {target} C, achieved {achieved} C"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Noc(e) => Some(e),
            CoreError::Ldpc(e) => Some(e),
            CoreError::Thermal(e) => Some(e),
            CoreError::CalibrationFailed { .. } => None,
        }
    }
}

impl From<hotnoc_noc::NocError> for CoreError {
    fn from(e: hotnoc_noc::NocError) -> Self {
        CoreError::Noc(e)
    }
}

impl From<hotnoc_ldpc::LdpcError> for CoreError {
    fn from(e: hotnoc_ldpc::LdpcError) -> Self {
        CoreError::Ldpc(e)
    }
}

impl From<hotnoc_thermal::ThermalError> for CoreError {
    fn from(e: hotnoc_thermal::ThermalError) -> Self {
        CoreError::Thermal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(hotnoc_ldpc::LdpcError::InvalidWeights);
        assert!(e.to_string().contains("ldpc"));
        assert!(e.source().is_some());
        let c = CoreError::CalibrationFailed {
            target: 85.0,
            achieved: 60.0,
        };
        assert!(c.to_string().contains("85"));
        assert!(c.source().is_none());
    }
}
