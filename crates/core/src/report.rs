//! Rendering of experiment results as ASCII tables, CSV and heatmaps.

use crate::experiment::{Fig1Table, MigrationCostRow, PeriodTable};
use hotnoc_reconfig::MigrationScheme;
use std::fmt::Write as _;

/// Renders the regenerated Figure 1 as an ASCII table (reductions in °C).
pub fn fig1_ascii(table: &Fig1Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1: Reduction in Peak Temps (degrees C)");
    let _ = write!(out, "{:<14}", "Config (base)");
    for s in MigrationScheme::FIGURE1 {
        let _ = write!(out, "{:>12}", s.to_string());
    }
    let _ = writeln!(out);
    for row in &table.rows {
        let label = format!("{} ({:.2})", row.config, row.base_peak);
        let _ = write!(out, "{label:<14}");
        for r in &row.results {
            let _ = write!(out, "{:>12.2}", r.reduction);
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<14}", "Average");
    for a in table.average_reductions() {
        let _ = write!(out, "{a:>12.2}");
    }
    let _ = writeln!(out);
    out
}

/// Renders Figure 1 as CSV (`config,base_peak,rot,...`).
pub fn fig1_csv(table: &Fig1Table) -> String {
    let mut out = String::from("config,base_peak_c");
    for s in MigrationScheme::FIGURE1 {
        let _ = write!(out, ",{}", s.to_string().replace(' ', "_").to_lowercase());
    }
    out.push('\n');
    for row in &table.rows {
        let _ = write!(out, "{},{:.2}", row.config, row.base_peak);
        for r in &row.results {
            let _ = write!(out, ",{:.3}", r.reduction);
        }
        out.push('\n');
    }
    out
}

/// Renders the period sweep as an ASCII table.
pub fn period_ascii(table: &PeriodTable) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Migration period sweep — config {}, scheme {}",
        table.config, table.scheme
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>14} {:>10} {:>12}",
        "blocks", "period (us)", "penalty (%)", "peak (C)", "redn (C)"
    );
    for r in &table.rows {
        let _ = writeln!(
            out,
            "{:>8} {:>12.1} {:>14.2} {:>10.2} {:>12.2}",
            r.period_blocks, r.period_us, r.penalty_pct, r.peak, r.reduction
        );
    }
    out
}

/// Renders the period sweep as CSV
/// (`blocks,period_us,penalty_pct,peak_c,reduction_c`).
pub fn period_csv(table: &PeriodTable) -> String {
    let mut out = String::from("blocks,period_us,penalty_pct,peak_c,reduction_c\n");
    for r in &table.rows {
        let _ = writeln!(
            out,
            "{},{:.3},{:.4},{:.3},{:.3}",
            r.period_blocks, r.period_us, r.penalty_pct, r.peak, r.reduction
        );
    }
    out
}

/// Renders the migration cost table as CSV
/// (`scheme,phases,stall_us,flit_hops,energy_uj,moves`).
pub fn migration_cost_csv(rows: &[MigrationCostRow]) -> String {
    let mut out = String::from("scheme,phases,stall_us,flit_hops,energy_uj,moves\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{:.3},{},{:.3},{}",
            r.scheme.to_string().replace(' ', "_").to_lowercase(),
            r.phases,
            r.stall_us,
            r.flit_hops,
            r.energy_uj,
            r.moves
        );
    }
    out
}

/// Renders the migration cost table.
pub fn migration_cost_ascii(rows: &[MigrationCostRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>10} {:>11} {:>12} {:>7}",
        "Scheme", "phases", "stall(us)", "flit-hops", "energy(uJ)", "moves"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>10.2} {:>11} {:>12.1} {:>7}",
            r.scheme.to_string(),
            r.phases,
            r.stall_us,
            r.flit_hops,
            r.energy_uj,
            r.moves
        );
    }
    out
}

/// Renders a per-tile scalar field (temperatures, power) as an ASCII
/// heatmap, row y=0 at the bottom.
///
/// # Panics
///
/// Panics if `values.len() != width * height`.
pub fn heatmap_ascii(values: &[f64], width: usize, height: usize) -> String {
    assert_eq!(values.len(), width * height, "field size mismatch");
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-9);
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for y in (0..height).rev() {
        for x in 0..width {
            let v = values[y * width + x];
            let idx = (((v - min) / span) * (shades.len() - 1) as f64).round() as usize;
            let c = shades[idx.min(shades.len() - 1)];
            let _ = write!(out, "{c}{c}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "min {min:.2}  max {max:.2}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::ChipConfigId;
    use crate::cosim::CosimResult;
    use crate::experiment::Fig1Row;

    fn dummy_result(scheme: MigrationScheme, reduction: f64) -> CosimResult {
        CosimResult {
            scheme: Some(scheme),
            base_peak: 85.44,
            peak: 85.44 - reduction,
            reduction,
            mean_temp: 70.0,
            base_mean_temp: 69.8,
            throughput_penalty: 0.016,
            stall_seconds: 1.7e-6,
            period_seconds: 109.3e-6,
            migration_energy_j: 1e-5,
            phases: 1,
            migrations: 100,
        }
    }

    fn dummy_table() -> Fig1Table {
        let results: Vec<CosimResult> = MigrationScheme::FIGURE1
            .iter()
            .enumerate()
            .map(|(i, &s)| dummy_result(s, i as f64))
            .collect();
        Fig1Table {
            rows: vec![Fig1Row {
                config: ChipConfigId::A,
                base_peak: 85.44,
                results,
            }],
        }
    }

    #[test]
    fn fig1_ascii_contains_all_schemes() {
        let s = fig1_ascii(&dummy_table());
        for scheme in MigrationScheme::FIGURE1 {
            assert!(s.contains(&scheme.to_string()), "missing {scheme}");
        }
        assert!(s.contains("A (85.44)"));
        assert!(s.contains("Average"));
    }

    #[test]
    fn fig1_csv_shape() {
        let csv = fig1_csv(&dummy_table());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), 7);
        assert!(lines[1].starts_with("A,85.44"));
    }

    #[test]
    fn heatmap_renders_grid() {
        let vals: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let hm = heatmap_ascii(&vals, 4, 4);
        assert_eq!(hm.lines().count(), 5); // 4 rows + legend
        assert!(hm.contains("min 0.00"));
        assert!(hm.contains("max 15.00"));
        // Hottest row (y=3) renders first.
        assert!(hm.lines().next().unwrap().contains('@'));
    }

    #[test]
    fn average_and_best_scheme() {
        let t = dummy_table();
        let avg = t.average_reductions();
        assert_eq!(avg, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.best_scheme(), MigrationScheme::XYShift);
    }
}
