//! Runtime-adaptive migration-function selection.
//!
//! §2.3 of the paper: "the same migration unit can perform all migration
//! functions presented with only minor changes to the mathematical
//! operations, allowing dynamic alteration of the migration function at
//! runtime." This module exploits that hardware capability: instead of
//! committing to one scheme at design time, the controller re-evaluates at
//! every migration point which transform will flatten the *current*
//! physical power map best, using the orbit-average predictor (cheap: a few
//! steady-state solves on a tiny RC network — well within a migration
//! period even for firmware).
//!
//! This is the natural extension of the paper's observation that the best
//! fixed scheme differs per chip (rotation on the 4x4s, translation on the
//! 5x5s): an adaptive policy recovers the best of both without knowing the
//! configuration in advance.

use crate::chip::{CalibratedPower, Chip};
use crate::cosim::{CosimParams, TRACE_TEMP_HYSTERESIS_C, TRACE_TEMP_THRESHOLD_C};
use crate::error::CoreError;
use hotnoc_obs::{TraceEvent, TraceSink};
use hotnoc_power::leakage;
use hotnoc_reconfig::phases::PhaseCostModel;
use hotnoc_reconfig::{MigrationPlan, MigrationScheme, OrbitDecomposition, StateSpec};
use hotnoc_thermal::{Integrator, ThermalTrace, ThresholdWatcher, TransientSim};
use serde::{Deserialize, Serialize};

/// Outcome of an adaptive co-simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveResult {
    /// Static baseline peak (°C).
    pub base_peak: f64,
    /// Peak under adaptive migration (°C), after warm-up.
    pub peak: f64,
    /// `base_peak - peak` (°C).
    pub reduction: f64,
    /// Sequence of schemes the controller chose (one per migration).
    pub schedule: Vec<MigrationScheme>,
    /// Throughput penalty (time-weighted over the chosen schemes' stalls).
    pub throughput_penalty: f64,
}

/// Greedy one-step-lookahead scheme selection: among the applicable
/// transforms, pick the one whose orbit-averaged power map (an upper bound
/// on what sustained use of the scheme can achieve) has the lowest
/// steady-state peak; energy cost breaks ties toward cheaper schemes.
///
/// `current_power` is the *physical* per-tile dynamic map at the decision
/// point.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn pick_scheme(
    chip: &Chip,
    current_power: &[f64],
    params: &CosimParams,
) -> Result<MigrationScheme, CoreError> {
    let mesh = chip.mesh();
    let mut best: Option<(f64, MigrationScheme)> = None;
    for scheme in MigrationScheme::FIGURE1 {
        if !scheme.is_applicable(mesh) {
            continue;
        }
        let averaged = OrbitDecomposition::new(scheme, mesh).time_averaged_power(current_power);
        let temps = chip.steady_with_leakage(&averaged)?;
        let peak = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Energy tie-breaker: one migration's energy spread over a period,
        // expressed as an equivalent temperature penalty through the
        // package's shared resistance (~0.5 K/W effective).
        let plan = MigrationPlan::plan(
            mesh,
            scheme,
            &StateSpec::default(),
            &PhaseCostModel::default(),
        );
        let stall_s = plan.total_cycles() as f64 / chip.noc_config().clock_hz;
        let energy = plan.total_flit_hops() as f64 * params.e_flit_hop
            + plan.per_tile_endpoint_flits(mesh).iter().sum::<u64>() as f64 * params.e_convert_flit
            + stall_s * params.stall_power_fraction * current_power.iter().sum::<f64>();
        let period_s = 100e-6; // nominal period for the tie-break weight
        let penalty_c = 0.5 * energy / (period_s + stall_s);
        let score = peak + penalty_c;
        if best.is_none_or(|(b, _)| score < b) {
            best = Some((score, scheme));
        }
    }
    Ok(best.expect("at least one applicable scheme").1)
}

/// Runs the transient co-simulation with adaptive scheme selection at every
/// migration point.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn run_adaptive_cosim(
    chip: &Chip,
    cal: &CalibratedPower,
    params: &CosimParams,
) -> Result<AdaptiveResult, CoreError> {
    run_adaptive_cosim_traced(chip, cal, params, None)
}

/// [`run_adaptive_cosim`] with an optional trace sink: each controller
/// decision records a [`TraceEvent::PolicyDecision`] (ordinal + chosen
/// scheme) and the executed plan's [`TraceEvent::Migration`], and a
/// [`ThresholdWatcher`] emits [`TraceEvent::TempCrossing`] events per
/// thermal frame. The simulation is identical with or without a sink.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn run_adaptive_cosim_traced(
    chip: &Chip,
    cal: &CalibratedPower,
    params: &CosimParams,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<AdaptiveResult, CoreError> {
    let n = chip.spec().n_tiles();
    let mesh = chip.mesh();
    let areas = chip.tile_areas_mm2();
    let clock = chip.noc_config().clock_hz;

    let base_temps = chip.steady_with_leakage(&cal.dynamic)?;
    let base_peak = base_temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    let period_s = cal.block_seconds * params.period_blocks as f64;

    // Current physical power map (starts at the base placement).
    let mut current = cal.dynamic.clone();
    let mut schedule = Vec::new();

    let mut sim = TransientSim::new(chip.thermal(), params.dt, Integrator::BackwardEuler)?;
    sim.init_from_steady(&{
        let leak = leakage::leakage_per_block(&areas, &base_temps, chip.tech());
        current
            .iter()
            .zip(&leak)
            .map(|(d, l)| d + l)
            .collect::<Vec<f64>>()
    })?;

    let frames = (params.sim_time / params.dt).round() as usize;
    let warmup_frames = (params.warmup / params.dt).round() as usize;
    let mut trace = ThermalTrace::new(params.dt, n);

    let mut watcher = sink
        .as_ref()
        .map(|_| ThresholdWatcher::new(TRACE_TEMP_THRESHOLD_C, TRACE_TEMP_HYSTERESIS_C, n));

    let mut time_in_period = 0.0f64;
    let mut stall_time_total = 0.0f64;
    let mut active_time_total = 0.0f64;
    for fi in 0..frames {
        // Migration decision at period boundaries (the stall is folded into
        // the frame energy rather than sub-frame timing: stalls are ~2 % of
        // a period and the adaptive policy is the object of study here).
        if time_in_period >= period_s {
            time_in_period = 0.0;
            let scheme = pick_scheme(chip, &current, params)?;
            schedule.push(scheme);
            // Apply: workload at tile t moves to scheme(t).
            let mut next = vec![0.0; n];
            for (tile, &cur) in current.iter().enumerate() {
                let c = mesh.coord(hotnoc_noc::NodeId::new(tile as u16));
                let dst = scheme.apply(c, mesh);
                next[mesh.node_id(dst).expect("on mesh").index()] = cur;
            }
            current = next;
            let plan = MigrationPlan::plan(
                mesh,
                scheme,
                &StateSpec::default(),
                &PhaseCostModel::default(),
            );
            stall_time_total += plan.total_cycles() as f64 / clock;
            if let Some(s) = sink.as_deref_mut() {
                let cycle = (fi as f64 * params.dt * clock).round() as u64;
                s.record(TraceEvent::PolicyDecision {
                    cycle,
                    decision: schedule.len() as u64,
                    scheme: scheme.to_string(),
                });
                let stall_s = plan.total_cycles() as f64 / clock;
                let energy = plan.total_flit_hops() as f64 * params.e_flit_hop
                    + plan.per_tile_endpoint_flits(mesh).iter().sum::<u64>() as f64
                        * params.e_convert_flit
                    + stall_s * params.stall_power_fraction * current.iter().sum::<f64>();
                s.record(plan.trace_event(cycle, energy));
            }
        }
        let mut power = current.clone();
        let leak = leakage::leakage_per_block(&areas, sim.block_temps(), chip.tech());
        for (p, l) in power.iter_mut().zip(&leak) {
            *p += l;
        }
        sim.step(&power)?;
        trace.push(sim.block_temps());
        if let (Some(s), Some(w)) = (sink.as_deref_mut(), watcher.as_mut()) {
            let cycle = ((fi + 1) as f64 * params.dt * clock).round() as u64;
            w.observe(cycle, sim.block_temps(), s);
        }
        time_in_period += params.dt;
        active_time_total += params.dt;
    }

    let stats = trace
        .stats_after(warmup_frames.min(frames.saturating_sub(1)))
        .expect("at least one measured frame");

    Ok(AdaptiveResult {
        base_peak,
        peak: stats.peak,
        reduction: base_peak - stats.peak,
        schedule,
        throughput_penalty: stall_time_total / (active_time_total + stall_time_total),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{ChipConfigId, ChipSpec, Fidelity};
    use crate::cosim::{run_cosim, CosimParams};

    fn chip_and_cal(id: ChipConfigId) -> (Chip, CalibratedPower) {
        let mut chip = Chip::build(ChipSpec::of(id, Fidelity::Quick)).unwrap();
        let cal = chip.calibrate().unwrap();
        (chip, cal)
    }

    #[test]
    fn picks_rotation_class_on_config_a() {
        // A's diagonal texture favours rotation; adaptive should find it.
        let (chip, cal) = chip_and_cal(ChipConfigId::A);
        let scheme = pick_scheme(&chip, &cal.dynamic, &CosimParams::quick()).unwrap();
        assert!(
            matches!(
                scheme,
                MigrationScheme::Rotation | MigrationScheme::XYMirror
            ),
            "expected a rotation-class scheme on A, got {scheme}"
        );
    }

    #[test]
    fn picks_translation_on_config_e() {
        let (chip, cal) = chip_and_cal(ChipConfigId::E);
        let scheme = pick_scheme(&chip, &cal.dynamic, &CosimParams::quick()).unwrap();
        assert!(
            matches!(
                scheme,
                MigrationScheme::XYShift | MigrationScheme::XTranslation { .. }
            ),
            "expected translation on E's centre hotspot, got {scheme}"
        );
    }

    #[test]
    fn adaptive_matches_best_fixed_scheme() {
        for id in [ChipConfigId::A, ChipConfigId::E] {
            let (chip, cal) = chip_and_cal(id);
            let params = CosimParams::quick();
            let adaptive = run_adaptive_cosim(&chip, &cal, &params).unwrap();
            assert!(!adaptive.schedule.is_empty(), "{id}: no migrations chosen");
            let best_fixed = MigrationScheme::FIGURE1
                .iter()
                .map(|&s| run_cosim(&chip, &cal, Some(s), &params).unwrap().reduction)
                .fold(f64::MIN, f64::max);
            assert!(
                adaptive.reduction > best_fixed - 1.0,
                "{id}: adaptive {:.2} far below best fixed {:.2}",
                adaptive.reduction,
                best_fixed
            );
        }
    }

    #[test]
    fn traced_adaptive_emits_one_decision_per_migration() {
        let (chip, cal) = chip_and_cal(ChipConfigId::A);
        let params = CosimParams::quick();
        let plain = run_adaptive_cosim(&chip, &cal, &params).unwrap();
        let mut sink = hotnoc_obs::VecSink::new();
        let traced = run_adaptive_cosim_traced(&chip, &cal, &params, Some(&mut sink)).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let events = sink.drain();
        let decisions: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                hotnoc_obs::TraceEvent::PolicyDecision { scheme, .. } => Some(scheme.as_str()),
                _ => None,
            })
            .collect();
        let expected: Vec<String> = traced.schedule.iter().map(|s| s.to_string()).collect();
        assert_eq!(decisions, expected, "one decision per scheduled migration");
        assert_eq!(
            events.iter().filter(|e| e.kind() == "migration").count(),
            traced.schedule.len()
        );
    }

    #[test]
    fn adaptive_schedule_is_consistent() {
        let (chip, cal) = chip_and_cal(ChipConfigId::D);
        let params = CosimParams::quick();
        let a = run_adaptive_cosim(&chip, &cal, &params).unwrap();
        let b = run_adaptive_cosim(&chip, &cal, &params).unwrap();
        assert_eq!(
            a.schedule, b.schedule,
            "adaptive policy must be deterministic"
        );
    }
}
