//! The paper's experiments, packaged.
//!
//! * [`run_fig1`] — Figure 1: reduction in peak temperature for every
//!   configuration under every migration scheme (plus the §3 averages).
//! * [`run_period_sweep`] — the §3 in-text sweep over migration periods
//!   (1, 4, 8 blocks ≈ 109.3, 437.2, 874.4 µs) trading throughput against
//!   peak temperature.
//! * [`run_migration_cost`] — the §2.2 migration cost model: phases, stall
//!   time and energy per scheme.
//! * [`quick_demo`] — a seconds-fast end-to-end run for documentation and
//!   smoke tests.

use crate::chip::Chip;
use crate::configs::{ChipConfigId, ChipSpec, Fidelity};
use crate::cosim::{run_cosim, CosimParams, CosimResult};
use crate::error::CoreError;
use hotnoc_reconfig::phases::PhaseCostModel;
use hotnoc_reconfig::{MigrationPlan, MigrationScheme, StateSpec};
use serde::{Deserialize, Serialize};

/// One configuration's row of Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// The configuration.
    pub config: ChipConfigId,
    /// Its base (static) peak temperature, °C.
    pub base_peak: f64,
    /// Results per scheme, in [`MigrationScheme::FIGURE1`] order.
    pub results: Vec<CosimResult>,
}

/// The regenerated Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Table {
    /// One row per configuration A–E.
    pub rows: Vec<Fig1Row>,
}

impl Fig1Table {
    /// Mean peak-temperature reduction per scheme across configurations
    /// (the §3 ranking: X-Y shift 4.62 °C, rotation 4.15 °C in the paper).
    pub fn average_reductions(&self) -> Vec<f64> {
        let k = MigrationScheme::FIGURE1.len();
        let mut avg = vec![0.0; k];
        for row in &self.rows {
            for (i, r) in row.results.iter().enumerate() {
                avg[i] += r.reduction;
            }
        }
        for a in avg.iter_mut() {
            *a /= self.rows.len() as f64;
        }
        avg
    }

    /// The scheme with the highest average reduction.
    pub fn best_scheme(&self) -> MigrationScheme {
        let avg = self.average_reductions();
        let best = avg
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty")
            .0;
        MigrationScheme::FIGURE1[best]
    }
}

/// Regenerates Figure 1 at the chosen fidelity.
///
/// # Errors
///
/// Propagates chip construction, calibration and co-simulation failures.
pub fn run_fig1(fidelity: Fidelity, params: &CosimParams) -> Result<Fig1Table, CoreError> {
    let mut rows = Vec::new();
    for id in ChipConfigId::ALL {
        let mut chip = Chip::build(ChipSpec::of(id, fidelity))?;
        let cal = chip.calibrate()?;
        let mut results = Vec::new();
        for scheme in MigrationScheme::FIGURE1 {
            results.push(run_cosim(&chip, &cal, Some(scheme), params)?);
        }
        rows.push(Fig1Row {
            config: id,
            base_peak: results[0].base_peak,
            results,
        });
    }
    Ok(Fig1Table { rows })
}

/// One row of the migration-period sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodRow {
    /// Period in decoded blocks.
    pub period_blocks: u64,
    /// Period in microseconds (measured block time × blocks).
    pub period_us: f64,
    /// Throughput penalty in percent.
    pub penalty_pct: f64,
    /// Peak temperature under migration, °C.
    pub peak: f64,
    /// Peak-temperature reduction vs the static base, °C.
    pub reduction: f64,
}

/// The §3 period sweep for one configuration and scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodTable {
    /// Configuration swept.
    pub config: ChipConfigId,
    /// Migration scheme used.
    pub scheme: MigrationScheme,
    /// One row per period.
    pub rows: Vec<PeriodRow>,
}

/// Runs the migration-period sweep (`periods` are in blocks; the paper uses
/// 1, 4 and 8 blocks).
///
/// # Errors
///
/// Propagates chip construction, calibration and co-simulation failures.
pub fn run_period_sweep(
    id: ChipConfigId,
    scheme: MigrationScheme,
    periods: &[u64],
    fidelity: Fidelity,
    params: &CosimParams,
) -> Result<PeriodTable, CoreError> {
    let mut chip = Chip::build(ChipSpec::of(id, fidelity))?;
    let cal = chip.calibrate()?;
    let mut rows = Vec::new();
    for &blocks in periods {
        let p = CosimParams {
            period_blocks: blocks,
            ..*params
        };
        let r = run_cosim(&chip, &cal, Some(scheme), &p)?;
        rows.push(PeriodRow {
            period_blocks: blocks,
            period_us: r.period_seconds * 1e6,
            penalty_pct: r.throughput_penalty * 100.0,
            peak: r.peak,
            reduction: r.reduction,
        });
    }
    Ok(PeriodTable {
        config: id,
        scheme,
        rows,
    })
}

/// Migration cost of one scheme on one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationCostRow {
    /// The scheme.
    pub scheme: MigrationScheme,
    /// Congestion-free phases.
    pub phases: usize,
    /// Stall time, µs.
    pub stall_us: f64,
    /// State-transfer flit-hops.
    pub flit_hops: u64,
    /// Energy per migration, µJ.
    pub energy_uj: f64,
    /// PEs moved.
    pub moves: usize,
}

/// Computes the migration cost table for one configuration.
///
/// # Errors
///
/// Propagates chip construction and calibration failures.
pub fn run_migration_cost(
    id: ChipConfigId,
    fidelity: Fidelity,
    params: &CosimParams,
) -> Result<Vec<MigrationCostRow>, CoreError> {
    let mut chip = Chip::build(ChipSpec::of(id, fidelity))?;
    let cal = chip.calibrate()?;
    let clock = chip.noc_config().clock_hz;
    let mut rows = Vec::new();
    for scheme in MigrationScheme::FIGURE1 {
        let plan = MigrationPlan::plan(
            chip.mesh(),
            scheme,
            &StateSpec::default(),
            &PhaseCostModel::default(),
        );
        let stall_s = plan.total_cycles() as f64 / clock;
        let energy = plan.total_flit_hops() as f64 * params.e_flit_hop
            + plan
                .per_tile_endpoint_flits(chip.mesh())
                .iter()
                .sum::<u64>() as f64
                * params.e_convert_flit
            + stall_s * params.stall_power_fraction * cal.total_dynamic;
        rows.push(MigrationCostRow {
            scheme,
            phases: plan.num_phases(),
            stall_us: stall_s * 1e6,
            flit_hops: plan.total_flit_hops(),
            energy_uj: energy * 1e6,
            moves: plan.total_moves(),
        });
    }
    Ok(rows)
}

/// One row of the placement ablation: how the placement quality of the
/// *same* workload changes what migration can recover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementAblationRow {
    /// Placement label ("thermally-aware", "random(seed)").
    pub placement: String,
    /// Static peak of this placement (°C).
    pub base_peak: f64,
    /// Peak reduction achieved by X-Y shift migration (°C).
    pub reduction: f64,
}

/// The §2 worst-case argument, quantified: "Using such a thermally-aware
/// mapping puts our method in a worst-case light". This ablation takes one
/// configuration's calibrated power map (the thermally-placed artifact) and
/// compares it against random placements of the *same* per-cluster powers —
/// without recalibration, so base peaks differ. Migration should recover
/// *more* on the worse placements.
///
/// # Errors
///
/// Propagates chip construction, calibration and co-simulation failures.
pub fn run_placement_ablation(
    id: ChipConfigId,
    fidelity: Fidelity,
    params: &CosimParams,
    random_seeds: &[u64],
) -> Result<Vec<PlacementAblationRow>, CoreError> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let mut chip = Chip::build(ChipSpec::of(id, fidelity))?;
    let cal = chip.calibrate()?;

    let mut rows = Vec::new();
    let base = run_cosim(&chip, &cal, Some(MigrationScheme::XYShift), params)?;
    rows.push(PlacementAblationRow {
        placement: "thermally-aware".to_owned(),
        base_peak: base.base_peak,
        reduction: base.reduction,
    });

    for &seed in random_seeds {
        let mut shuffled = cal.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        shuffled.dynamic.shuffle(&mut rng);
        let r = run_cosim(&chip, &shuffled, Some(MigrationScheme::XYShift), params)?;
        rows.push(PlacementAblationRow {
            placement: format!("random({seed})"),
            base_peak: r.base_peak,
            reduction: r.reduction,
        });
    }
    Ok(rows)
}

/// Outcome of [`quick_demo`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuickDemoOutcome {
    /// Configuration demonstrated.
    pub config: ChipConfigId,
    /// Base peak temperature, °C.
    pub base_peak_celsius: f64,
    /// Peak reduction achieved by X-Y shift migration, °C.
    pub reduction_celsius: f64,
    /// Throughput penalty (fraction).
    pub throughput_penalty: f64,
}

/// Seconds-fast end-to-end demonstration: builds the configuration at
/// [`Fidelity::Quick`], calibrates it and runs a short X-Y shift
/// co-simulation.
///
/// # Errors
///
/// Propagates construction, calibration and co-simulation failures.
pub fn quick_demo(id: ChipConfigId) -> Result<QuickDemoOutcome, CoreError> {
    let mut chip = Chip::build(ChipSpec::of(id, Fidelity::Quick))?;
    let cal = chip.calibrate()?;
    let r = run_cosim(
        &chip,
        &cal,
        Some(MigrationScheme::XYShift),
        &CosimParams::quick(),
    )?;
    Ok(QuickDemoOutcome {
        config: id,
        base_peak_celsius: r.base_peak,
        reduction_celsius: r.reduction,
        throughput_penalty: r.throughput_penalty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_demo_runs_all_configs() {
        for id in [ChipConfigId::A, ChipConfigId::D] {
            let out = quick_demo(id).unwrap();
            assert!(out.base_peak_celsius > 70.0);
            assert!(out.throughput_penalty > 0.0);
        }
    }

    #[test]
    fn migration_cost_rows_cover_all_schemes() {
        let rows =
            run_migration_cost(ChipConfigId::A, Fidelity::Quick, &CosimParams::quick()).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.energy_uj > 0.0));
        // Rotation stalls longest (most phases) — the paper's "largest
        // energy penalty".
        let rot = &rows[0];
        let xys = &rows[4];
        assert!(rot.stall_us > xys.stall_us);
        assert!(rot.energy_uj > xys.energy_uj);
    }

    #[test]
    fn random_placements_leave_more_for_migration_to_recover() {
        // §2's worst-case argument: a thermally-aware placement minimizes
        // what migration can still win; random placements of the same
        // workload run hotter and gain more from migration.
        let rows = run_placement_ablation(
            ChipConfigId::A,
            Fidelity::Quick,
            &CosimParams::quick(),
            // Seeds chosen to give typical random placements under the
            // workspace RNG (most seeds qualify; a rare shuffle lands close
            // enough to the thermally-aware placement to blur the contrast).
            &[3, 9],
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        let thermal = &rows[0];
        for random in &rows[1..] {
            assert!(
                random.reduction + 0.3 > thermal.reduction,
                "random placement {} should gain at least as much: {:.2} vs {:.2}",
                random.placement,
                random.reduction,
                thermal.reduction
            );
        }
        // And migration brings every placement's peak into a similar band:
        // the flattened (orbit-averaged) map is placement-independent up to
        // geometry.
        let final_peaks: Vec<f64> = rows.iter().map(|r| r.base_peak - r.reduction).collect();
        let spread = final_peaks.iter().cloned().fold(f64::MIN, f64::max)
            - final_peaks.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread < 4.0,
            "post-migration peaks too spread: {final_peaks:?}"
        );
    }

    #[test]
    fn period_sweep_penalty_decreases_with_period() {
        let t = run_period_sweep(
            ChipConfigId::A,
            MigrationScheme::XYShift,
            &[8, 32],
            Fidelity::Quick,
            &CosimParams::quick(),
        )
        .unwrap();
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0].penalty_pct > t.rows[1].penalty_pct);
        let ratio = t.rows[0].penalty_pct / t.rows[1].penalty_pct;
        assert!((2.5..4.0).contains(&ratio), "penalty ratio {ratio} off");
    }
}
