//! Transient thermal co-simulation with periodic migration.
//!
//! The chip decodes blocks continuously; after every `period_blocks` blocks
//! the reconfiguration controller halts the PEs, executes the
//! congestion-free phased migration (burning state-transfer energy — "our
//! simulations also include the energy consumed during the migration
//! operation"), and decoding resumes with the workload spatially remapped.
//! The thermal solver integrates the resulting time-varying power map.

use crate::chip::{CalibratedPower, Chip};
use crate::error::CoreError;
use hotnoc_obs::{TraceEvent, TraceSink};
use hotnoc_power::leakage;
use hotnoc_reconfig::phases::PhaseCostModel;
use hotnoc_reconfig::{MigrationPlan, MigrationScheme, OrbitDecomposition, StateSpec};
use hotnoc_thermal::{Integrator, ThermalTrace, ThresholdWatcher, TransientSim};
use serde::{Deserialize, Serialize};

/// Temperature threshold watched by traced co-simulation runs, °C. Not part
/// of [`CosimParams`] (which is serialized into artifacts) — the watcher is
/// pure observation and never feeds back into the simulation.
pub const TRACE_TEMP_THRESHOLD_C: f64 = 70.0;

/// Hysteresis band of the traced threshold watcher, °C.
pub const TRACE_TEMP_HYSTERESIS_C: f64 = 0.5;

/// Parameters of one co-simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosimParams {
    /// Thermal integration step, seconds.
    pub dt: f64,
    /// Total simulated time, seconds.
    pub sim_time: f64,
    /// Warm-up prefix excluded from statistics, seconds.
    pub warmup: f64,
    /// Migration period in decoded blocks (the paper aligns migrations to
    /// block completion).
    pub period_blocks: u64,
    /// Energy per flit-hop of state-transfer traffic, joules (buffer write
    /// + read + crossbar + link for one 64-bit flit in 160 nm).
    pub e_flit_hop: f64,
    /// Energy per flit at each transfer endpoint, joules: the state-memory
    /// read plus conversion-unit transform at the source and the write at
    /// the destination (§2.1).
    pub e_convert_flit: f64,
    /// Fraction of the chip's dynamic power burned while stalled (the PEs
    /// are halted, not power-gated: clocks, registers and the migration
    /// control keep running).
    pub stall_power_fraction: f64,
}

impl Default for CosimParams {
    fn default() -> Self {
        CosimParams {
            dt: 5e-6,
            sim_time: 0.05,
            warmup: 0.025,
            period_blocks: 1,
            e_flit_hop: 5.0e-10,
            e_convert_flit: 8.0e-10,
            stall_power_fraction: 0.9,
        }
    }
}

impl CosimParams {
    /// A short-horizon variant for tests. Quick-fidelity blocks are much
    /// shorter than paper blocks, so the period is raised to keep the
    /// migration period near the paper's ~100 µs operating point.
    pub fn quick() -> Self {
        CosimParams {
            dt: 5e-6,
            sim_time: 0.012,
            warmup: 0.006,
            period_blocks: 24,
            ..CosimParams::default()
        }
    }
}

/// The outcome of one co-simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CosimResult {
    /// Scheme simulated (`None` = static baseline).
    pub scheme: Option<MigrationScheme>,
    /// Steady-state peak of the static placement (°C) — the Figure 1 base.
    pub base_peak: f64,
    /// Peak temperature under migration, measured after warm-up (°C).
    pub peak: f64,
    /// `base_peak - peak`: the Figure 1 quantity (°C).
    pub reduction: f64,
    /// Time-averaged mean die temperature under migration (°C).
    pub mean_temp: f64,
    /// Mean die temperature of the static baseline (°C).
    pub base_mean_temp: f64,
    /// Throughput penalty: stall / (period + stall).
    pub throughput_penalty: f64,
    /// Migration stall, seconds.
    pub stall_seconds: f64,
    /// Migration period (active decode time between stalls), seconds.
    pub period_seconds: f64,
    /// Energy per migration event, joules.
    pub migration_energy_j: f64,
    /// Congestion-free phases per migration.
    pub phases: usize,
    /// Migrations executed during the simulated horizon.
    pub migrations: u64,
}

impl CosimResult {
    /// Average-temperature increase attributable to migration energy (°C).
    pub fn mean_temp_increase(&self) -> f64 {
        self.mean_temp - self.base_mean_temp
    }
}

/// Runs the co-simulation of `chip` under `scheme` (or the static baseline
/// for `None`).
///
/// # Errors
///
/// Propagates thermal-solver failures; parameters are validated up front.
pub fn run_cosim(
    chip: &Chip,
    cal: &CalibratedPower,
    scheme: Option<MigrationScheme>,
    params: &CosimParams,
) -> Result<CosimResult, CoreError> {
    run_cosim_traced(chip, cal, scheme, params, None)
}

/// [`run_cosim`] with an optional trace sink. When a sink is supplied,
/// every migration commit records a [`TraceEvent::PolicyDecision`] and the
/// plan's [`TraceEvent::Migration`] (via
/// [`MigrationPlan::trace_event`]), and a [`ThresholdWatcher`] at
/// [`TRACE_TEMP_THRESHOLD_C`] turns the thermal frames into
/// [`TraceEvent::TempCrossing`] events. Cycles are derived from elapsed
/// simulated time at the NoC clock, so the trace is deterministic whenever
/// the run is. The simulation itself is identical with or without a sink.
///
/// # Errors
///
/// Propagates thermal-solver failures; parameters are validated up front.
pub fn run_cosim_traced(
    chip: &Chip,
    cal: &CalibratedPower,
    scheme: Option<MigrationScheme>,
    params: &CosimParams,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<CosimResult, CoreError> {
    let n = chip.spec().n_tiles();
    let areas = chip.tile_areas_mm2();
    let clock = chip.noc_config().clock_hz;

    // Static baseline: leakage-coupled steady state.
    let base_temps = chip.steady_with_leakage(&cal.dynamic)?;
    let base_peak = peak_of(&base_temps);
    let base_mean = mean_of(&base_temps);

    let Some(scheme) = scheme else {
        return Ok(CosimResult {
            scheme: None,
            base_peak,
            peak: base_peak,
            reduction: 0.0,
            mean_temp: base_mean,
            base_mean_temp: base_mean,
            throughput_penalty: 0.0,
            stall_seconds: 0.0,
            period_seconds: cal.block_seconds * params.period_blocks as f64,
            migration_energy_j: 0.0,
            phases: 0,
            migrations: 0,
        });
    };

    let mesh = chip.mesh();
    let plan = MigrationPlan::plan(
        mesh,
        scheme,
        &StateSpec::default(),
        &PhaseCostModel::default(),
    );
    let stall_s = plan.total_cycles() as f64 / clock;
    let period_s = cal.block_seconds * params.period_blocks as f64;
    let super_s = period_s + stall_s;
    // Energy spent per migration event: state-transfer traffic, endpoint
    // conversion/copy work, plus the clock/control power the halted chip
    // keeps burning for the stall.
    let per_tile_hops = plan.per_tile_flit_hops(mesh);
    let per_tile_endpoints = plan.per_tile_endpoint_flits(mesh);
    let transfer_energy = plan.total_flit_hops() as f64 * params.e_flit_hop
        + per_tile_endpoints.iter().sum::<u64>() as f64 * params.e_convert_flit;
    let migration_energy =
        transfer_energy + stall_s * params.stall_power_fraction * cal.total_dynamic;

    // Power maps for every migration state (the permutation cycles with the
    // scheme's group order).
    let order = scheme.order(mesh);
    let mut maps: Vec<Vec<f64>> = Vec::with_capacity(order);
    for k in 0..order {
        let mut m = vec![0.0; n];
        for tile in 0..n {
            let c = mesh.coord(hotnoc_noc::NodeId::new(tile as u16));
            let dst = scheme.apply_k(c, mesh, k);
            let dst_idx = mesh.node_id(dst).expect("on mesh").index();
            m[dst_idx] = cal.dynamic[tile];
        }
        maps.push(m);
    }

    // Stall power map: each tile keeps `stall_power_fraction` of its own
    // dynamic power (clock distribution is not gated during the halt); the
    // state-transfer energy lands on the tiles whose routers forward the
    // streams and on the endpoints doing the conversion/copy work. The
    // local component follows the permutation like the active map; the
    // transfer component is fixed in physical space (the plan's routes).
    let per_tile_transfer: Vec<f64> = per_tile_hops
        .iter()
        .zip(&per_tile_endpoints)
        .map(|(&h, &e)| h as f64 * params.e_flit_hop + e as f64 * params.e_convert_flit)
        .collect();
    let mut stall_maps: Vec<Vec<f64>> = Vec::with_capacity(order);
    for m in &maps {
        let sm: Vec<f64> = m
            .iter()
            .zip(&per_tile_transfer)
            .map(|(p, t)| params.stall_power_fraction * p + t / stall_s)
            .collect();
        stall_maps.push(sm);
    }

    // Initialize at the long-run operating point: the time-averaged power
    // the package integrates (active decode, reduced stall power, transfer
    // energy).
    let init_dyn: Vec<f64> = cal
        .dynamic
        .iter()
        .zip(&per_tile_transfer)
        .map(|(p, t)| (p * (period_s + params.stall_power_fraction * stall_s) + t) / super_s)
        .collect();
    let init_temps = chip.steady_with_leakage(&init_dyn)?;
    let init_leak = leakage::leakage_per_block(&areas, &init_temps, chip.tech());
    let init_total: Vec<f64> = init_dyn
        .iter()
        .zip(&init_leak)
        .map(|(d, l)| d + l)
        .collect();

    let mut sim = TransientSim::new(chip.thermal(), params.dt, Integrator::BackwardEuler)?;
    sim.init_from_steady(&init_total)?;

    let frames = (params.sim_time / params.dt).round() as usize;
    let warmup_frames = (params.warmup / params.dt).round() as usize;
    let mut trace = ThermalTrace::new(params.dt, n);
    let mut watcher = sink
        .as_ref()
        .map(|_| ThresholdWatcher::new(TRACE_TEMP_THRESHOLD_C, TRACE_TEMP_HYSTERESIS_C, n));

    let mut k = 0usize; // migrations so far
    let mut tau = 0.0f64; // position within the current super-period
    let mut frame_power = vec![0.0f64; n];
    for fi in 0..frames {
        frame_power.iter_mut().for_each(|p| *p = 0.0);
        let mut remaining = params.dt;
        while remaining > 1e-15 {
            if tau < period_s {
                let seg = remaining.min(period_s - tau);
                let w = seg / params.dt;
                let map = &maps[k % order];
                for (fp, m) in frame_power.iter_mut().zip(map) {
                    *fp += w * m;
                }
                tau += seg;
                remaining -= seg;
            } else {
                let seg = remaining.min(super_s - tau);
                let w = seg / params.dt;
                let sm = &stall_maps[k % order];
                for (fp, s) in frame_power.iter_mut().zip(sm) {
                    *fp += w * s;
                }
                tau += seg;
                remaining -= seg;
                if super_s - tau < 1e-12 {
                    tau = 0.0;
                    k += 1;
                    if let Some(s) = sink.as_deref_mut() {
                        let elapsed = fi as f64 * params.dt + (params.dt - remaining);
                        let cycle = (elapsed * clock).round() as u64;
                        s.record(TraceEvent::PolicyDecision {
                            cycle,
                            decision: k as u64,
                            scheme: scheme.to_string(),
                        });
                        s.record(plan.trace_event(cycle, migration_energy));
                    }
                }
            }
        }
        // Temperature-coupled leakage from the previous frame's state.
        let leak = leakage::leakage_per_block(&areas, sim.block_temps(), chip.tech());
        for (fp, l) in frame_power.iter_mut().zip(&leak) {
            *fp += l;
        }
        sim.step(&frame_power)?;
        trace.push(sim.block_temps());
        if let (Some(s), Some(w)) = (sink.as_deref_mut(), watcher.as_mut()) {
            let cycle = ((fi + 1) as f64 * params.dt * clock).round() as u64;
            w.observe(cycle, sim.block_temps(), s);
        }
    }

    let stats = trace
        .stats_after(warmup_frames.min(frames.saturating_sub(1)))
        .expect("at least one measured frame");

    Ok(CosimResult {
        scheme: Some(scheme),
        base_peak,
        peak: stats.peak,
        reduction: base_peak - stats.peak,
        mean_temp: stats.mean,
        base_mean_temp: base_mean,
        throughput_penalty: stall_s / super_s,
        stall_seconds: stall_s,
        period_seconds: period_s,
        migration_energy_j: migration_energy,
        phases: plan.num_phases(),
        migrations: k as u64,
    })
}

/// Analytic predictor: the peak-temperature reduction implied by the
/// orbit-averaged power map (the migration period is much shorter than the
/// die's thermal time constant, so the die responds to the time-averaged
/// map). Ignores migration energy and finite-period ripple — an upper bound
/// the transient co-simulation approaches.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn predicted_reduction(
    chip: &Chip,
    cal: &CalibratedPower,
    scheme: MigrationScheme,
) -> Result<f64, CoreError> {
    let base = chip.steady_with_leakage(&cal.dynamic)?;
    let orbit = OrbitDecomposition::new(scheme, chip.mesh());
    let averaged = orbit.time_averaged_power(&cal.dynamic);
    let migrated = chip.steady_with_leakage(&averaged)?;
    Ok(peak_of(&base) - peak_of(&migrated))
}

fn peak_of(t: &[f64]) -> f64 {
    t.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

fn mean_of(t: &[f64]) -> f64 {
    t.iter().sum::<f64>() / t.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{ChipConfigId, ChipSpec, Fidelity};

    fn chip_and_cal(id: ChipConfigId) -> (Chip, CalibratedPower) {
        let mut chip = Chip::build(ChipSpec::of(id, Fidelity::Quick)).unwrap();
        let cal = chip.calibrate().unwrap();
        (chip, cal)
    }

    #[test]
    fn baseline_has_no_penalty() {
        let (chip, cal) = chip_and_cal(ChipConfigId::A);
        let r = run_cosim(&chip, &cal, None, &CosimParams::quick()).unwrap();
        assert_eq!(r.reduction, 0.0);
        assert_eq!(r.throughput_penalty, 0.0);
        assert_eq!(r.migrations, 0);
        assert!((r.base_peak - chip.spec().base_peak_celsius).abs() < 0.1);
    }

    #[test]
    fn xy_shift_reduces_peak_on_config_a() {
        let (chip, cal) = chip_and_cal(ChipConfigId::A);
        let r = run_cosim(
            &chip,
            &cal,
            Some(MigrationScheme::XYShift),
            &CosimParams::quick(),
        )
        .unwrap();
        assert!(r.migrations > 0, "no migrations happened");
        assert!(
            r.reduction > 1.0,
            "X-Y shift should cool config A: reduction {}",
            r.reduction
        );
        assert!(r.throughput_penalty > 0.0 && r.throughput_penalty < 0.1);
    }

    #[test]
    fn predictor_bounds_cosim_reduction() {
        let (chip, cal) = chip_and_cal(ChipConfigId::A);
        let pred = predicted_reduction(&chip, &cal, MigrationScheme::XYShift).unwrap();
        let r = run_cosim(
            &chip,
            &cal,
            Some(MigrationScheme::XYShift),
            &CosimParams::quick(),
        )
        .unwrap();
        assert!(pred > 0.0);
        assert!(
            r.reduction <= pred + 0.3,
            "cosim {} should not exceed predictor {}",
            r.reduction,
            pred
        );
    }

    #[test]
    fn migration_energy_raises_mean_temperature() {
        let (chip, cal) = chip_and_cal(ChipConfigId::E);
        let r = run_cosim(
            &chip,
            &cal,
            Some(MigrationScheme::Rotation),
            &CosimParams::quick(),
        )
        .unwrap();
        assert!(r.migration_energy_j > 0.0);
        assert!(r.phases >= 2, "rotation should need several phases");
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_migrations() {
        let (chip, cal) = chip_and_cal(ChipConfigId::A);
        let params = CosimParams::quick();
        let plain = run_cosim(&chip, &cal, Some(MigrationScheme::XYShift), &params).unwrap();
        let mut sink = hotnoc_obs::VecSink::new();
        let traced = run_cosim_traced(
            &chip,
            &cal,
            Some(MigrationScheme::XYShift),
            &params,
            Some(&mut sink),
        )
        .unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let events = sink.drain();
        let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count() as u64;
        assert_eq!(count("migration"), traced.migrations);
        assert_eq!(count("policy_decision"), traced.migrations);
        let cycles: Vec<u64> = events.iter().map(TraceEvent::cycle).collect();
        assert!(
            cycles.windows(2).all(|w| w[0] <= w[1]),
            "trace must be in sim-time order: {cycles:?}"
        );
    }

    #[test]
    fn right_shift_weak_on_warm_band() {
        let (chip, cal) = chip_and_cal(ChipConfigId::A);
        let rs =
            predicted_reduction(&chip, &cal, MigrationScheme::XTranslation { offset: 1 }).unwrap();
        let xys = predicted_reduction(&chip, &cal, MigrationScheme::XYShift).unwrap();
        assert!(
            rs < xys,
            "right shift ({rs}) should trail X-Y shift ({xys}) on a warm band"
        );
    }
}
