//! Property tests for the reconfiguration engine: group-theoretic laws of
//! the transforms, plan invariants under randomized state sizes, and
//! cumulative-map consistency under random migration histories.

use hotnoc_noc::Mesh;
use hotnoc_reconfig::phases::PhaseCostModel;
use hotnoc_reconfig::{CumulativeMap, MigrationPlan, MigrationScheme, StateSpec};
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = MigrationScheme> {
    prop_oneof![
        Just(MigrationScheme::Rotation),
        Just(MigrationScheme::XMirror),
        Just(MigrationScheme::XYMirror),
        (1u8..5).prop_map(|offset| MigrationScheme::XTranslation { offset }),
        (1u8..5).prop_map(|offset| MigrationScheme::YTranslation { offset }),
        Just(MigrationScheme::XYShift),
    ]
}

proptest! {
    #[test]
    fn plans_scale_with_state_size(
        side in 3usize..7,
        scheme in scheme_strategy(),
        state_kbits in 1u64..128,
    ) {
        let mesh = Mesh::square(side).unwrap();
        let small = StateSpec {
            config_bits: 1024,
            state_bits: state_kbits * 1024,
            flit_bits: 64,
        };
        let big = StateSpec {
            config_bits: 1024,
            state_bits: state_kbits * 2048,
            flit_bits: 64,
        };
        let cost = PhaseCostModel::default();
        let p_small = MigrationPlan::plan(mesh, scheme, &small, &cost);
        let p_big = MigrationPlan::plan(mesh, scheme, &big, &cost);
        // Same moves, same phases; more flits means more cycles and hops.
        prop_assert_eq!(p_small.total_moves(), p_big.total_moves());
        prop_assert_eq!(p_small.num_phases(), p_big.num_phases());
        prop_assert!(p_big.total_cycles() >= p_small.total_cycles());
        prop_assert!(p_big.total_flit_hops() > p_small.total_flit_hops()
            || p_small.total_flit_hops() == 0);
    }

    #[test]
    fn per_tile_attributions_are_consistent(
        side in 3usize..7,
        scheme in scheme_strategy(),
    ) {
        let mesh = Mesh::square(side).unwrap();
        let plan = MigrationPlan::plan(
            mesh,
            scheme,
            &StateSpec::default(),
            &PhaseCostModel::default(),
        );
        let hops = plan.per_tile_flit_hops(mesh);
        prop_assert_eq!(hops.iter().sum::<u64>(), plan.total_flit_hops());
        let flits = StateSpec::default().flits_per_pe() as u64;
        let endpoints = plan.per_tile_endpoint_flits(mesh);
        prop_assert_eq!(
            endpoints.iter().sum::<u64>(),
            2 * flits * plan.total_moves() as u64
        );
    }

    #[test]
    fn random_histories_keep_maps_invertible(
        side in 2usize..7,
        schemes in proptest::collection::vec(scheme_strategy(), 1..20),
    ) {
        let mesh = Mesh::square(side).unwrap();
        let mut map = CumulativeMap::identity(mesh);
        for s in &schemes {
            map.apply_scheme(*s);
        }
        use hotnoc_noc::AddressMap;
        for c in mesh.iter_coords() {
            prop_assert_eq!(map.physical_to_logical(map.logical_to_physical(c)), c);
        }
        prop_assert_eq!(map.generation(), schemes.len() as u64);
    }

    #[test]
    fn composed_schemes_commute_with_permutations(
        side in 2usize..7,
        a in scheme_strategy(),
        b in scheme_strategy(),
    ) {
        // Applying a then b through the map equals composing the raw
        // permutations: map is a faithful group action.
        let mesh = Mesh::square(side).unwrap();
        let mut map = CumulativeMap::identity(mesh);
        map.apply_scheme(a);
        map.apply_scheme(b);
        for c in mesh.iter_coords() {
            let direct = b.apply(a.apply(c, mesh), mesh);
            use hotnoc_noc::AddressMap;
            prop_assert_eq!(map.logical_to_physical(c), direct);
        }
    }
}
