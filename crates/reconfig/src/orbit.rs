//! Orbit analysis of migration schemes.
//!
//! A migration scheme applied every period walks each workload around a
//! fixed cycle of tiles (its *orbit*). Because the migration period (~100 µs)
//! is much shorter than the die's thermal time constant (milliseconds), the
//! temperature field responds approximately to the *time-averaged* power
//! map — the per-orbit mean. This module computes orbit decompositions and
//! that averaged map; the property relations here are exactly the paper's §3
//! arguments:
//!
//! * rotation/mirroring fix the centre of odd meshes → cannot cool a centre
//!   hotspot (configurations C, D, E);
//! * right-shift orbits stay within a row → cannot dissipate a hot row
//!   ("warm band");
//! * X-Y shift has no fixed points and its orbits visit distinct rows and
//!   columns → best at spreading both kinds of hotspot.

use crate::transform::MigrationScheme;
use hotnoc_noc::{Coord, Mesh};

/// The cycle decomposition of a scheme's permutation on a mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrbitDecomposition {
    mesh: Mesh,
    orbits: Vec<Vec<Coord>>,
}

impl OrbitDecomposition {
    /// Computes the orbits of `scheme` on `mesh`.
    ///
    /// # Panics
    ///
    /// Panics for rotation on a non-square mesh.
    pub fn new(scheme: MigrationScheme, mesh: Mesh) -> Self {
        let mut visited = vec![false; mesh.len()];
        let mut orbits = Vec::new();
        for start in mesh.iter_coords() {
            let idx = mesh.node_id(start).expect("on mesh").index();
            if visited[idx] {
                continue;
            }
            let mut orbit = Vec::new();
            let mut cur = start;
            loop {
                let ci = mesh.node_id(cur).expect("on mesh").index();
                if visited[ci] {
                    break;
                }
                visited[ci] = true;
                orbit.push(cur);
                cur = scheme.apply(cur, mesh);
            }
            orbits.push(orbit);
        }
        OrbitDecomposition { mesh, orbits }
    }

    /// The orbits (each a cyclically ordered list of coordinates).
    pub fn orbits(&self) -> &[Vec<Coord>] {
        &self.orbits
    }

    /// Coordinates the scheme leaves in place.
    pub fn fixed_points(&self) -> Vec<Coord> {
        self.orbits
            .iter()
            .filter(|o| o.len() == 1)
            .map(|o| o[0])
            .collect()
    }

    /// Length of the longest orbit.
    pub fn max_orbit_len(&self) -> usize {
        self.orbits.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The time-averaged power map under this scheme: every tile's power is
    /// replaced by the mean over its orbit. Total power is conserved.
    ///
    /// # Panics
    ///
    /// Panics if `power.len()` differs from the mesh size.
    pub fn time_averaged_power(&self, power: &[f64]) -> Vec<f64> {
        assert_eq!(power.len(), self.mesh.len(), "power length mismatch");
        let mut out = vec![0.0; power.len()];
        for orbit in &self.orbits {
            let sum: f64 = orbit
                .iter()
                .map(|c| power[self.mesh.node_id(*c).expect("on mesh").index()])
                .sum();
            let mean = sum / orbit.len() as f64;
            for c in orbit {
                out[self.mesh.node_id(*c).expect("on mesh").index()] = mean;
            }
        }
        out
    }

    /// Mean Manhattan distance a workload moves per migration (the raw
    /// distance input to state-transfer energy).
    pub fn mean_move_distance(&self, scheme: MigrationScheme) -> f64 {
        let total: u32 = self
            .mesh
            .iter_coords()
            .map(|c| c.manhattan(scheme.apply(c, self.mesh)))
            .sum();
        total as f64 / self.mesh.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m4() -> Mesh {
        Mesh::square(4).unwrap()
    }
    fn m5() -> Mesh {
        Mesh::square(5).unwrap()
    }

    #[test]
    fn orbits_partition_the_mesh() {
        for mesh in [m4(), m5()] {
            for s in MigrationScheme::FIGURE1 {
                let d = OrbitDecomposition::new(s, mesh);
                let total: usize = d.orbits().iter().map(Vec::len).sum();
                assert_eq!(total, mesh.len(), "{s} orbits don't partition {mesh}");
            }
        }
    }

    #[test]
    fn rotation_on_even_mesh_has_no_fixed_points() {
        let d = OrbitDecomposition::new(MigrationScheme::Rotation, m4());
        assert!(d.fixed_points().is_empty());
        // All orbits are 4-cycles on a 4x4.
        assert!(d.orbits().iter().all(|o| o.len() == 4));
    }

    #[test]
    fn rotation_on_odd_mesh_fixes_center_only() {
        let d = OrbitDecomposition::new(MigrationScheme::Rotation, m5());
        assert_eq!(d.fixed_points(), vec![Coord::new(2, 2)]);
    }

    #[test]
    fn x_mirror_fixes_center_column_on_odd_mesh() {
        let d = OrbitDecomposition::new(MigrationScheme::XMirror, m5());
        let fixed = d.fixed_points();
        assert_eq!(fixed.len(), 5);
        assert!(fixed.iter().all(|c| c.x == 2));
    }

    #[test]
    fn xy_shift_never_fixes_anything() {
        for mesh in [m4(), m5()] {
            let d = OrbitDecomposition::new(MigrationScheme::XYShift, mesh);
            assert!(d.fixed_points().is_empty());
            assert_eq!(d.max_orbit_len(), mesh.width());
        }
    }

    #[test]
    fn right_shift_orbits_stay_in_rows() {
        let d = OrbitDecomposition::new(MigrationScheme::XTranslation { offset: 1 }, m5());
        for orbit in d.orbits() {
            let row = orbit[0].y;
            assert!(orbit.iter().all(|c| c.y == row));
            assert_eq!(orbit.len(), 5);
        }
    }

    #[test]
    fn xy_shift_orbit_visits_distinct_rows() {
        let d = OrbitDecomposition::new(MigrationScheme::XYShift, m5());
        for orbit in d.orbits() {
            let mut rows: Vec<u8> = orbit.iter().map(|c| c.y).collect();
            rows.sort_unstable();
            rows.dedup();
            assert_eq!(rows.len(), orbit.len(), "orbit revisits a row");
        }
    }

    #[test]
    fn averaging_conserves_total_power() {
        let mesh = m5();
        let power: Vec<f64> = (0..mesh.len()).map(|i| i as f64 * 0.1).collect();
        for s in MigrationScheme::FIGURE1 {
            let d = OrbitDecomposition::new(s, mesh);
            let avg = d.time_averaged_power(&power);
            let before: f64 = power.iter().sum();
            let after: f64 = avg.iter().sum();
            assert!((before - after).abs() < 1e-9, "{s} lost power");
        }
    }

    #[test]
    fn averaging_flattens_peaks() {
        let mesh = m4();
        let mut power = vec![1.0; 16];
        power[5] = 10.0;
        for s in MigrationScheme::FIGURE1 {
            let d = OrbitDecomposition::new(s, mesh);
            let avg = d.time_averaged_power(&power);
            let peak_before = power.iter().cloned().fold(f64::MIN, f64::max);
            let peak_after = avg.iter().cloned().fold(f64::MIN, f64::max);
            assert!(peak_after <= peak_before);
        }
    }

    #[test]
    fn hot_row_immune_to_right_shift_but_not_xy_shift() {
        // The paper's "warm band" argument, verified on the averaged map.
        let mesh = m5();
        let mut power = vec![0.5; 25];
        for x in 0..5 {
            power[mesh.node_id(Coord::new(x, 1)).unwrap().index()] = 3.0;
        }
        let rs = OrbitDecomposition::new(MigrationScheme::XTranslation { offset: 1 }, mesh);
        let avg_rs = rs.time_averaged_power(&power);
        // Right shift: row 1 still carries its full power.
        let row1_rs: f64 = (0..5)
            .map(|x| avg_rs[mesh.node_id(Coord::new(x, 1)).unwrap().index()])
            .sum();
        assert!((row1_rs - 15.0).abs() < 1e-9);
        // X-Y shift: row 1's average drops to the chip mean.
        let xys = OrbitDecomposition::new(MigrationScheme::XYShift, mesh);
        let avg_xys = xys.time_averaged_power(&power);
        let row1_xys: f64 = (0..5)
            .map(|x| avg_xys[mesh.node_id(Coord::new(x, 1)).unwrap().index()])
            .sum();
        assert!(row1_xys < 15.0 * 0.5, "X-Y shift failed to spread the band");
    }

    #[test]
    fn center_hotspot_immune_to_rotation_on_odd_mesh() {
        // §3 on configuration E: rotation cannot move a centre hotspot.
        let mesh = m5();
        let mut power = vec![0.5; 25];
        let center = mesh.node_id(Coord::new(2, 2)).unwrap().index();
        power[center] = 5.0;
        let rot = OrbitDecomposition::new(MigrationScheme::Rotation, mesh);
        let avg = rot.time_averaged_power(&power);
        assert!(
            (avg[center] - 5.0).abs() < 1e-12,
            "rotation moved the centre"
        );
        let xys = OrbitDecomposition::new(MigrationScheme::XYShift, mesh);
        let avg2 = xys.time_averaged_power(&power);
        assert!(avg2[center] < 2.0, "X-Y shift left the centre hot");
    }

    #[test]
    fn mean_move_distance_positive_for_non_identity() {
        let mesh = m5();
        for s in MigrationScheme::FIGURE1 {
            let d = OrbitDecomposition::new(s, mesh);
            assert!(d.mean_move_distance(s) > 0.0);
        }
    }
}
