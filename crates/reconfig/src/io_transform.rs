//! The cumulative logical↔physical map maintained across migrations.
//!
//! Implements `hotnoc_noc::AddressMap`, the hook the NoC's I/O boundary uses
//! to translate destination addresses of incoming packets and source
//! addresses of outgoing packets — §2.3: "the migration operation is totally
//! transparent to the outside world".

use crate::transform::MigrationScheme;
use hotnoc_noc::{AddressMap, Coord, Mesh};
use serde::{Deserialize, Serialize};

/// Composition of every migration applied so far: a bijection
/// logical → physical.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CumulativeMap {
    mesh: Mesh,
    /// `log2phys[logical node index] = physical node index`.
    log2phys: Vec<u16>,
    /// Inverse map.
    phys2log: Vec<u16>,
    /// Number of migrations composed in.
    generation: u64,
}

impl CumulativeMap {
    /// The identity map for a freshly configured chip.
    pub fn identity(mesh: Mesh) -> Self {
        let ids: Vec<u16> = (0..mesh.len() as u16).collect();
        CumulativeMap {
            mesh,
            log2phys: ids.clone(),
            phys2log: ids,
            generation: 0,
        }
    }

    /// The mesh this map covers.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// How many migrations have been composed in.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Composes one application of `scheme`: every workload currently at
    /// physical tile `p` moves to `scheme.apply(p)`.
    ///
    /// # Panics
    ///
    /// Panics for rotation on a non-square mesh.
    pub fn apply_scheme(&mut self, scheme: MigrationScheme) {
        for phys in self.log2phys.iter_mut() {
            let c = self.mesh.coord(hotnoc_noc::NodeId::new(*phys));
            let moved = scheme.apply(c, self.mesh);
            *phys = self
                .mesh
                .node_id(moved)
                .expect("transform stays on mesh")
                .index() as u16;
        }
        for (l, &p) in self.log2phys.iter().enumerate() {
            self.phys2log[p as usize] = l as u16;
        }
        self.generation += 1;
    }

    /// The permutation as indices: `perm[logical] = physical`.
    pub fn as_permutation(&self) -> Vec<usize> {
        self.log2phys.iter().map(|&p| p as usize).collect()
    }

    /// `true` if the map is currently the identity (e.g. after `order`
    /// applications of a scheme).
    pub fn is_identity(&self) -> bool {
        self.log2phys
            .iter()
            .enumerate()
            .all(|(i, &p)| i == p as usize)
    }
}

impl AddressMap for CumulativeMap {
    fn logical_to_physical(&self, logical: Coord) -> Coord {
        let l = self.mesh.node_id(logical).expect("logical coord on mesh");
        self.mesh
            .coord(hotnoc_noc::NodeId::new(self.log2phys[l.index()]))
    }

    fn physical_to_logical(&self, physical: Coord) -> Coord {
        let p = self.mesh.node_id(physical).expect("physical coord on mesh");
        self.mesh
            .coord(hotnoc_noc::NodeId::new(self.phys2log[p.index()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotnoc_noc::io_interface::check_bijection;

    #[test]
    fn identity_map_is_identity() {
        let m = CumulativeMap::identity(Mesh::square(4).unwrap());
        assert!(m.is_identity());
        assert_eq!(m.generation(), 0);
        assert_eq!(m.logical_to_physical(Coord::new(2, 3)), Coord::new(2, 3));
    }

    #[test]
    fn single_application_matches_scheme() {
        let mesh = Mesh::square(5).unwrap();
        let mut m = CumulativeMap::identity(mesh);
        m.apply_scheme(MigrationScheme::Rotation);
        for c in mesh.iter_coords() {
            assert_eq!(
                m.logical_to_physical(c),
                MigrationScheme::Rotation.apply(c, mesh)
            );
        }
        assert_eq!(m.generation(), 1);
    }

    #[test]
    fn composition_over_full_order_returns_identity() {
        for n in [4usize, 5] {
            let mesh = Mesh::square(n).unwrap();
            for s in MigrationScheme::FIGURE1 {
                let mut m = CumulativeMap::identity(mesh);
                for _ in 0..s.order(mesh) {
                    m.apply_scheme(s);
                }
                assert!(m.is_identity(), "{s} did not close after its order");
            }
        }
    }

    #[test]
    fn always_a_bijection() {
        let mesh = Mesh::square(5).unwrap();
        let mut m = CumulativeMap::identity(mesh);
        for s in [
            MigrationScheme::Rotation,
            MigrationScheme::XYShift,
            MigrationScheme::XMirror,
            MigrationScheme::XYShift,
        ] {
            m.apply_scheme(s);
            assert_eq!(check_bijection(&m, mesh), None, "broken after {s}");
        }
    }

    #[test]
    fn roundtrip_logical_physical() {
        let mesh = Mesh::square(4).unwrap();
        let mut m = CumulativeMap::identity(mesh);
        m.apply_scheme(MigrationScheme::XYShift);
        m.apply_scheme(MigrationScheme::XYShift);
        for c in mesh.iter_coords() {
            assert_eq!(m.physical_to_logical(m.logical_to_physical(c)), c);
        }
    }

    #[test]
    fn permutation_indices_consistent() {
        let mesh = Mesh::square(4).unwrap();
        let mut m = CumulativeMap::identity(mesh);
        m.apply_scheme(MigrationScheme::XMirror);
        let perm = m.as_permutation();
        for (l, &p) in perm.iter().enumerate() {
            let lc = mesh.coord(hotnoc_noc::NodeId::new(l as u16));
            let pc = mesh.coord(hotnoc_noc::NodeId::new(p as u16));
            assert_eq!(m.logical_to_physical(lc), pc);
        }
    }
}
