//! Size model of the per-PE configuration and state moved at migration.
//!
//! §2.1 of the paper: "the operation of the PEs is halted, the configuration
//! and state information of each PE is passed through a conversion unit, and
//! then sent across the network to the destination PE". The paper also notes
//! (§3) that migration periods are aligned to LDPC block completion to
//! minimize the state that must be moved; what remains is the PE's
//! configuration stream plus its resident working set.

use serde::{Deserialize, Serialize};

/// Per-PE migration payload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSpec {
    /// Configuration stream bits per PE (routing tables, node assignments,
    /// schedule microcode).
    pub config_bits: u64,
    /// Architectural/working state bits per PE at a block boundary
    /// (channel LLR memory and accumulated decisions).
    pub state_bits: u64,
    /// Link flit width in bits.
    pub flit_bits: u32,
}

impl StateSpec {
    /// The paper-calibrated default: ~6 KiB per PE over 64-bit flits, which
    /// yields the ~1.7 µs migration stall that produces the paper's 1.6 %
    /// throughput penalty at a 109.3 µs period (DESIGN.md §5).
    pub fn ldpc_default() -> Self {
        StateSpec {
            config_bits: 4_096,
            state_bits: 45_056,
            flit_bits: 64,
        }
    }

    /// Total bits moved per PE.
    pub fn total_bits(&self) -> u64 {
        self.config_bits + self.state_bits
    }

    /// Flits needed to carry one PE's payload (ceiling division), at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `flit_bits == 0`.
    pub fn flits_per_pe(&self) -> u32 {
        assert!(self.flit_bits > 0, "flit width must be positive");
        let flits = self.total_bits().div_ceil(self.flit_bits as u64);
        flits.max(1) as u32
    }
}

impl Default for StateSpec {
    fn default() -> Self {
        StateSpec::ldpc_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_flit_count() {
        let s = StateSpec::ldpc_default();
        assert_eq!(s.total_bits(), 49_152);
        assert_eq!(s.flits_per_pe(), 768);
    }

    #[test]
    fn ceiling_division() {
        let s = StateSpec {
            config_bits: 1,
            state_bits: 0,
            flit_bits: 64,
        };
        assert_eq!(s.flits_per_pe(), 1);
        let s2 = StateSpec {
            config_bits: 65,
            state_bits: 0,
            flit_bits: 64,
        };
        assert_eq!(s2.flits_per_pe(), 2);
    }

    #[test]
    fn zero_state_still_one_flit() {
        let s = StateSpec {
            config_bits: 0,
            state_bits: 0,
            flit_bits: 64,
        };
        assert_eq!(s.flits_per_pe(), 1);
    }
}
