//! The runtime reconfiguration controller.
//!
//! Triggers a migration every `period_blocks` completed LDPC blocks — the
//! paper chooses "periods for reconfiguration ... to coincide with the
//! completion of the decoding of LDPC message blocks, minimizing the amount
//! of state information that must be transferred between PEs". The
//! controller owns the cumulative logical↔physical map and the (fixed,
//! deterministic) migration plan.

use crate::io_transform::CumulativeMap;
use crate::phases::{MigrationPlan, PhaseCostModel};
use crate::state_transfer::StateSpec;
use crate::transform::MigrationScheme;
use hotnoc_noc::Mesh;
use serde::{Deserialize, Serialize};

/// A migration that must now be executed by the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// 1-based index of this migration.
    pub index: u64,
    /// Stall duration in cycles (all PEs halted, §2.1).
    pub stall_cycles: u64,
    /// Flit-hops of state-transfer traffic (for energy accounting).
    pub flit_hops: u64,
    /// Number of congestion-free phases executed.
    pub phases: usize,
    /// The cumulative logical→physical permutation *after* this migration.
    pub permutation: Vec<usize>,
}

/// Periodic migration controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigController {
    mesh: Mesh,
    scheme: MigrationScheme,
    period_blocks: u64,
    blocks_done: u64,
    migrations: u64,
    map: CumulativeMap,
    plan: MigrationPlan,
}

impl ReconfigController {
    /// Creates a controller that migrates after every `period_blocks`
    /// completed blocks using `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if `period_blocks == 0` or the scheme is inapplicable to the
    /// mesh (rotation on a rectangle).
    pub fn new(
        mesh: Mesh,
        scheme: MigrationScheme,
        period_blocks: u64,
        state: &StateSpec,
        cost: &PhaseCostModel,
    ) -> Self {
        assert!(period_blocks > 0, "period must be at least one block");
        assert!(scheme.is_applicable(mesh), "{scheme} not applicable");
        ReconfigController {
            mesh,
            scheme,
            period_blocks,
            blocks_done: 0,
            migrations: 0,
            map: CumulativeMap::identity(mesh),
            plan: MigrationPlan::plan(mesh, scheme, state, cost),
        }
    }

    /// The migration scheme in use.
    pub fn scheme(&self) -> MigrationScheme {
        self.scheme
    }

    /// The fixed migration plan (identical every period — deterministic).
    pub fn plan(&self) -> &MigrationPlan {
        &self.plan
    }

    /// The current cumulative logical↔physical map.
    pub fn map(&self) -> &CumulativeMap {
        &self.map
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Reports one completed LDPC block. Returns the migration to execute
    /// if this block completes a period.
    pub fn on_block_complete(&mut self) -> Option<MigrationEvent> {
        self.blocks_done += 1;
        if !self.blocks_done.is_multiple_of(self.period_blocks) {
            return None;
        }
        self.map.apply_scheme(self.scheme);
        self.migrations += 1;
        Some(MigrationEvent {
            index: self.migrations,
            stall_cycles: self.plan.total_cycles(),
            flit_hops: self.plan.total_flit_hops(),
            phases: self.plan.num_phases(),
            permutation: self.map.as_permutation(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(period: u64) -> ReconfigController {
        ReconfigController::new(
            Mesh::square(4).unwrap(),
            MigrationScheme::XYShift,
            period,
            &StateSpec::ldpc_default(),
            &PhaseCostModel::default(),
        )
    }

    #[test]
    fn fires_every_period() {
        let mut c = ctrl(4);
        let mut events = 0;
        for _ in 0..16 {
            if c.on_block_complete().is_some() {
                events += 1;
            }
        }
        assert_eq!(events, 4);
        assert_eq!(c.migrations(), 4);
    }

    #[test]
    fn period_one_fires_every_block() {
        let mut c = ctrl(1);
        for i in 1..=5 {
            let ev = c.on_block_complete().expect("fires every block");
            assert_eq!(ev.index, i);
        }
    }

    #[test]
    fn map_accumulates() {
        let mut c = ctrl(1);
        let mesh = Mesh::square(4).unwrap();
        c.on_block_complete();
        c.on_block_complete();
        // Two X-Y shifts = shift by (2, 2).
        let expect = |x: u8, y: u8| hotnoc_noc::Coord::new((x + 2) % 4, (y + 2) % 4);
        for co in mesh.iter_coords() {
            use hotnoc_noc::AddressMap;
            assert_eq!(c.map().logical_to_physical(co), expect(co.x, co.y));
        }
    }

    #[test]
    fn event_carries_plan_costs() {
        let mut c = ctrl(1);
        let ev = c.on_block_complete().unwrap();
        assert_eq!(ev.stall_cycles, c.plan().total_cycles());
        assert_eq!(ev.flit_hops, c.plan().total_flit_hops());
        assert_eq!(ev.permutation.len(), 16);
    }

    #[test]
    #[should_panic(expected = "period must be at least one block")]
    fn zero_period_rejected() {
        ctrl(0);
    }
}
