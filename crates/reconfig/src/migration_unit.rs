//! Hardware model of the migration unit (§2.3 of the paper).
//!
//! The migration unit computes, for each PE, the destination of its workload
//! from the current {X, Y} position. The paper notes that "only 3-bit
//! operands are required to address up to 64 PEs, resulting in fast
//! operation", that the unit is "small, fast, and low power", and that "the
//! same migration unit can perform all migration functions presented with
//! only minor changes to the mathematical operations, allowing dynamic
//! alteration of the migration function at runtime".

use crate::transform::MigrationScheme;
use hotnoc_noc::{Coord, Mesh};
use serde::{Deserialize, Serialize};

/// The migration unit: a tiny arithmetic block computing the transformation
/// functions, plus its cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationUnit {
    mesh: Mesh,
    scheme: MigrationScheme,
    /// Latency of one address transformation, in cycles.
    pub latency_cycles: u32,
    /// Energy of one address transformation, in joules.
    pub energy_per_op: f64,
    /// Transformations performed (for energy accounting).
    ops: u64,
}

impl MigrationUnit {
    /// Creates a unit for `mesh`, initially configured with `scheme`.
    ///
    /// The default cost model: a single-cycle datapath (two small adders and
    /// muxes over 3-bit operands) at ~0.5 pJ per transform in 160 nm.
    ///
    /// # Panics
    ///
    /// Panics if `scheme` is not applicable to `mesh` (rotation on a
    /// rectangle).
    pub fn new(mesh: Mesh, scheme: MigrationScheme) -> Self {
        assert!(
            scheme.is_applicable(mesh),
            "{scheme} not applicable to {mesh}"
        );
        MigrationUnit {
            mesh,
            scheme,
            latency_cycles: 1,
            energy_per_op: 0.5e-12,
            ops: 0,
        }
    }

    /// Bits per coordinate operand: `ceil(log2(max(W, H)))`, at least 1.
    /// For meshes up to 8x8 this is 3 bits, the paper's figure ("3-bit
    /// operands ... to address up to 64 PEs").
    pub fn operand_bits(&self) -> u32 {
        let side = self.mesh.width().max(self.mesh.height()) as u32;
        (32 - side.saturating_sub(1).leading_zeros()).max(1)
    }

    /// The currently configured migration function.
    pub fn scheme(&self) -> MigrationScheme {
        self.scheme
    }

    /// Reconfigures the migration function at runtime (§2.3: "dynamic
    /// alteration of the migration function at runtime").
    ///
    /// # Panics
    ///
    /// Panics if the new scheme is not applicable to the mesh.
    pub fn set_scheme(&mut self, scheme: MigrationScheme) {
        assert!(
            scheme.is_applicable(self.mesh),
            "{scheme} not applicable to {}",
            self.mesh
        );
        self.scheme = scheme;
    }

    /// Transforms one position, counting the operation.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the mesh.
    pub fn transform(&mut self, c: Coord) -> Coord {
        self.ops += 1;
        self.scheme.apply(c, self.mesh)
    }

    /// Transformations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total energy consumed by address transformations, in joules.
    pub fn total_energy(&self) -> f64 {
        self.ops as f64 * self.energy_per_op
    }

    /// Cycles to transform the whole chip's worth of addresses serially
    /// (one conversion unit shared by all PEs, as in §2.1).
    pub fn full_remap_latency(&self) -> u64 {
        self.mesh.len() as u64 * self.latency_cycles as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_bits_for_paper_meshes() {
        let u4 = MigrationUnit::new(Mesh::square(4).unwrap(), MigrationScheme::Rotation);
        assert_eq!(u4.operand_bits(), 2);
        let u5 = MigrationUnit::new(Mesh::square(5).unwrap(), MigrationScheme::Rotation);
        assert_eq!(u5.operand_bits(), 3);
        let u8m = MigrationUnit::new(Mesh::square(8).unwrap(), MigrationScheme::Rotation);
        assert_eq!(u8m.operand_bits(), 3); // 64 PEs with 3-bit operands (paper)
        let u64m = MigrationUnit::new(Mesh::square(64).unwrap(), MigrationScheme::XYShift);
        assert_eq!(u64m.operand_bits(), 6);
    }

    #[test]
    fn transform_counts_energy() {
        let mut u = MigrationUnit::new(Mesh::square(4).unwrap(), MigrationScheme::XYShift);
        let out = u.transform(Coord::new(3, 3));
        assert_eq!(out, Coord::new(0, 0));
        assert_eq!(u.ops(), 1);
        assert!((u.total_energy() - 0.5e-12).abs() < 1e-24);
    }

    #[test]
    fn runtime_scheme_switch() {
        let mut u = MigrationUnit::new(Mesh::square(5).unwrap(), MigrationScheme::Rotation);
        assert_eq!(u.scheme(), MigrationScheme::Rotation);
        u.set_scheme(MigrationScheme::XYShift);
        assert_eq!(u.scheme(), MigrationScheme::XYShift);
        assert_eq!(u.transform(Coord::new(4, 4)), Coord::new(0, 0));
    }

    #[test]
    #[should_panic(expected = "not applicable")]
    fn rotation_on_rectangle_rejected() {
        MigrationUnit::new(Mesh::new(4, 2).unwrap(), MigrationScheme::Rotation);
    }

    #[test]
    fn full_remap_latency_scales_with_mesh() {
        let u = MigrationUnit::new(Mesh::square(5).unwrap(), MigrationScheme::XMirror);
        assert_eq!(u.full_remap_latency(), 25);
    }
}
