//! The migration transformation functions (Table 1 of the paper).
//!
//! All possible relative-position-preserving adjustments of the logical
//! plane decompose into three primitive operations — rotation, mirroring and
//! translational shifting. The paper's Figure 1 evaluates five concrete
//! schemes; all are provided here, plus Y-translation for completeness.

use hotnoc_noc::{Coord, Mesh};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A migration function: a bijection of the mesh applied at every
/// reconfiguration period.
///
/// Coordinates follow the paper's Table 1 with `N` the mesh side length
/// (square meshes; translations also work on rectangles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationScheme {
    /// 90° rotation: `(X, Y) -> (N-1-Y, X)`.
    Rotation,
    /// X mirroring: `(X, Y) -> (N-1-X, Y)`.
    XMirror,
    /// X-Y mirroring (180° rotation): `(X, Y) -> (N-1-X, N-1-Y)`.
    XYMirror,
    /// X translation by `offset` with wrap-around:
    /// `(X, Y) -> ((X+offset) mod W, Y)`. The paper's "Right Shift" is
    /// `offset = 1`.
    XTranslation {
        /// Shift amount in tiles (taken modulo the mesh width).
        offset: u8,
    },
    /// Y translation by `offset` with wrap-around.
    YTranslation {
        /// Shift amount in tiles (taken modulo the mesh height).
        offset: u8,
    },
    /// Diagonal translation: `(X, Y) -> ((X+1) mod W, (Y+1) mod H)` — the
    /// paper's "X-Y Shift", its best performer on average.
    XYShift,
}

impl MigrationScheme {
    /// The five schemes evaluated in the paper's Figure 1, in figure order:
    /// Rot, X Mirror, X-Y Mirror, Right Shift, X-Y Shift.
    pub const FIGURE1: [MigrationScheme; 5] = [
        MigrationScheme::Rotation,
        MigrationScheme::XMirror,
        MigrationScheme::XYMirror,
        MigrationScheme::XTranslation { offset: 1 },
        MigrationScheme::XYShift,
    ];

    /// `true` if the scheme is defined on `mesh` (rotation needs a square).
    pub fn is_applicable(self, mesh: Mesh) -> bool {
        match self {
            MigrationScheme::Rotation => mesh.width() == mesh.height(),
            _ => true,
        }
    }

    /// Applies the transformation to one coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the mesh, or for
    /// [`MigrationScheme::Rotation`] on a non-square mesh.
    pub fn apply(self, c: Coord, mesh: Mesh) -> Coord {
        assert!(mesh.contains(c), "{c} outside {mesh}");
        let w = mesh.width() as u8;
        let h = mesh.height() as u8;
        match self {
            MigrationScheme::Rotation => {
                assert!(
                    self.is_applicable(mesh),
                    "rotation requires a square mesh, got {mesh}"
                );
                Coord::new(w - 1 - c.y, c.x)
            }
            MigrationScheme::XMirror => Coord::new(w - 1 - c.x, c.y),
            MigrationScheme::XYMirror => Coord::new(w - 1 - c.x, h - 1 - c.y),
            MigrationScheme::XTranslation { offset } => Coord::new((c.x + offset % w) % w, c.y),
            MigrationScheme::YTranslation { offset } => Coord::new(c.x, (c.y + offset % h) % h),
            MigrationScheme::XYShift => Coord::new((c.x + 1) % w, (c.y + 1) % h),
        }
    }

    /// Applies the transformation `k` times.
    ///
    /// # Panics
    ///
    /// Same as [`MigrationScheme::apply`].
    pub fn apply_k(self, c: Coord, mesh: Mesh, k: usize) -> Coord {
        let k = k % self.order(mesh);
        (0..k).fold(c, |acc, _| self.apply(acc, mesh))
    }

    /// The group order of the transformation on `mesh`: the smallest
    /// `k > 0` with `scheme^k = identity`.
    ///
    /// # Panics
    ///
    /// Panics for rotation on a non-square mesh.
    pub fn order(self, mesh: Mesh) -> usize {
        let w = mesh.width();
        let h = mesh.height();
        match self {
            MigrationScheme::Rotation => {
                assert!(self.is_applicable(mesh));
                if w == 1 {
                    1
                } else {
                    4
                }
            }
            MigrationScheme::XMirror | MigrationScheme::XYMirror => {
                if w == 1 && h == 1 {
                    1
                } else {
                    2
                }
            }
            MigrationScheme::XTranslation { offset } => {
                let o = (offset as usize) % w;
                if o == 0 {
                    1
                } else {
                    w / gcd(w, o)
                }
            }
            MigrationScheme::YTranslation { offset } => {
                let o = (offset as usize) % h;
                if o == 0 {
                    1
                } else {
                    h / gcd(h, o)
                }
            }
            MigrationScheme::XYShift => lcm(w, h),
        }
    }

    /// The inverse transformation as a coordinate map (applying the scheme
    /// `order - 1` more times).
    ///
    /// # Panics
    ///
    /// Same as [`MigrationScheme::apply`].
    pub fn apply_inverse(self, c: Coord, mesh: Mesh) -> Coord {
        self.apply_k(c, mesh, self.order(mesh) - 1)
    }

    /// The permutation induced on node indices: entry `i` is the node id of
    /// the tile the workload at node `i` moves to.
    ///
    /// # Panics
    ///
    /// Same as [`MigrationScheme::apply`].
    pub fn permutation(self, mesh: Mesh) -> Vec<usize> {
        mesh.iter_coords()
            .map(|c| {
                mesh.node_id(self.apply(c, mesh))
                    .expect("transform stays on mesh")
                    .index()
            })
            .collect()
    }

    /// The Table 1 representation: `(new X, new Y)` as formula strings.
    pub fn table1_row(self) -> (&'static str, &'static str) {
        match self {
            MigrationScheme::Rotation => ("N-1-Y", "X"),
            MigrationScheme::XMirror => ("N-1-X", "Y"),
            MigrationScheme::XYMirror => ("N-1-X", "N-1-Y"),
            MigrationScheme::XTranslation { .. } => ("X + Offset", "Y"),
            MigrationScheme::YTranslation { .. } => ("X", "Y + Offset"),
            MigrationScheme::XYShift => ("X + 1", "Y + 1"),
        }
    }
}

impl fmt::Display for MigrationScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationScheme::Rotation => write!(f, "Rot"),
            MigrationScheme::XMirror => write!(f, "X Mirror"),
            MigrationScheme::XYMirror => write!(f, "X-Y Mirror"),
            MigrationScheme::XTranslation { offset: 1 } => write!(f, "Right Shift"),
            MigrationScheme::XTranslation { offset } => write!(f, "X Shift({offset})"),
            MigrationScheme::YTranslation { offset } => write!(f, "Y Shift({offset})"),
            MigrationScheme::XYShift => write!(f, "X-Y Shift"),
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meshes() -> Vec<Mesh> {
        vec![Mesh::square(4).unwrap(), Mesh::square(5).unwrap()]
    }

    #[test]
    fn table1_rotation_formula() {
        // Table 1: new X = N-1-Y, new Y = X.
        let mesh = Mesh::square(4).unwrap();
        for c in mesh.iter_coords() {
            let r = MigrationScheme::Rotation.apply(c, mesh);
            assert_eq!(r.x, 3 - c.y);
            assert_eq!(r.y, c.x);
        }
    }

    #[test]
    fn table1_x_mirror_formula() {
        let mesh = Mesh::square(5).unwrap();
        for c in mesh.iter_coords() {
            let r = MigrationScheme::XMirror.apply(c, mesh);
            assert_eq!(r.x, 4 - c.x);
            assert_eq!(r.y, c.y);
        }
    }

    #[test]
    fn table1_x_translation_formula() {
        let mesh = Mesh::square(4).unwrap();
        let t = MigrationScheme::XTranslation { offset: 1 };
        for c in mesh.iter_coords() {
            let r = t.apply(c, mesh);
            assert_eq!(r.x, (c.x + 1) % 4);
            assert_eq!(r.y, c.y);
        }
    }

    #[test]
    fn all_schemes_are_bijections() {
        for mesh in meshes() {
            for s in MigrationScheme::FIGURE1 {
                let perm = s.permutation(mesh);
                let mut seen = vec![false; mesh.len()];
                for &p in &perm {
                    assert!(!seen[p], "{s} not injective on {mesh}");
                    seen[p] = true;
                }
            }
        }
    }

    #[test]
    fn orders_match_definition() {
        let m4 = Mesh::square(4).unwrap();
        let m5 = Mesh::square(5).unwrap();
        assert_eq!(MigrationScheme::Rotation.order(m4), 4);
        assert_eq!(MigrationScheme::XMirror.order(m4), 2);
        assert_eq!(MigrationScheme::XYMirror.order(m5), 2);
        assert_eq!(MigrationScheme::XTranslation { offset: 1 }.order(m4), 4);
        assert_eq!(MigrationScheme::XTranslation { offset: 2 }.order(m4), 2);
        assert_eq!(MigrationScheme::XTranslation { offset: 1 }.order(m5), 5);
        assert_eq!(MigrationScheme::XYShift.order(m4), 4);
        assert_eq!(MigrationScheme::XYShift.order(m5), 5);
    }

    #[test]
    fn order_times_apply_is_identity() {
        for mesh in meshes() {
            for s in MigrationScheme::FIGURE1 {
                let k = s.order(mesh);
                for c in mesh.iter_coords() {
                    let mut cur = c;
                    for _ in 0..k {
                        cur = s.apply(cur, mesh);
                    }
                    assert_eq!(cur, c, "{s}^{k} != id on {mesh}");
                }
            }
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        for mesh in meshes() {
            for s in MigrationScheme::FIGURE1 {
                for c in mesh.iter_coords() {
                    assert_eq!(s.apply_inverse(s.apply(c, mesh), mesh), c);
                }
            }
        }
    }

    #[test]
    fn rotation_rejects_rectangles() {
        let rect = Mesh::new(4, 2).unwrap();
        assert!(!MigrationScheme::Rotation.is_applicable(rect));
        assert!(MigrationScheme::XYShift.is_applicable(rect));
    }

    #[test]
    #[should_panic(expected = "square mesh")]
    fn rotation_panics_on_rectangle() {
        let rect = Mesh::new(4, 2).unwrap();
        MigrationScheme::Rotation.apply(Coord::new(0, 0), rect);
    }

    #[test]
    fn odd_mesh_center_fixed_by_rotation_and_mirror() {
        // §3: "In the odd-dimensioned test cases, both the rotational and
        // mirroring migration functions ignore the central PE".
        let m5 = Mesh::square(5).unwrap();
        let center = Coord::new(2, 2);
        assert_eq!(MigrationScheme::Rotation.apply(center, m5), center);
        assert_eq!(MigrationScheme::XYMirror.apply(center, m5), center);
        // X mirror fixes the whole centre column.
        assert_eq!(MigrationScheme::XMirror.apply(center, m5), center);
        // X-Y shift moves it.
        assert_ne!(MigrationScheme::XYShift.apply(center, m5), center);
    }

    #[test]
    fn right_shift_preserves_rows() {
        // §3: a hot row stays a hot row under right shifting.
        let m5 = Mesh::square(5).unwrap();
        let t = MigrationScheme::XTranslation { offset: 1 };
        for c in m5.iter_coords() {
            assert_eq!(t.apply(c, m5).y, c.y);
        }
    }

    #[test]
    fn xy_shift_changes_rows_and_columns() {
        let m5 = Mesh::square(5).unwrap();
        for c in m5.iter_coords() {
            let r = MigrationScheme::XYShift.apply(c, m5);
            assert_ne!(r.x, c.x);
            assert_ne!(r.y, c.y);
        }
    }

    #[test]
    fn apply_k_matches_iteration() {
        let m4 = Mesh::square(4).unwrap();
        let s = MigrationScheme::Rotation;
        let c = Coord::new(1, 0);
        assert_eq!(s.apply_k(c, m4, 2), s.apply(s.apply(c, m4), m4));
        assert_eq!(s.apply_k(c, m4, 4), c);
        assert_eq!(s.apply_k(c, m4, 5), s.apply(c, m4));
    }

    #[test]
    fn display_names_match_figure1_legend() {
        let names: Vec<String> = MigrationScheme::FIGURE1
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            names,
            vec!["Rot", "X Mirror", "X-Y Mirror", "Right Shift", "X-Y Shift"]
        );
    }

    #[test]
    fn table1_rows() {
        assert_eq!(MigrationScheme::Rotation.table1_row(), ("N-1-Y", "X"));
        assert_eq!(MigrationScheme::XMirror.table1_row(), ("N-1-X", "Y"));
        assert_eq!(
            MigrationScheme::XTranslation { offset: 3 }.table1_row(),
            ("X + Offset", "Y")
        );
    }
}
