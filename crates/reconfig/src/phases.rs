//! Congestion-free phased migration planning (§2.2 of the paper).
//!
//! "During the migration operation, it is possible to ensure congestion-free
//! packet movement by transforming groups of PEs in phases. This
//! congestion-free operation allows for deterministic migration times,
//! making our technique applicable to real-time systems."
//!
//! The planner decomposes a scheme's moves into phases such that within a
//! phase no two state-transfer streams share a directed mesh link; every
//! stream therefore proceeds at full link bandwidth and the phase duration
//! is exactly `max(path fill) + flits` cycles — deterministic by
//! construction.

use crate::state_transfer::StateSpec;
use crate::transform::MigrationScheme;
use hotnoc_noc::routing::{route_path, XyRouting};
use hotnoc_noc::{Coord, Direction, Mesh};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One PE's state transfer: its workload moves `from -> to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// Current physical tile.
    pub from: Coord,
    /// Destination physical tile (`scheme.apply(from)`).
    pub to: Coord,
    /// Flits of configuration + state carried.
    pub flits: u32,
    /// XY-route hop count.
    pub hops: u32,
}

/// A group of link-disjoint moves executed simultaneously.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// The moves in this phase.
    pub moves: Vec<Move>,
    /// Phase duration in cycles (pipeline fill of the longest path plus the
    /// serialized flit stream, plus the per-phase barrier overhead).
    pub duration_cycles: u64,
    /// Total flit-hops in this phase (energy input).
    pub flit_hops: u64,
}

/// Cost-model constants for phase timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCostModel {
    /// Cycles per hop of pipeline fill (router + link latency).
    pub cycles_per_hop: u32,
    /// Fixed overhead per phase: halt/drain barrier and the conversion-unit
    /// pass over the configuration stream.
    pub phase_overhead_cycles: u32,
}

impl Default for PhaseCostModel {
    fn default() -> Self {
        PhaseCostModel {
            cycles_per_hop: 2,
            // Halt/drain barrier across all PEs plus the conversion-unit
            // pass over the configuration stream, per phase.
            phase_overhead_cycles: 96,
        }
    }
}

/// A complete, deterministic migration plan for one application of a scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The scheme this plan implements.
    pub scheme: MigrationScheme,
    /// The phases, executed back to back.
    pub phases: Vec<Phase>,
}

impl MigrationPlan {
    /// Plans the migration of every PE under `scheme` on `mesh`.
    ///
    /// Moves are considered in node-id order and greedily packed into the
    /// earliest phase whose directed-link usage they do not conflict with —
    /// deterministic, so repeated calls yield identical plans (a requirement
    /// for the paper's real-time argument).
    ///
    /// # Panics
    ///
    /// Panics for rotation on a non-square mesh.
    pub fn plan(
        mesh: Mesh,
        scheme: MigrationScheme,
        state: &StateSpec,
        cost: &PhaseCostModel,
    ) -> Self {
        let flits = state.flits_per_pe();
        let moves: Vec<Move> = mesh
            .iter_coords()
            .filter_map(|from| {
                let to = scheme.apply(from, mesh);
                (to != from).then(|| Move {
                    from,
                    to,
                    flits,
                    hops: from.manhattan(to),
                })
            })
            .collect();

        // Moves grouped per phase together with the directed links that
        // phase already occupies.
        type PhaseSlot = (Vec<Move>, HashSet<(Coord, Direction)>);
        let mut phases: Vec<PhaseSlot> = Vec::new();
        for mv in moves {
            let links = directed_links(mesh, mv.from, mv.to);
            let slot = phases
                .iter_mut()
                .find(|(_, used)| links.iter().all(|l| !used.contains(l)));
            match slot {
                Some((ms, used)) => {
                    ms.push(mv);
                    used.extend(links);
                }
                None => {
                    let mut used = HashSet::new();
                    used.extend(links);
                    phases.push((vec![mv], used));
                }
            }
        }

        let phases = phases
            .into_iter()
            .map(|(moves, _)| {
                let max_fill = moves
                    .iter()
                    .map(|m| m.hops as u64 * cost.cycles_per_hop as u64)
                    .max()
                    .unwrap_or(0);
                let flit_stream = moves.iter().map(|m| m.flits as u64).max().unwrap_or(0);
                let flit_hops = moves.iter().map(|m| m.flits as u64 * m.hops as u64).sum();
                Phase {
                    moves,
                    duration_cycles: max_fill + flit_stream + cost.phase_overhead_cycles as u64,
                    flit_hops,
                }
            })
            .collect();

        MigrationPlan { scheme, phases }
    }

    /// Total stall time: PEs are halted for the whole plan (§2.1).
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_cycles).sum()
    }

    /// Total flit-hops across all phases (the dominant dynamic-energy term).
    pub fn total_flit_hops(&self) -> u64 {
        self.phases.iter().map(|p| p.flit_hops).sum()
    }

    /// Total number of PE moves.
    pub fn total_moves(&self) -> usize {
        self.phases.iter().map(|p| p.moves.len()).sum()
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// The [`hotnoc_obs::TraceEvent::Migration`] record describing one
    /// execution of this plan, priced at `energy_j` joules by the caller's
    /// energy model. Lives here so every consumer (periodic and adaptive
    /// co-simulation) reports migrations with identical cost semantics.
    pub fn trace_event(&self, cycle: u64, energy_j: f64) -> hotnoc_obs::TraceEvent {
        hotnoc_obs::TraceEvent::Migration {
            cycle,
            scheme: self.scheme.to_string(),
            phases: self.num_phases() as u64,
            flit_hops: self.total_flit_hops(),
            stall_cycles: self.total_cycles(),
            energy_j,
        }
    }

    /// Attributes the state-transfer flit-hops to the tiles whose routers
    /// forward them (the upstream tile of every traversed link). This is
    /// the spatial distribution of migration energy: rotation's long
    /// crossing paths concentrate traffic around the mesh centre, which is
    /// part of its energy penalty on centre-hot configurations (§3).
    ///
    /// # Panics
    ///
    /// Panics if a move lies outside `mesh` (cannot happen for plans built
    /// by [`MigrationPlan::plan`] on the same mesh).
    pub fn per_tile_flit_hops(&self, mesh: Mesh) -> Vec<u64> {
        let mut hops = vec![0u64; mesh.len()];
        for phase in &self.phases {
            for mv in &phase.moves {
                for (tile, _) in directed_links(mesh, mv.from, mv.to) {
                    let idx = mesh.node_id(tile).expect("move on mesh").index();
                    hops[idx] += mv.flits as u64;
                }
            }
        }
        hops
    }

    /// Flits handled by each tile's conversion unit and state memories: the
    /// full payload is read and transformed at the source PE and written at
    /// the destination PE (§2.1: "the configuration and state information
    /// of each PE is passed through a conversion unit").
    ///
    /// # Panics
    ///
    /// Panics if a move lies outside `mesh`.
    pub fn per_tile_endpoint_flits(&self, mesh: Mesh) -> Vec<u64> {
        let mut flits = vec![0u64; mesh.len()];
        for phase in &self.phases {
            for mv in &phase.moves {
                let src = mesh.node_id(mv.from).expect("move on mesh").index();
                let dst = mesh.node_id(mv.to).expect("move on mesh").index();
                flits[src] += mv.flits as u64;
                flits[dst] += mv.flits as u64;
            }
        }
        flits
    }
}

/// The directed links of the XY route `from -> to`.
fn directed_links(mesh: Mesh, from: Coord, to: Coord) -> Vec<(Coord, Direction)> {
    let path = route_path(mesh, &XyRouting, from, to);
    path.windows(2)
        .map(|w| {
            let dir = if w[1].x > w[0].x {
                Direction::East
            } else if w[1].x < w[0].x {
                Direction::West
            } else if w[1].y > w[0].y {
                Direction::North
            } else {
                Direction::South
            };
            (w[0], dir)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(scheme: MigrationScheme, n: usize) -> MigrationPlan {
        MigrationPlan::plan(
            Mesh::square(n).unwrap(),
            scheme,
            &StateSpec::ldpc_default(),
            &PhaseCostModel::default(),
        )
    }

    #[test]
    fn every_pe_moves_exactly_once_except_fixed_points() {
        for n in [4usize, 5] {
            for s in MigrationScheme::FIGURE1 {
                let p = plan(s, n);
                let mesh = Mesh::square(n).unwrap();
                let fixed = mesh
                    .iter_coords()
                    .filter(|&c| s.apply(c, mesh) == c)
                    .count();
                assert_eq!(p.total_moves(), n * n - fixed, "{s} on {n}x{n}");
                let mut sources: Vec<Coord> = p
                    .phases
                    .iter()
                    .flat_map(|ph| ph.moves.iter().map(|m| m.from))
                    .collect();
                sources.sort_unstable();
                sources.dedup();
                assert_eq!(sources.len(), p.total_moves(), "duplicate source in {s}");
            }
        }
    }

    #[test]
    fn phases_are_link_disjoint() {
        for n in [4usize, 5] {
            let mesh = Mesh::square(n).unwrap();
            for s in MigrationScheme::FIGURE1 {
                let p = plan(s, n);
                for phase in &p.phases {
                    let mut used = HashSet::new();
                    for mv in &phase.moves {
                        for l in directed_links(mesh, mv.from, mv.to) {
                            assert!(used.insert(l), "{s}: link reused within a phase");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn plan_is_deterministic() {
        for s in MigrationScheme::FIGURE1 {
            assert_eq!(plan(s, 5), plan(s, 5));
        }
    }

    #[test]
    fn xy_shift_is_single_phase_and_fast() {
        // X-Y shift routes are mutually link-disjoint on a mesh; the whole
        // migration completes in one phase of ~flits + fill cycles, which at
        // 500 MHz is the ~1.7 us stall behind the paper's 1.6 % penalty.
        let p = plan(MigrationScheme::XYShift, 5);
        assert_eq!(p.num_phases(), 1, "X-Y shift should not conflict");
        let stall_us = p.total_cycles() as f64 / 500.0; // cycles / MHz = us
        assert!((1.0..3.0).contains(&stall_us), "stall {stall_us} us");
    }

    #[test]
    fn rotation_needs_more_phases_than_xy_shift() {
        // Rotation's long crossing paths conflict heavily; the paper observes
        // it has the largest reconfiguration penalty.
        for n in [4usize, 5] {
            let rot = plan(MigrationScheme::Rotation, n);
            let xys = plan(MigrationScheme::XYShift, n);
            assert!(
                rot.num_phases() > xys.num_phases(),
                "{n}x{n}: rot {} phases vs xys {}",
                rot.num_phases(),
                xys.num_phases()
            );
            assert!(rot.total_cycles() > xys.total_cycles());
        }
    }

    #[test]
    fn flit_hops_match_distance_sum() {
        let mesh = Mesh::square(5).unwrap();
        let s = MigrationScheme::XYShift;
        let p = plan(s, 5);
        let flits = StateSpec::ldpc_default().flits_per_pe() as u64;
        let expected: u64 = mesh
            .iter_coords()
            .map(|c| c.manhattan(s.apply(c, mesh)) as u64 * flits)
            .sum();
        assert_eq!(p.total_flit_hops(), expected);
    }

    #[test]
    fn per_tile_flit_hops_sum_to_total() {
        for n in [4usize, 5] {
            let mesh = Mesh::square(n).unwrap();
            for s in MigrationScheme::FIGURE1 {
                let p = plan(s, n);
                let per_tile = p.per_tile_flit_hops(mesh);
                let total: u64 = per_tile.iter().sum();
                assert_eq!(total, p.total_flit_hops(), "{s} on {n}x{n}");
            }
        }
    }

    #[test]
    fn rotation_forwards_more_traffic_per_tile_than_right_shift() {
        // Longer mean moves mean more forwarding work per migration: the
        // energy-relevant difference between schemes (§3's rotation energy
        // penalty). Right shift moves 1 hop; rotation averages 3.2 on 5x5.
        let mesh = Mesh::square(5).unwrap();
        let rot = plan(MigrationScheme::Rotation, 5).per_tile_flit_hops(mesh);
        let rs = plan(MigrationScheme::XTranslation { offset: 1 }, 5).per_tile_flit_hops(mesh);
        assert!(rot.iter().sum::<u64>() > rs.iter().sum::<u64>());
        // The rotation load map inherits the scheme's symmetry: applying
        // the rotation to the map leaves it invariant (the YX-vs-XY route
        // asymmetry cancels over the four-fold orbit).
        let rotated: Vec<u64> = {
            let mut v = vec![0u64; mesh.len()];
            for c in mesh.iter_coords() {
                let src = mesh.node_id(c).unwrap().index();
                let dst = mesh
                    .node_id(MigrationScheme::Rotation.apply(c, mesh))
                    .unwrap()
                    .index();
                v[dst] = rot[src];
            }
            v
        };
        let total: u64 = rot.iter().sum();
        let rotated_total: u64 = rotated.iter().sum();
        assert_eq!(total, rotated_total);
    }

    #[test]
    fn endpoint_flits_cover_both_ends() {
        let mesh = Mesh::square(5).unwrap();
        let p = plan(MigrationScheme::XYShift, 5);
        let endpoints = p.per_tile_endpoint_flits(mesh);
        let flits = StateSpec::ldpc_default().flits_per_pe() as u64;
        // Every tile moves and receives exactly once under X-Y shift.
        assert!(endpoints.iter().all(|&e| e == 2 * flits));
        // Fixed points of a mirror neither send nor receive.
        let xm = plan(MigrationScheme::XMirror, 5);
        let em = xm.per_tile_endpoint_flits(mesh);
        let center_col: Vec<usize> = (0..5)
            .map(|y| mesh.node_id(Coord::new(2, y)).unwrap().index())
            .collect();
        for idx in center_col {
            assert_eq!(em[idx], 0, "fixed point moved state");
        }
    }

    #[test]
    fn durations_are_positive_and_deterministic_sum() {
        let p = plan(MigrationScheme::XYMirror, 4);
        assert!(p.phases.iter().all(|ph| ph.duration_cycles > 0));
        assert_eq!(
            p.total_cycles(),
            p.phases.iter().map(|ph| ph.duration_cycles).sum::<u64>()
        );
    }
}
