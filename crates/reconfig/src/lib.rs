//! # hotnoc-reconfig — runtime reconfiguration engine
//!
//! The primary contribution of the DATE'05 paper: periodic spatial remapping
//! of workload across a mesh NoC using algebraically simple plane
//! transformations (Table 1 of the paper), implemented so that
//!
//! * the new position of every workload is computable from its current
//!   position ([`transform::MigrationScheme`]),
//! * relative positioning is preserved, making the traffic impact
//!   predictable ([`orbit`] analyzes the induced permutation group),
//! * migration itself is congestion free and deterministic in time by
//!   transforming groups of PEs in phases ([`phases::MigrationPlan`]),
//! * the operation is transparent to the outside world thanks to address
//!   transformation at the chip I/O boundary
//!   ([`io_transform::CumulativeMap`] implements
//!   `hotnoc_noc::AddressMap`),
//! * the hardware cost is small: 3-bit operands address up to 64 PEs in the
//!   migration unit ([`migration_unit::MigrationUnit`]).
//!
//! ```
//! use hotnoc_noc::{Coord, Mesh};
//! use hotnoc_reconfig::MigrationScheme;
//!
//! let mesh = Mesh::square(4)?;
//! // Table 1: Rotation maps (X, Y) to (N-1-Y, X).
//! let rot = MigrationScheme::Rotation;
//! assert_eq!(rot.apply(Coord::new(1, 2), mesh), Coord::new(1, 1));
//! // Four rotations restore the identity.
//! assert_eq!(rot.order(mesh), 4);
//! # Ok::<(), hotnoc_noc::NocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod io_transform;
pub mod migration_unit;
pub mod orbit;
pub mod phases;
pub mod state_transfer;
pub mod transform;

pub use controller::{MigrationEvent, ReconfigController};
pub use io_transform::CumulativeMap;
pub use migration_unit::MigrationUnit;
pub use orbit::OrbitDecomposition;
pub use phases::{MigrationPlan, Move, Phase};
pub use state_transfer::StateSpec;
pub use transform::MigrationScheme;
