//! Error types for the LDPC crate.

use std::error::Error;
use std::fmt;

/// Errors returned by LDPC construction, encoding and mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LdpcError {
    /// Regular-code parameters are inconsistent (`n * wc` must equal
    /// `m * wr` with integral `m`).
    InvalidCodeParams {
        /// Block length requested.
        n: usize,
        /// Column (variable) weight.
        wc: usize,
        /// Row (check) weight.
        wr: usize,
    },
    /// The message length does not match the code dimension.
    MessageLengthMismatch {
        /// Expected message bits.
        expected: usize,
        /// Provided message bits.
        got: usize,
    },
    /// The LLR vector length does not match the block length.
    LlrLengthMismatch {
        /// Expected LLRs.
        expected: usize,
        /// Provided LLRs.
        got: usize,
    },
    /// A cluster count that cannot partition the code (zero or more
    /// clusters than nodes).
    InvalidClusterCount {
        /// Requested clusters.
        clusters: usize,
    },
    /// Weighted mapping weights are invalid (wrong length, negative or all
    /// zero).
    InvalidWeights,
}

impl fmt::Display for LdpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdpcError::InvalidCodeParams { n, wc, wr } => {
                write!(f, "invalid regular code parameters n={n}, wc={wc}, wr={wr}")
            }
            LdpcError::MessageLengthMismatch { expected, got } => {
                write!(f, "message has {got} bits, code dimension is {expected}")
            }
            LdpcError::LlrLengthMismatch { expected, got } => {
                write!(
                    f,
                    "llr vector has {got} entries, block length is {expected}"
                )
            }
            LdpcError::InvalidClusterCount { clusters } => {
                write!(f, "cannot partition code into {clusters} clusters")
            }
            LdpcError::InvalidWeights => write!(f, "cluster weights are invalid"),
        }
    }
}

impl Error for LdpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            LdpcError::InvalidCodeParams {
                n: 10,
                wc: 3,
                wr: 7,
            },
            LdpcError::MessageLengthMismatch {
                expected: 5,
                got: 4,
            },
            LdpcError::LlrLengthMismatch {
                expected: 8,
                got: 2,
            },
            LdpcError::InvalidClusterCount { clusters: 0 },
            LdpcError::InvalidWeights,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
