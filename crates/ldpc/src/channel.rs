//! Channel models: BPSK over AWGN, and a binary symmetric channel.
//!
//! The paper drives its chips "with an encoded message"; we transmit encoded
//! blocks over a standard AWGN channel so decoder iteration counts (and thus
//! PE activity) follow realistic convergence behaviour.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// BPSK-over-AWGN channel producing per-bit log-likelihood ratios.
///
/// `snr_db` is Eb/N0 in decibels; the noise variance accounts for the code
/// rate (`sigma^2 = 1 / (2 * rate * 10^(snr/10))`). LLR convention: positive
/// means "bit is 0".
#[derive(Debug, Clone)]
pub struct AwgnChannel {
    snr_db: f64,
    rate: f64,
    rng: StdRng,
}

impl AwgnChannel {
    /// Creates a channel at `snr_db` (Eb/N0) for a code of rate `rate`,
    /// with a deterministic noise seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]` or `snr_db` is not finite.
    pub fn new(snr_db: f64, rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        assert!(snr_db.is_finite(), "snr must be finite");
        AwgnChannel {
            snr_db,
            rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Noise standard deviation implied by the SNR and rate.
    pub fn sigma(&self) -> f64 {
        let es_n0 = self.rate * 10.0_f64.powf(self.snr_db / 10.0);
        (1.0 / (2.0 * es_n0)).sqrt()
    }

    /// Transmits a codeword, returning channel LLRs.
    pub fn transmit(&mut self, bits: &[bool]) -> Vec<f64> {
        let sigma = self.sigma();
        let scale = 2.0 / (sigma * sigma);
        bits.iter()
            .map(|&b| {
                let tx = if b { -1.0 } else { 1.0 };
                let noise = sigma * self.sample_gaussian();
                (tx + noise) * scale
            })
            .collect()
    }

    /// Box-Muller standard normal sample.
    fn sample_gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Binary symmetric channel producing hard-decision LLRs.
#[derive(Debug, Clone)]
pub struct BscChannel {
    /// Crossover probability.
    p: f64,
    rng: StdRng,
}

impl BscChannel {
    /// Creates a BSC with crossover probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 0.5`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p < 0.5, "crossover must be in (0, 0.5)");
        BscChannel {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Transmits a codeword, returning the channel LLR of each received bit.
    pub fn transmit(&mut self, bits: &[bool]) -> Vec<f64> {
        let llr_mag = ((1.0 - self.p) / self.p).ln();
        bits.iter()
            .map(|&b| {
                let flipped = self.rng.gen_bool(self.p);
                let received = b ^ flipped;
                if received {
                    -llr_mag
                } else {
                    llr_mag
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_decreases_with_snr() {
        let lo = AwgnChannel::new(1.0, 0.5, 0).sigma();
        let hi = AwgnChannel::new(6.0, 0.5, 0).sigma();
        assert!(hi < lo);
    }

    #[test]
    fn high_snr_llrs_match_bits() {
        let mut ch = AwgnChannel::new(12.0, 0.5, 3);
        let bits = vec![false, true, true, false, true];
        let llrs = ch.transmit(&bits);
        for (b, l) in bits.iter().zip(&llrs) {
            assert_eq!(*b, *l < 0.0, "sign mismatch at high SNR");
        }
    }

    #[test]
    fn awgn_is_reproducible() {
        let mut a = AwgnChannel::new(3.0, 0.5, 7);
        let mut b = AwgnChannel::new(3.0, 0.5, 7);
        let bits = vec![true; 64];
        assert_eq!(a.transmit(&bits), b.transmit(&bits));
    }

    #[test]
    fn bsc_flip_rate_near_p() {
        let mut ch = BscChannel::new(0.1, 11);
        let bits = vec![false; 20_000];
        let llrs = ch.transmit(&bits);
        let flips = llrs.iter().filter(|&&l| l < 0.0).count();
        let rate = flips as f64 / bits.len() as f64;
        assert!((rate - 0.1).abs() < 0.01, "flip rate {rate}");
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn bad_rate_panics() {
        AwgnChannel::new(3.0, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "crossover must be in")]
    fn bad_crossover_panics() {
        BscChannel::new(0.6, 0);
    }
}
