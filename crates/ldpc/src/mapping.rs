//! Partitioning of LDPC variable/check nodes into per-PE clusters.
//!
//! The paper's five configurations (A, B on 4x4; C, D, E on 5x5) differ "due
//! to the irregularity of the communication patterns and the amount of
//! computation mapped to a single PE" — exactly the degrees of freedom of
//! [`ClusterMapping::weighted`]: per-cluster weights control how much of the
//! Tanner graph each PE owns.

use crate::code::LdpcCode;
use crate::error::LdpcError;
use serde::{Deserialize, Serialize};

/// Assignment of every variable and check node to one of `n_clusters`
/// PE clusters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterMapping {
    n_clusters: usize,
    var_cluster: Vec<usize>,
    chk_cluster: Vec<usize>,
}

impl ClusterMapping {
    /// Splits nodes into equally sized contiguous runs.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::InvalidClusterCount`] if `n_clusters` is zero or
    /// exceeds the number of variables or checks.
    pub fn contiguous(code: &LdpcCode, n_clusters: usize) -> Result<Self, LdpcError> {
        ClusterMapping::weighted(code, &vec![1.0; n_clusters])
    }

    /// Splits nodes into contiguous runs sized proportionally to `weights`
    /// (largest-remainder apportionment, every cluster gets at least one
    /// variable and one check).
    ///
    /// # Errors
    ///
    /// * [`LdpcError::InvalidClusterCount`] for zero clusters or more
    ///   clusters than nodes.
    /// * [`LdpcError::InvalidWeights`] for non-positive or non-finite
    ///   weights.
    pub fn weighted(code: &LdpcCode, weights: &[f64]) -> Result<Self, LdpcError> {
        let n_clusters = weights.len();
        if n_clusters == 0 || n_clusters > code.n() || n_clusters > code.m() {
            return Err(LdpcError::InvalidClusterCount {
                clusters: n_clusters,
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return Err(LdpcError::InvalidWeights);
        }
        let var_counts = apportion(code.n(), weights);
        let chk_counts = apportion(code.m(), weights);
        let expand = |counts: &[usize]| {
            let mut v = Vec::new();
            for (cluster, &count) in counts.iter().enumerate() {
                v.extend(std::iter::repeat_n(cluster, count));
            }
            v
        };
        Ok(ClusterMapping {
            n_clusters,
            var_cluster: expand(&var_counts),
            chk_cluster: expand(&chk_counts),
        })
    }

    /// Number of clusters (PEs).
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Cluster of each variable node.
    pub fn var_cluster(&self) -> &[usize] {
        &self.var_cluster
    }

    /// Cluster of each check node.
    pub fn chk_cluster(&self) -> &[usize] {
        &self.chk_cluster
    }

    /// Edge-operation count per cluster per decoding iteration: each Tanner
    /// edge costs one variable-side op (at the variable's cluster) and one
    /// check-side op (at the check's cluster).
    pub fn ops_per_cluster(&self, code: &LdpcCode) -> Vec<u64> {
        let mut ops = vec![0u64; self.n_clusters];
        for (r, c) in code.h().entries() {
            ops[self.chk_cluster[r]] += 1;
            ops[self.var_cluster[c]] += 1;
        }
        ops
    }

    /// Variable-side edge count per cluster (work in the var→check phase).
    pub fn var_ops_per_cluster(&self, code: &LdpcCode) -> Vec<u64> {
        let mut ops = vec![0u64; self.n_clusters];
        for (_, c) in code.h().entries() {
            ops[self.var_cluster[c]] += 1;
        }
        ops
    }

    /// Check-side edge count per cluster (work in the check→var phase).
    pub fn chk_ops_per_cluster(&self, code: &LdpcCode) -> Vec<u64> {
        let mut ops = vec![0u64; self.n_clusters];
        for (r, _) in code.h().entries() {
            ops[self.chk_cluster[r]] += 1;
        }
        ops
    }

    /// Inter-cluster message counts per iteration phase:
    /// `t[i][j]` = messages from cluster `i`'s variables to cluster `j`'s
    /// checks in the var→check phase (the check→var phase is the
    /// transpose). Diagonal entries are local and travel no links.
    pub fn traffic_matrix(&self, code: &LdpcCode) -> Vec<Vec<u64>> {
        let mut t = vec![vec![0u64; self.n_clusters]; self.n_clusters];
        for (r, c) in code.h().entries() {
            t[self.var_cluster[c]][self.chk_cluster[r]] += 1;
        }
        t
    }
}

/// Largest-remainder apportionment of `total` items over `weights`,
/// guaranteeing at least one item per bucket.
fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    let k = weights.len();
    debug_assert!(total >= k, "fewer items than buckets");
    let sum: f64 = weights.iter().sum();
    let spare = total - k; // one reserved per bucket
    let quotas: Vec<f64> = weights.iter().map(|w| w / sum * spare as f64).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    // Distribute the remainder to the largest fractional parts.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let fa = quotas[a] - quotas[a].floor();
        let fb = quotas[b] - quotas[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in order.iter().take(spare - assigned) {
        counts[i] += 1;
    }
    for c in counts.iter_mut() {
        *c += 1; // the reserved item
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code() -> LdpcCode {
        LdpcCode::gallager(240, 3, 6, 5).unwrap()
    }

    #[test]
    fn contiguous_covers_everything() {
        let c = code();
        let m = ClusterMapping::contiguous(&c, 16).unwrap();
        assert_eq!(m.var_cluster().len(), 240);
        assert_eq!(m.chk_cluster().len(), 120);
        assert_eq!(m.n_clusters(), 16);
        assert!(m.var_cluster().iter().all(|&cl| cl < 16));
        // Equal split: 240/16 = 15 vars each.
        for cl in 0..16 {
            let count = m.var_cluster().iter().filter(|&&x| x == cl).count();
            assert_eq!(count, 15);
        }
    }

    #[test]
    fn weighted_apportions_proportionally() {
        let c = code();
        let mut weights = vec![1.0; 16];
        weights[3] = 4.0; // cluster 3 gets ~4x the work
        let m = ClusterMapping::weighted(&c, &weights).unwrap();
        let counts: Vec<usize> = (0..16)
            .map(|cl| m.var_cluster().iter().filter(|&&x| x == cl).count())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 240);
        assert!(
            counts[3] > 2 * counts[0],
            "heavy cluster not heavy: {counts:?}"
        );
        assert!(counts.iter().all(|&x| x >= 1));
    }

    #[test]
    fn ops_follow_weights() {
        let c = code();
        let mut weights = vec![1.0; 16];
        weights[5] = 3.0;
        let m = ClusterMapping::weighted(&c, &weights).unwrap();
        let ops = m.ops_per_cluster(&c);
        let total: u64 = ops.iter().sum();
        assert_eq!(total, 2 * c.edges() as u64);
        let mean_other: f64 = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 5)
            .map(|(_, &o)| o as f64)
            .sum::<f64>()
            / 15.0;
        assert!(ops[5] as f64 > 1.8 * mean_other, "ops {ops:?}");
    }

    #[test]
    fn var_plus_chk_ops_equal_total() {
        let c = code();
        let m = ClusterMapping::contiguous(&c, 25).unwrap();
        let v = m.var_ops_per_cluster(&c);
        let k = m.chk_ops_per_cluster(&c);
        let t = m.ops_per_cluster(&c);
        for i in 0..25 {
            assert_eq!(v[i] + k[i], t[i]);
        }
    }

    #[test]
    fn traffic_matrix_conserves_edges() {
        let c = code();
        let m = ClusterMapping::contiguous(&c, 16).unwrap();
        let t = m.traffic_matrix(&c);
        let total: u64 = t.iter().flatten().sum();
        assert_eq!(total, c.edges() as u64);
        // A random-permutation code spreads traffic widely: most
        // off-diagonal pairs see messages.
        let nonzero_offdiag = t
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().filter(move |(j, _)| i != *j))
            .filter(|(_, &v)| v > 0)
            .count();
        assert!(nonzero_offdiag > 100, "traffic too concentrated");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let c = code();
        assert!(ClusterMapping::contiguous(&c, 0).is_err());
        assert!(ClusterMapping::contiguous(&c, 10_000).is_err());
        assert!(ClusterMapping::weighted(&c, &[1.0, -1.0]).is_err());
        assert!(ClusterMapping::weighted(&c, &[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn apportion_exact_totals() {
        let counts = apportion(25, &[1.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(counts, vec![5; 5]);
        let counts = apportion(10, &[3.0, 1.0]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts[0] > counts[1]);
    }
}
