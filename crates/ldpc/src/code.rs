//! LDPC code construction.
//!
//! The paper's chips implement a decoder for a regular LDPC code
//! (Theocharides et al., ISVLSI'05 use structured regular codes). We build
//! (wc, wr)-regular Gallager ensembles: the parity-check matrix is a stack
//! of `wc` strips, the first connecting check `i` to variables
//! `i*wr .. (i+1)*wr`, the others random column permutations of it.

use crate::error::LdpcError;
use crate::matrix::SparseBinMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// An LDPC code: a sparse parity-check matrix with construction metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LdpcCode {
    h: SparseBinMatrix,
    wc: usize,
    wr: usize,
}

impl LdpcCode {
    /// Constructs a (wc, wr)-regular Gallager code of block length `n`.
    ///
    /// The number of checks is `m = n * wc / wr`. A few random permutations
    /// are tried per strip to reduce (not necessarily eliminate) 4-cycles.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::InvalidCodeParams`] unless `wr` divides `n * wc`
    /// and `n` is a multiple of `wr` with `0 < wc < wr <= n`.
    pub fn gallager(n: usize, wc: usize, wr: usize, seed: u64) -> Result<Self, LdpcError> {
        if wc == 0 || wr == 0 || wc >= wr || wr > n || !n.is_multiple_of(wr) {
            return Err(LdpcError::InvalidCodeParams { n, wc, wr });
        }
        let checks_per_strip = n / wr;
        let m = checks_per_strip * wc;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = SparseBinMatrix::new(m, n);

        for strip in 0..wc {
            // Try a few permutations; keep the one adding fewest 4-cycles.
            let mut best: Option<(usize, Vec<usize>)> = None;
            let attempts = if strip == 0 { 1 } else { 4 };
            for _ in 0..attempts {
                let mut perm: Vec<usize> = (0..n).collect();
                if strip > 0 {
                    perm.shuffle(&mut rng);
                }
                let mut trial = h.clone();
                for check in 0..checks_per_strip {
                    for k in 0..wr {
                        trial.set(strip * checks_per_strip + check, perm[check * wr + k]);
                    }
                }
                let cycles = trial.count_4cycles();
                if best.as_ref().is_none_or(|(c, _)| cycles < *c) {
                    best = Some((cycles, perm));
                }
            }
            let (_, perm) = best.expect("at least one attempt");
            for check in 0..checks_per_strip {
                for k in 0..wr {
                    h.set(strip * checks_per_strip + check, perm[check * wr + k]);
                }
            }
        }

        Ok(LdpcCode { h, wc, wr })
    }

    /// Block length (number of variable nodes).
    pub fn n(&self) -> usize {
        self.h.cols()
    }

    /// Number of parity checks (rows of H; some may be linearly dependent).
    pub fn m(&self) -> usize {
        self.h.rows()
    }

    /// Design rate `1 - m/n` (the true rate is `>=` this when H has
    /// dependent rows).
    pub fn rate(&self) -> f64 {
        1.0 - self.m() as f64 / self.n() as f64
    }

    /// Variable (column) degree of the construction.
    pub fn wc(&self) -> usize {
        self.wc
    }

    /// Check (row) degree of the construction.
    pub fn wr(&self) -> usize {
        self.wr
    }

    /// Number of Tanner-graph edges.
    pub fn edges(&self) -> usize {
        self.h.nnz()
    }

    /// The parity-check matrix.
    pub fn h(&self) -> &SparseBinMatrix {
        &self.h
    }

    /// `true` if `bits` satisfies every parity check.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.n()`.
    pub fn is_codeword(&self, bits: &[bool]) -> bool {
        self.h.syndrome(bits).iter().all(|&s| !s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallager_is_regular() {
        let code = LdpcCode::gallager(120, 3, 6, 1).unwrap();
        assert_eq!(code.n(), 120);
        assert_eq!(code.m(), 60);
        assert_eq!(code.edges(), 360);
        for c in 0..code.n() {
            assert_eq!(code.h().col(c).len(), 3, "column {c} weight");
        }
        for r in 0..code.m() {
            assert_eq!(code.h().row(r).len(), 6, "row {r} weight");
        }
        assert!((code.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_word_is_codeword() {
        let code = LdpcCode::gallager(60, 3, 6, 2).unwrap();
        assert!(code.is_codeword(&[false; 60]));
        // A single flipped bit violates wc checks.
        let mut w = vec![false; 60];
        w[7] = true;
        assert!(!code.is_codeword(&w));
        let syn = code.h().syndrome(&w);
        assert_eq!(syn.iter().filter(|&&s| s).count(), 3);
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = LdpcCode::gallager(120, 3, 6, 9).unwrap();
        let b = LdpcCode::gallager(120, 3, 6, 9).unwrap();
        let c = LdpcCode::gallager(120, 3, 6, 10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(LdpcCode::gallager(100, 3, 6, 0).is_err()); // 100 % 6 != 0
        assert!(LdpcCode::gallager(120, 6, 3, 0).is_err()); // wc >= wr
        assert!(LdpcCode::gallager(120, 0, 6, 0).is_err());
        assert!(LdpcCode::gallager(4, 3, 6, 0).is_err()); // wr > n
    }

    #[test]
    fn few_4cycles_in_moderate_code() {
        let code = LdpcCode::gallager(240, 3, 6, 3).unwrap();
        // Not necessarily zero, but far below the dense worst case.
        let cycles = code.h().count_4cycles();
        assert!(cycles < 100, "too many 4-cycles: {cycles}");
    }
}
