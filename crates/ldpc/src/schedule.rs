//! Message-passing traffic induced by a cluster mapping.
//!
//! Each decoding iteration has two communication phases (variable→check and
//! check→variable). Messages between clusters are aggregated per
//! (source, destination) pair and packetized for the NoC.

use crate::code::LdpcCode;
use crate::mapping::ClusterMapping;
use serde::{Deserialize, Serialize};

/// Quantization/packetization parameters for decoder messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageParams {
    /// Bits per LLR message (hardware decoders quantize to 6-8 bits).
    pub bits_per_message: u32,
    /// Link flit width in bits.
    pub flit_bits: u32,
    /// Maximum packet length in flits (larger transfers are split).
    pub max_packet_flits: u32,
}

impl Default for MessageParams {
    fn default() -> Self {
        MessageParams {
            bits_per_message: 8,
            flit_bits: 64,
            max_packet_flits: 8,
        }
    }
}

/// One iteration phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IterPhase {
    /// Variables send extrinsic LLRs to checks.
    VarToCheck,
    /// Checks send updated messages back to variables.
    CheckToVar,
}

/// An aggregated inter-cluster transfer within one phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Source cluster index.
    pub src_cluster: usize,
    /// Destination cluster index.
    pub dst_cluster: usize,
    /// Number of LLR messages aggregated.
    pub messages: u64,
    /// Packet lengths in flits (sums to the payload flit count).
    pub packet_lens: Vec<u32>,
}

impl Transfer {
    /// Total flits in this transfer.
    pub fn total_flits(&self) -> u64 {
        self.packet_lens.iter().map(|&l| l as u64).sum()
    }
}

/// All inter-cluster transfers of one phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTraffic {
    /// Which phase this describes.
    pub phase: IterPhase,
    /// The transfers, ordered by (src, dst).
    pub transfers: Vec<Transfer>,
}

impl PhaseTraffic {
    /// Total flits across all transfers.
    pub fn total_flits(&self) -> u64 {
        self.transfers.iter().map(Transfer::total_flits).sum()
    }

    /// Total packets across all transfers.
    pub fn total_packets(&self) -> usize {
        self.transfers.iter().map(|t| t.packet_lens.len()).sum()
    }
}

/// Computes the inter-cluster traffic of `phase` for `mapping` on `code`.
///
/// Intra-cluster messages (diagonal of the traffic matrix) are excluded —
/// they never enter the network.
///
/// # Panics
///
/// Panics if `params` has a zero flit width or zero packet length (invalid
/// configuration).
pub fn phase_traffic(
    mapping: &ClusterMapping,
    code: &LdpcCode,
    phase: IterPhase,
    params: &MessageParams,
) -> PhaseTraffic {
    assert!(params.flit_bits > 0 && params.max_packet_flits > 0 && params.bits_per_message > 0);
    let t = mapping.traffic_matrix(code);
    let mut transfers = Vec::new();
    for (src, row) in t.iter().enumerate() {
        for (dst, &forward) in row.iter().enumerate() {
            if src == dst {
                continue;
            }
            // Var->check sends along t[src][dst]; check->var along t[dst][src]
            // but from the *check* cluster's point of view, so we swap roles.
            let messages = match phase {
                IterPhase::VarToCheck => forward,
                IterPhase::CheckToVar => t[dst][src],
            };
            if messages == 0 {
                continue;
            }
            let bits = messages * params.bits_per_message as u64;
            let flits = bits.div_ceil(params.flit_bits as u64).max(1);
            let mut packet_lens = Vec::new();
            let mut left = flits;
            while left > 0 {
                let take = left.min(params.max_packet_flits as u64) as u32;
                packet_lens.push(take);
                left -= take as u64;
            }
            transfers.push(Transfer {
                src_cluster: src,
                dst_cluster: dst,
                messages,
                packet_lens,
            });
        }
    }
    PhaseTraffic { phase, transfers }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LdpcCode, ClusterMapping) {
        let code = LdpcCode::gallager(240, 3, 6, 5).unwrap();
        let mapping = ClusterMapping::contiguous(&code, 16).unwrap();
        (code, mapping)
    }

    #[test]
    fn phases_carry_same_total_messages() {
        let (code, mapping) = setup();
        let p = MessageParams::default();
        let v2c = phase_traffic(&mapping, &code, IterPhase::VarToCheck, &p);
        let c2v = phase_traffic(&mapping, &code, IterPhase::CheckToVar, &p);
        let mv: u64 = v2c.transfers.iter().map(|t| t.messages).sum();
        let mc: u64 = c2v.transfers.iter().map(|t| t.messages).sum();
        assert_eq!(mv, mc, "both phases move each inter-cluster edge once");
        // Inter-cluster messages are bounded by total edges.
        assert!(mv <= code.edges() as u64);
        assert!(mv > 0);
    }

    #[test]
    fn packets_respect_max_length() {
        let (code, mapping) = setup();
        let p = MessageParams {
            max_packet_flits: 4,
            ..MessageParams::default()
        };
        let tr = phase_traffic(&mapping, &code, IterPhase::VarToCheck, &p);
        for t in &tr.transfers {
            assert!(t.packet_lens.iter().all(|&l| (1..=4).contains(&l)));
        }
    }

    #[test]
    fn flit_count_matches_message_bits() {
        let (code, mapping) = setup();
        let p = MessageParams::default();
        let tr = phase_traffic(&mapping, &code, IterPhase::VarToCheck, &p);
        for t in &tr.transfers {
            let bits = t.messages * 8;
            let expected = bits.div_ceil(64).max(1);
            assert_eq!(t.total_flits(), expected);
        }
    }

    #[test]
    fn no_self_transfers() {
        let (code, mapping) = setup();
        let tr = phase_traffic(
            &mapping,
            &code,
            IterPhase::VarToCheck,
            &MessageParams::default(),
        );
        assert!(tr.transfers.iter().all(|t| t.src_cluster != t.dst_cluster));
    }

    #[test]
    fn c2v_is_transpose_of_v2c() {
        let (code, mapping) = setup();
        let p = MessageParams::default();
        let v2c = phase_traffic(&mapping, &code, IterPhase::VarToCheck, &p);
        let c2v = phase_traffic(&mapping, &code, IterPhase::CheckToVar, &p);
        for t in &v2c.transfers {
            let rev = c2v
                .transfers
                .iter()
                .find(|r| r.src_cluster == t.dst_cluster && r.dst_cluster == t.src_cluster)
                .expect("transpose entry exists");
            assert_eq!(rev.messages, t.messages);
        }
    }
}
