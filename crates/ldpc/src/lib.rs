//! # hotnoc-ldpc — the LDPC decoder workload
//!
//! The DATE'05 paper evaluates runtime reconfiguration on a Low Density
//! Parity Check (LDPC) decoder implemented on a NoC (Theocharides et al.,
//! ISVLSI'05). This crate builds that workload from scratch:
//!
//! * [`matrix`]/[`code`] — sparse GF(2) parity-check matrices and regular
//!   Gallager code construction,
//! * [`encoder`] — systematic encoding via GF(2) Gaussian elimination,
//! * [`channel`] — BPSK over AWGN (and BSC) producing soft LLRs,
//! * [`decoder`] — normalized min-sum and sum-product iterative decoders,
//! * [`mapping`] — partitioning of variable/check nodes into per-PE
//!   clusters, including the weighted partitions that realize the paper's
//!   configurations A–E ("the amount of computation mapped to a single PE"),
//! * [`schedule`] — the per-iteration message-passing traffic a mapping
//!   induces between PEs,
//! * [`app`] — a timing/activity-accurate application model that drives the
//!   `hotnoc-noc` cycle-accurate simulator with that traffic and reports
//!   switching activity per tile.
//!
//! ```
//! use hotnoc_ldpc::{code::LdpcCode, channel::AwgnChannel, decoder::MinSumDecoder};
//!
//! let code = LdpcCode::gallager(240, 3, 6, 7)?;
//! let zero = vec![false; code.n()];
//! let mut chan = AwgnChannel::new(4.0, code.rate(), 42);
//! let llrs = chan.transmit(&zero);
//! let out = MinSumDecoder::default().decode(&code, &llrs);
//! assert!(out.converged, "high-SNR decode should converge");
//! assert_eq!(out.bits, zero);
//! # Ok::<(), hotnoc_ldpc::LdpcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod ber;
pub mod channel;
pub mod code;
pub mod decoder;
pub mod encoder;
pub mod error;
pub mod layered;
pub mod mapping;
pub mod matrix;
pub mod schedule;

pub use code::LdpcCode;
pub use decoder::{
    DecodeOutcome, DecodeStatus, DecoderWorkspace, MinSumDecoder, SumProductDecoder,
};
pub use encoder::Encoder;
pub use error::LdpcError;
pub use layered::LayeredMinSumDecoder;
pub use mapping::ClusterMapping;
