//! Sparse binary (GF(2)) matrices with row and column adjacency.

use serde::{Deserialize, Serialize};

/// A sparse binary matrix stored as row and column adjacency lists; the
/// natural representation of an LDPC parity-check matrix (rows = checks,
/// columns = variables).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseBinMatrix {
    rows: usize,
    cols: usize,
    row_adj: Vec<Vec<usize>>,
    col_adj: Vec<Vec<usize>>,
}

impl SparseBinMatrix {
    /// Creates an all-zero matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        SparseBinMatrix {
            rows,
            cols,
            row_adj: vec![Vec::new(); rows],
            col_adj: vec![Vec::new(); cols],
        }
    }

    /// Number of rows (checks).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (variables).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets entry `(r, c)` to one. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        if !self.row_adj[r].contains(&c) {
            self.row_adj[r].push(c);
            self.col_adj[c].push(r);
        }
    }

    /// `true` if entry `(r, c)` is one.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.row_adj.get(r).is_some_and(|row| row.contains(&c))
    }

    /// Columns with a one in row `r` (unsorted insertion order).
    pub fn row(&self, r: usize) -> &[usize] {
        &self.row_adj[r]
    }

    /// Rows with a one in column `c`.
    pub fn col(&self, c: usize) -> &[usize] {
        &self.col_adj[c]
    }

    /// Number of ones.
    pub fn nnz(&self) -> usize {
        self.row_adj.iter().map(Vec::len).sum()
    }

    /// All `(row, col)` entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.row_adj
            .iter()
            .enumerate()
            .flat_map(|(r, cs)| cs.iter().map(move |&c| (r, c)))
    }

    /// Multiplies `H * x` over GF(2) and returns the syndrome bits.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn syndrome(&self, x: &[bool]) -> Vec<bool> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        self.row_adj
            .iter()
            .map(|row| row.iter().fold(false, |acc, &c| acc ^ x[c]))
            .collect()
    }

    /// Counts length-4 cycles (pairs of rows sharing 2+ columns). A quality
    /// metric for code construction; zero is ideal, small is fine.
    pub fn count_4cycles(&self) -> usize {
        let mut count = 0;
        for c in 0..self.cols {
            let rows = &self.col_adj[c];
            for (i, &r1) in rows.iter().enumerate() {
                for &r2 in &rows[i + 1..] {
                    // Shared columns between r1 and r2 beyond c.
                    let shared = self.row_adj[r1]
                        .iter()
                        .filter(|&&cc| cc > c && self.row_adj[r2].contains(&cc))
                        .count();
                    count += shared;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_idempotent() {
        let mut m = SparseBinMatrix::new(3, 4);
        m.set(1, 2);
        m.set(1, 2);
        assert!(m.get(1, 2));
        assert!(!m.get(2, 1));
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(1), &[2]);
        assert_eq!(m.col(2), &[1]);
    }

    #[test]
    fn syndrome_xor() {
        // H = [1 1 0; 0 1 1]
        let mut m = SparseBinMatrix::new(2, 3);
        m.set(0, 0);
        m.set(0, 1);
        m.set(1, 1);
        m.set(1, 2);
        assert_eq!(m.syndrome(&[true, true, false]), vec![false, true]);
        assert_eq!(m.syndrome(&[true, true, true]), vec![false, false]);
    }

    #[test]
    fn four_cycle_detection() {
        // Rows 0 and 1 share columns 0 and 1 -> one 4-cycle.
        let mut m = SparseBinMatrix::new(2, 3);
        m.set(0, 0);
        m.set(0, 1);
        m.set(1, 0);
        m.set(1, 1);
        assert_eq!(m.count_4cycles(), 1);
        // Remove the sharing: no cycle.
        let mut m2 = SparseBinMatrix::new(2, 3);
        m2.set(0, 0);
        m2.set(0, 1);
        m2.set(1, 1);
        m2.set(1, 2);
        assert_eq!(m2.count_4cycles(), 0);
    }

    #[test]
    fn entries_iteration() {
        let mut m = SparseBinMatrix::new(2, 2);
        m.set(0, 1);
        m.set(1, 0);
        let e: Vec<(usize, usize)> = m.entries().collect();
        assert_eq!(e, vec![(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_set_panics() {
        SparseBinMatrix::new(1, 1).set(1, 0);
    }
}
