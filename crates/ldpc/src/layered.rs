//! Layered (serial-C) min-sum decoding.
//!
//! The flooding schedule of [`crate::decoder`] matches the paper's
//! NoC-parallel hardware; layered decoding processes check nodes
//! sequentially against a live posterior and typically converges in roughly
//! half the iterations — the standard algorithmic upgrade for
//! throughput-constrained decoders, included here as an extension.

use crate::code::LdpcCode;
use crate::decoder::DecodeOutcome;
use crate::error::LdpcError;
use serde::{Deserialize, Serialize};

/// Layered normalized-min-sum decoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayeredMinSumDecoder {
    /// Maximum full sweeps over the check nodes.
    pub max_iters: usize,
    /// Normalization factor for check messages.
    pub alpha: f64,
}

impl Default for LayeredMinSumDecoder {
    fn default() -> Self {
        LayeredMinSumDecoder {
            max_iters: 20,
            alpha: 0.8,
        }
    }
}

impl LayeredMinSumDecoder {
    /// Decodes one block of channel LLRs.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != code.n()`; use
    /// [`LayeredMinSumDecoder::try_decode`] for the fallible variant.
    pub fn decode(&self, code: &LdpcCode, llrs: &[f64]) -> DecodeOutcome {
        self.try_decode(code, llrs).expect("llr length mismatch")
    }

    /// Fallible decode.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::LlrLengthMismatch`] on a wrong-sized input.
    pub fn try_decode(&self, code: &LdpcCode, llrs: &[f64]) -> Result<DecodeOutcome, LdpcError> {
        if llrs.len() != code.n() {
            return Err(LdpcError::LlrLengthMismatch {
                expected: code.n(),
                got: llrs.len(),
            });
        }
        let m = code.m();
        let mut chk_msgs: Vec<Vec<f64>> =
            (0..m).map(|r| vec![0.0; code.h().row(r).len()]).collect();
        let mut posterior: Vec<f64> = llrs.to_vec();
        let mut bits: Vec<bool> = llrs.iter().map(|&l| l < 0.0).collect();
        let mut converged = code.is_codeword(&bits);
        let mut iterations = 0;

        let mut extrinsic: Vec<f64> = Vec::new();
        while !converged && iterations < self.max_iters {
            iterations += 1;
            for (r, msgs) in chk_msgs.iter_mut().enumerate() {
                let row = code.h().row(r);
                extrinsic.clear();
                // Peel off this check's previous contribution.
                for (k, &v) in row.iter().enumerate() {
                    extrinsic.push(posterior[v] - msgs[k]);
                }
                // Min-sum over the live extrinsics.
                let (mut min1, mut min2) = (f64::INFINITY, f64::INFINITY);
                let mut min_idx = 0;
                let mut sign = 1.0f64;
                for (k, &q) in extrinsic.iter().enumerate() {
                    if q < 0.0 {
                        sign = -sign;
                    }
                    let mag = q.abs();
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min_idx = k;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                // Write back new messages and refresh the posterior
                // immediately (the "layered" part).
                for (k, &v) in row.iter().enumerate() {
                    let mag = if k == min_idx { min2 } else { min1 };
                    let self_sign = if extrinsic[k] < 0.0 { -1.0 } else { 1.0 };
                    let msg = self.alpha * sign * self_sign * mag;
                    msgs[k] = msg;
                    posterior[v] = extrinsic[k] + msg;
                }
            }
            for (b, &p) in bits.iter_mut().zip(&posterior) {
                *b = p < 0.0;
            }
            converged = code.is_codeword(&bits);
        }

        Ok(DecodeOutcome {
            bits,
            converged,
            iterations: iterations.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AwgnChannel;
    use crate::decoder::MinSumDecoder;
    use crate::encoder::Encoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn code() -> LdpcCode {
        LdpcCode::gallager(240, 3, 6, 5).unwrap()
    }

    #[test]
    fn decodes_clean_codeword_immediately() {
        let c = code();
        let out = LayeredMinSumDecoder::default().decode(&c, &vec![7.0; c.n()]);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn corrects_noise_like_flooding() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut chan = AwgnChannel::new(3.5, c.rate(), 21);
        let dec = LayeredMinSumDecoder::default();
        let mut ok = 0;
        let trials = 20;
        for _ in 0..trials {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let word = enc.encode(&msg).unwrap();
            let out = dec.decode(&c, &chan.transmit(&word));
            if out.converged && out.bits == word {
                ok += 1;
            }
        }
        assert!(ok >= trials * 8 / 10, "layered decoded only {ok}/{trials}");
    }

    #[test]
    fn converges_in_fewer_sweeps_than_flooding() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let (mut layered_iters, mut flooding_iters, mut counted) = (0usize, 0usize, 0usize);
        for trial in 0..15 {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let word = enc.encode(&msg).unwrap();
            let mut chan = AwgnChannel::new(3.0, c.rate(), 100 + trial);
            let llrs = chan.transmit(&word);
            let lay = LayeredMinSumDecoder::default().decode(&c, &llrs);
            let flo = MinSumDecoder::default().decode(&c, &llrs);
            if lay.converged && flo.converged {
                layered_iters += lay.iterations;
                flooding_iters += flo.iterations;
                counted += 1;
            }
        }
        assert!(counted >= 5, "not enough convergent trials");
        assert!(
            layered_iters * 10 <= flooding_iters * 9,
            "layered ({layered_iters}) not faster than flooding ({flooding_iters}) over {counted} trials"
        );
    }

    #[test]
    fn wrong_length_rejected() {
        let c = code();
        assert!(LayeredMinSumDecoder::default()
            .try_decode(&c, &[0.0])
            .is_err());
    }
}
