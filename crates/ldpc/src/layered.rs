//! Layered (serial-C) min-sum decoding.
//!
//! The flooding schedule of [`crate::decoder`] matches the paper's
//! NoC-parallel hardware; layered decoding processes check nodes
//! sequentially against a live posterior and typically converges in roughly
//! half the iterations — the standard algorithmic upgrade for
//! throughput-constrained decoders, included here as an extension.

use crate::code::LdpcCode;
use crate::decoder::{min_sum_check, DecodeOutcome, DecodeStatus, DecoderWorkspace};
use crate::error::LdpcError;
use serde::{Deserialize, Serialize};

/// Layered normalized-min-sum decoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayeredMinSumDecoder {
    /// Maximum full sweeps over the check nodes.
    pub max_iters: usize,
    /// Normalization factor for check messages.
    pub alpha: f64,
}

impl Default for LayeredMinSumDecoder {
    fn default() -> Self {
        LayeredMinSumDecoder {
            max_iters: 20,
            alpha: 0.8,
        }
    }
}

impl LayeredMinSumDecoder {
    /// Decodes one block of channel LLRs.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != code.n()`; use
    /// [`LayeredMinSumDecoder::try_decode`] for the fallible variant.
    pub fn decode(&self, code: &LdpcCode, llrs: &[f64]) -> DecodeOutcome {
        self.try_decode(code, llrs).expect("llr length mismatch")
    }

    /// Fallible decode.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::LlrLengthMismatch`] on a wrong-sized input.
    pub fn try_decode(&self, code: &LdpcCode, llrs: &[f64]) -> Result<DecodeOutcome, LdpcError> {
        let mut ws = DecoderWorkspace::new();
        let status = self.try_decode_with(code, llrs, &mut ws)?;
        let DecodeStatus {
            converged,
            iterations,
        } = status;
        Ok(DecodeOutcome {
            bits: ws.bits().to_vec(),
            converged,
            iterations,
        })
    }

    /// Decodes into `ws`, reusing its buffers (zero allocations once `ws`
    /// has seen the code). Bits land in [`DecoderWorkspace::bits`].
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != code.n()`.
    pub fn decode_with(
        &self,
        code: &LdpcCode,
        llrs: &[f64],
        ws: &mut DecoderWorkspace,
    ) -> DecodeStatus {
        self.try_decode_with(code, llrs, ws)
            .expect("llr length mismatch")
    }

    /// Fallible [`LayeredMinSumDecoder::decode_with`]: the serial-C sweep
    /// over the workspace's flattened CSR edge arrays. Each check row peels
    /// its previous contribution off the live posterior, runs the min-sum
    /// update in place, and refreshes the posterior immediately (the
    /// "layered" part).
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::LlrLengthMismatch`] on a wrong-sized input.
    pub fn try_decode_with(
        &self,
        code: &LdpcCode,
        llrs: &[f64],
        ws: &mut DecoderWorkspace,
    ) -> Result<DecodeStatus, LdpcError> {
        let _t = hotnoc_obs::prof::scope("ldpc/decode");
        if llrs.len() != code.n() {
            return Err(LdpcError::LlrLengthMismatch {
                expected: code.n(),
                got: llrs.len(),
            });
        }
        ws.prepare(code);
        let m = code.m();
        ws.chk_to_var.fill(0.0);
        ws.posterior.copy_from_slice(llrs);
        for (b, &l) in ws.bits.iter_mut().zip(llrs) {
            *b = l < 0.0;
        }
        let mut converged = ws.syndrome_is_zero();
        let mut iterations = 0;

        while !converged && iterations < self.max_iters {
            iterations += 1;
            for r in 0..m {
                let (lo, hi) = (ws.row_ptr[r] as usize, ws.row_ptr[r + 1] as usize);
                let deg = hi - lo;
                // Peel off this check's previous contribution.
                for k in 0..deg {
                    ws.scratch_q[k] =
                        ws.posterior[ws.col_idx[lo + k] as usize] - ws.chk_to_var[lo + k];
                }
                min_sum_check(&ws.scratch_q[..deg], &mut ws.chk_to_var[lo..hi], self.alpha);
                for k in 0..deg {
                    ws.posterior[ws.col_idx[lo + k] as usize] =
                        ws.scratch_q[k] + ws.chk_to_var[lo + k];
                }
            }
            for (b, &p) in ws.bits.iter_mut().zip(&ws.posterior) {
                *b = p < 0.0;
            }
            converged = ws.syndrome_is_zero();
        }

        Ok(DecodeStatus {
            converged,
            iterations: iterations.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AwgnChannel;
    use crate::decoder::MinSumDecoder;
    use crate::encoder::Encoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn code() -> LdpcCode {
        LdpcCode::gallager(240, 3, 6, 5).unwrap()
    }

    #[test]
    fn decodes_clean_codeword_immediately() {
        let c = code();
        let out = LayeredMinSumDecoder::default().decode(&c, &vec![7.0; c.n()]);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn corrects_noise_like_flooding() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut chan = AwgnChannel::new(3.5, c.rate(), 21);
        let dec = LayeredMinSumDecoder::default();
        let mut ok = 0;
        let trials = 20;
        for _ in 0..trials {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let word = enc.encode(&msg).unwrap();
            let out = dec.decode(&c, &chan.transmit(&word));
            if out.converged && out.bits == word {
                ok += 1;
            }
        }
        assert!(ok >= trials * 8 / 10, "layered decoded only {ok}/{trials}");
    }

    #[test]
    fn converges_in_fewer_sweeps_than_flooding() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let (mut layered_iters, mut flooding_iters, mut counted) = (0usize, 0usize, 0usize);
        for trial in 0..15 {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let word = enc.encode(&msg).unwrap();
            let mut chan = AwgnChannel::new(3.0, c.rate(), 100 + trial);
            let llrs = chan.transmit(&word);
            let lay = LayeredMinSumDecoder::default().decode(&c, &llrs);
            let flo = MinSumDecoder::default().decode(&c, &llrs);
            if lay.converged && flo.converged {
                layered_iters += lay.iterations;
                flooding_iters += flo.iterations;
                counted += 1;
            }
        }
        assert!(counted >= 5, "not enough convergent trials");
        assert!(
            layered_iters * 10 <= flooding_iters * 9,
            "layered ({layered_iters}) not faster than flooding ({flooding_iters}) over {counted} trials"
        );
    }

    #[test]
    fn wrong_length_rejected() {
        let c = code();
        assert!(LayeredMinSumDecoder::default()
            .try_decode(&c, &[0.0])
            .is_err());
    }
}
