//! Iterative message-passing decoders: normalized min-sum and sum-product.
//!
//! Both use a flooding schedule — all variable-to-check messages, then all
//! check-to-variable messages per iteration — matching the two
//! communication phases the NoC application model simulates per iteration.

use crate::code::LdpcCode;
use crate::error::LdpcError;
use serde::{Deserialize, Serialize};

/// Result of a decoding attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Hard-decision bits after the final iteration.
    pub bits: Vec<bool>,
    /// `true` if the syndrome reached zero.
    pub converged: bool,
    /// Iterations actually executed (1-based; early exit on convergence).
    pub iterations: usize,
}

/// Normalized min-sum decoder (the hardware-friendly choice used by
/// NoC LDPC implementations such as the paper's reference design).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinSumDecoder {
    /// Maximum iterations per block.
    pub max_iters: usize,
    /// Normalization factor applied to check messages (typically 0.75-0.9).
    pub alpha: f64,
}

impl Default for MinSumDecoder {
    fn default() -> Self {
        MinSumDecoder {
            max_iters: 20,
            alpha: 0.8,
        }
    }
}

impl MinSumDecoder {
    /// Decodes one block of channel LLRs.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != code.n()`; use [`MinSumDecoder::try_decode`]
    /// for a fallible variant.
    pub fn decode(&self, code: &LdpcCode, llrs: &[f64]) -> DecodeOutcome {
        self.try_decode(code, llrs).expect("llr length mismatch")
    }

    /// Fallible decode.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::LlrLengthMismatch`] on a wrong-sized input.
    pub fn try_decode(&self, code: &LdpcCode, llrs: &[f64]) -> Result<DecodeOutcome, LdpcError> {
        decode_impl(code, llrs, self.max_iters, |inputs, out| {
            min_sum_check(inputs, out, self.alpha)
        })
    }
}

/// Sum-product (belief propagation) decoder: slightly better waterfall
/// performance at higher per-edge cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SumProductDecoder {
    /// Maximum iterations per block.
    pub max_iters: usize,
}

impl Default for SumProductDecoder {
    fn default() -> Self {
        SumProductDecoder { max_iters: 20 }
    }
}

impl SumProductDecoder {
    /// Decodes one block of channel LLRs.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != code.n()`.
    pub fn decode(&self, code: &LdpcCode, llrs: &[f64]) -> DecodeOutcome {
        self.try_decode(code, llrs).expect("llr length mismatch")
    }

    /// Fallible decode.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::LlrLengthMismatch`] on a wrong-sized input.
    pub fn try_decode(&self, code: &LdpcCode, llrs: &[f64]) -> Result<DecodeOutcome, LdpcError> {
        decode_impl(code, llrs, self.max_iters, sum_product_check)
    }
}

/// Check-node update, min-sum with normalization: for each output edge, the
/// magnitude is `alpha * min` of the other inputs and the sign is the product
/// of the other signs.
fn min_sum_check(inputs: &[f64], out: &mut [f64], alpha: f64) {
    let deg = inputs.len();
    let mut sign_product = 1.0f64;
    let (mut min1, mut min2) = (f64::INFINITY, f64::INFINITY);
    let mut min_idx = 0;
    for (i, &v) in inputs.iter().enumerate() {
        if v < 0.0 {
            sign_product = -sign_product;
        }
        let mag = v.abs();
        if mag < min1 {
            min2 = min1;
            min1 = mag;
            min_idx = i;
        } else if mag < min2 {
            min2 = mag;
        }
    }
    for i in 0..deg {
        let mag = if i == min_idx { min2 } else { min1 };
        let self_sign = if inputs[i] < 0.0 { -1.0 } else { 1.0 };
        out[i] = alpha * sign_product * self_sign * mag;
    }
}

/// Exact sum-product check update via the tanh rule.
fn sum_product_check(inputs: &[f64], out: &mut [f64]) {
    // Guard tanh against saturation.
    let clamp = |x: f64| x.clamp(-30.0, 30.0);
    let tanhs: Vec<f64> = inputs.iter().map(|&v| (clamp(v) / 2.0).tanh()).collect();
    for (i, o) in out.iter_mut().enumerate() {
        let mut prod = 1.0;
        for (j, &t) in tanhs.iter().enumerate() {
            if j != i {
                prod *= t;
            }
        }
        let prod = prod.clamp(-0.999_999_999, 0.999_999_999);
        *o = 2.0 * prod.atanh();
    }
}

fn decode_impl<F>(
    code: &LdpcCode,
    llrs: &[f64],
    max_iters: usize,
    mut check_update: F,
) -> Result<DecodeOutcome, LdpcError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    if llrs.len() != code.n() {
        return Err(LdpcError::LlrLengthMismatch {
            expected: code.n(),
            got: llrs.len(),
        });
    }
    let m = code.m();
    // Per-edge storage keyed by (check, position-in-row).
    let mut chk_to_var: Vec<Vec<f64>> = (0..m).map(|r| vec![0.0; code.h().row(r).len()]).collect();
    let mut var_to_chk: Vec<Vec<f64>> = chk_to_var.clone();
    let mut posterior: Vec<f64> = llrs.to_vec();
    let mut bits: Vec<bool> = llrs.iter().map(|&l| l < 0.0).collect();

    let mut iterations = 0;
    let mut converged = code.is_codeword(&bits);
    while !converged && iterations < max_iters {
        iterations += 1;
        // Variable-to-check phase: v->c message is posterior minus the
        // incoming c->v message (extrinsic).
        for r in 0..m {
            for (k, &v) in code.h().row(r).iter().enumerate() {
                var_to_chk[r][k] = posterior[v] - chk_to_var[r][k];
            }
        }
        // Check-to-variable phase.
        let mut scratch = Vec::new();
        for (vt, ct) in var_to_chk.iter().zip(chk_to_var.iter_mut()) {
            scratch.clear();
            scratch.extend_from_slice(vt);
            check_update(&scratch, ct);
        }
        // Posterior accumulation.
        posterior.copy_from_slice(llrs);
        for (r, ct) in chk_to_var.iter().enumerate() {
            for (k, &v) in code.h().row(r).iter().enumerate() {
                posterior[v] += ct[k];
            }
        }
        for (b, &p) in bits.iter_mut().zip(&posterior) {
            *b = p < 0.0;
        }
        converged = code.is_codeword(&bits);
    }

    Ok(DecodeOutcome {
        bits,
        converged,
        iterations: iterations.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AwgnChannel;
    use crate::encoder::Encoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn code() -> LdpcCode {
        LdpcCode::gallager(240, 3, 6, 5).unwrap()
    }

    #[test]
    fn clean_codeword_converges_immediately() {
        let c = code();
        let llrs: Vec<f64> = vec![8.0; c.n()]; // strong "all zeros"
        let out = MinSumDecoder::default().decode(&c, &llrs);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert!(out.bits.iter().all(|&b| !b));
    }

    #[test]
    fn min_sum_corrects_awgn_noise_at_moderate_snr() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut chan = AwgnChannel::new(3.5, c.rate(), 77);
        let dec = MinSumDecoder::default();
        let mut successes = 0;
        let trials = 20;
        for _ in 0..trials {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let word = enc.encode(&msg).unwrap();
            let llrs = chan.transmit(&word);
            let out = dec.decode(&c, &llrs);
            if out.converged && out.bits == word {
                successes += 1;
            }
        }
        assert!(
            successes >= trials * 8 / 10,
            "only {successes}/{trials} decoded"
        );
    }

    #[test]
    fn sum_product_at_least_as_good_as_min_sum() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut chan_a = AwgnChannel::new(3.0, c.rate(), 5);
        let mut chan_b = AwgnChannel::new(3.0, c.rate(), 5);
        let (mut ms_ok, mut sp_ok) = (0, 0);
        for _ in 0..15 {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let word = enc.encode(&msg).unwrap();
            let la = chan_a.transmit(&word);
            let lb = chan_b.transmit(&word);
            assert_eq!(la, lb);
            if MinSumDecoder::default().decode(&c, &la).converged {
                ms_ok += 1;
            }
            if SumProductDecoder::default().decode(&c, &lb).converged {
                sp_ok += 1;
            }
        }
        assert!(
            sp_ok + 2 >= ms_ok,
            "sum-product unexpectedly weak: {sp_ok} vs {ms_ok}"
        );
    }

    #[test]
    fn hopeless_noise_fails_gracefully() {
        let c = code();
        let mut rng = StdRng::seed_from_u64(6);
        let llrs: Vec<f64> = (0..c.n()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let dec = MinSumDecoder {
            max_iters: 5,
            alpha: 0.8,
        };
        let out = dec.decode(&c, &llrs);
        assert_eq!(out.iterations, 5);
        assert!(!out.converged || c.is_codeword(&out.bits));
    }

    #[test]
    fn iteration_count_increases_with_noise() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let msg = vec![true; enc.k()];
        let word = enc.encode(&msg).unwrap();
        let clean = AwgnChannel::new(8.0, c.rate(), 9).transmit(&word);
        let noisy = AwgnChannel::new(2.5, c.rate(), 9).transmit(&word);
        let dec = MinSumDecoder::default();
        let fast = dec.decode(&c, &clean);
        let slow = dec.decode(&c, &noisy);
        assert!(fast.converged);
        assert!(
            slow.iterations >= fast.iterations,
            "noisy {} < clean {}",
            slow.iterations,
            fast.iterations
        );
    }

    #[test]
    fn wrong_llr_length_rejected() {
        let c = code();
        assert!(matches!(
            MinSumDecoder::default().try_decode(&c, &[1.0]),
            Err(LdpcError::LlrLengthMismatch { .. })
        ));
    }

    #[test]
    fn min_sum_check_magnitudes() {
        let inputs = [3.0, -1.0, 2.0];
        let mut out = [0.0; 3];
        min_sum_check(&inputs, &mut out, 1.0);
        // Output magnitude = min of other inputs; sign = product of others.
        assert_eq!(out[0], -1.0); // min(1,2)=1, signs: -*+ = -
        assert_eq!(out[1], 2.0); // min(3,2)=2, signs: +*+ = +
        assert_eq!(out[2], -1.0);
    }
}
