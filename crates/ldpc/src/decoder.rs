//! Iterative message-passing decoders: normalized min-sum and sum-product.
//!
//! Both use a flooding schedule — all variable-to-check messages, then all
//! check-to-variable messages per iteration — matching the two
//! communication phases the NoC application model simulates per iteration.
//!
//! # Storage layout
//!
//! The hot state lives in a reusable [`DecoderWorkspace`]: the parity-check
//! matrix is cached as a CSR edge array (`row_ptr`/`col_idx`, row-major)
//! plus a CSC permutation (`var_ptr`/`var_edge`) listing each variable's
//! edges in ascending check-row order. Check-to-variable messages are a
//! single contiguous `f64` array indexed by edge. Each iteration makes two
//! sweeps over that array:
//!
//! 1. **check pass** (CSR order): the variable-to-check message for edge
//!    `e` is gathered on the fly as `posterior[col_idx[e]] - chk_to_var[e]`
//!    and the check update writes the new `chk_to_var[e]` in place — the
//!    seed's separate variable-to-check sweep is fused away;
//! 2. **variable pass** (CSC order): posterior accumulation, the hard
//!    decision, and the next iteration's implicit extrinsics in one sweep.
//!
//! Because the CSC permutation is built by walking rows in order, each
//! variable accumulates its check messages in exactly the ascending-row
//! order the seed's row-major accumulation used, so results are
//! bit-identical to the original `Vec<Vec<f64>>` implementation (pinned by
//! `tests/decoder_equivalence.rs`). Steady-state decoding performs zero
//! heap allocations per block.

use crate::code::LdpcCode;
use crate::error::LdpcError;
use serde::{Deserialize, Serialize};

/// Result of a decoding attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Hard-decision bits after the final iteration.
    pub bits: Vec<bool>,
    /// `true` if the syndrome reached zero.
    pub converged: bool,
    /// Iterations actually executed (1-based; early exit on convergence).
    pub iterations: usize,
}

/// Result of a decode into a [`DecoderWorkspace`]: the hard-decision bits
/// stay in the workspace ([`DecoderWorkspace::bits`]), so steady-state
/// decoding moves no heap memory at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeStatus {
    /// `true` if the syndrome reached zero.
    pub converged: bool,
    /// Iterations actually executed (1-based; early exit on convergence).
    pub iterations: usize,
}

/// Reusable decoder state: cached CSR/CSC topology of the parity-check
/// matrix plus every per-edge and per-variable buffer the decoders touch.
///
/// Create one per decoding thread and pass it to the `*_with` decode
/// methods; after the first block (which sizes the buffers for the code),
/// subsequent decodes of the same code allocate nothing. The workspace
/// re-checks the cached topology against the code on every decode (a cheap
/// linear walk) and rebuilds automatically when handed a different code.
#[derive(Debug, Clone, Default)]
pub struct DecoderWorkspace {
    pub(crate) n: usize,
    pub(crate) m: usize,
    /// CSR row starts into `col_idx`/`chk_to_var` (`m + 1` entries).
    pub(crate) row_ptr: Vec<u32>,
    /// Variable (column) index of each edge, row-major.
    pub(crate) col_idx: Vec<u32>,
    /// CSC column starts into `var_edge` (`n + 1` entries).
    pub(crate) var_ptr: Vec<u32>,
    /// Edge indices of each variable's edges, in ascending check-row order.
    pub(crate) var_edge: Vec<u32>,
    /// Check-to-variable message per edge.
    pub(crate) chk_to_var: Vec<f64>,
    /// Per-variable a-posteriori LLR.
    pub(crate) posterior: Vec<f64>,
    /// Per-variable hard decision.
    pub(crate) bits: Vec<bool>,
    /// Row-degree-sized gather buffer for variable-to-check messages.
    pub(crate) scratch_q: Vec<f64>,
    /// Row-degree-sized scratch for the sum-product tanh terms.
    pub(crate) scratch_t: Vec<f64>,
    /// `Some(d)` when every check row has degree `d` (regular codes): the
    /// sweeps then run const-degree specializations the compiler unrolls.
    pub(crate) uniform_row_deg: Option<usize>,
    /// `Some(d)` when every variable has degree `d`.
    pub(crate) uniform_var_deg: Option<usize>,
}

impl DecoderWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        DecoderWorkspace::default()
    }

    /// A workspace pre-sized for `code`, so even the first decode is
    /// allocation-free.
    pub fn for_code(code: &LdpcCode) -> Self {
        let mut ws = DecoderWorkspace::default();
        ws.rebuild(code);
        ws
    }

    /// Hard-decision bits of the most recent decode.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Per-variable a-posteriori LLRs of the most recent decode.
    pub fn posterior(&self) -> &[f64] {
        &self.posterior
    }

    /// Ensures the cached topology matches `code`, rebuilding if not.
    pub(crate) fn prepare(&mut self, code: &LdpcCode) {
        if !self.topology_matches(code) {
            self.rebuild(code);
        }
    }

    /// Edge-exact comparison of the cached CSR arrays against `code` — a
    /// linear walk, cheap next to an iteration's two edge sweeps.
    fn topology_matches(&self, code: &LdpcCode) -> bool {
        if self.n != code.n() || self.m != code.m() || self.col_idx.len() != code.edges() {
            return false;
        }
        let h = code.h();
        let mut e = 0usize;
        for r in 0..self.m {
            let row = h.row(r);
            if (self.row_ptr[r + 1] - self.row_ptr[r]) as usize != row.len() {
                return false;
            }
            for &v in row {
                if self.col_idx[e] != v as u32 {
                    return false;
                }
                e += 1;
            }
        }
        true
    }

    fn rebuild(&mut self, code: &LdpcCode) {
        let (n, m, edges) = (code.n(), code.m(), code.edges());
        let h = code.h();
        self.n = n;
        self.m = m;
        self.row_ptr.clear();
        self.row_ptr.reserve(m + 1);
        self.row_ptr.push(0);
        self.col_idx.clear();
        self.col_idx.reserve(edges);
        let mut max_deg = 0usize;
        for r in 0..m {
            let row = h.row(r);
            max_deg = max_deg.max(row.len());
            for &v in row {
                self.col_idx.push(v as u32);
            }
            self.row_ptr.push(self.col_idx.len() as u32);
        }
        // CSC permutation by counting sort over columns. Walking the edges
        // in row-major order fills each column's bucket in ascending row
        // order, which is what keeps posterior accumulation bit-identical
        // to the seed's row-major sweep.
        self.var_ptr.clear();
        self.var_ptr.resize(n + 1, 0);
        for &c in &self.col_idx {
            self.var_ptr[c as usize + 1] += 1;
        }
        for v in 0..n {
            self.var_ptr[v + 1] += self.var_ptr[v];
        }
        self.var_edge.clear();
        self.var_edge.resize(edges, 0);
        let mut cursor: Vec<u32> = self.var_ptr[..n].to_vec();
        for (e, &c) in self.col_idx.iter().enumerate() {
            let slot = &mut cursor[c as usize];
            self.var_edge[*slot as usize] = e as u32;
            *slot += 1;
        }
        self.chk_to_var.resize(edges, 0.0);
        self.posterior.resize(n, 0.0);
        self.bits.resize(n, false);
        self.scratch_q.resize(max_deg, 0.0);
        self.scratch_t.resize(max_deg, 0.0);
        self.uniform_row_deg = uniform_degree(&self.row_ptr);
        self.uniform_var_deg = uniform_degree(&self.var_ptr);
    }

    /// Non-allocating `H * bits == 0` check over the CSR arrays.
    pub(crate) fn syndrome_is_zero(&self) -> bool {
        for r in 0..self.m {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut parity = false;
            for &c in &self.col_idx[lo..hi] {
                parity ^= self.bits[c as usize];
            }
            if parity {
                return false;
            }
        }
        true
    }

    /// Moves the decode result out, for the allocating convenience API.
    fn into_outcome(self, status: DecodeStatus) -> DecodeOutcome {
        DecodeOutcome {
            bits: self.bits,
            converged: status.converged,
            iterations: status.iterations,
        }
    }
}

/// Normalized min-sum decoder (the hardware-friendly choice used by
/// NoC LDPC implementations such as the paper's reference design).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinSumDecoder {
    /// Maximum iterations per block.
    pub max_iters: usize,
    /// Normalization factor applied to check messages (typically 0.75-0.9).
    pub alpha: f64,
}

impl Default for MinSumDecoder {
    fn default() -> Self {
        MinSumDecoder {
            max_iters: 20,
            alpha: 0.8,
        }
    }
}

impl MinSumDecoder {
    /// Decodes one block of channel LLRs.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != code.n()`; use [`MinSumDecoder::try_decode`]
    /// for a fallible variant.
    pub fn decode(&self, code: &LdpcCode, llrs: &[f64]) -> DecodeOutcome {
        self.try_decode(code, llrs).expect("llr length mismatch")
    }

    /// Fallible decode.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::LlrLengthMismatch`] on a wrong-sized input.
    pub fn try_decode(&self, code: &LdpcCode, llrs: &[f64]) -> Result<DecodeOutcome, LdpcError> {
        let mut ws = DecoderWorkspace::new();
        let status = self.try_decode_with(code, llrs, &mut ws)?;
        Ok(ws.into_outcome(status))
    }

    /// Decodes into `ws`, reusing its buffers (zero allocations once `ws`
    /// has seen the code). Bits land in [`DecoderWorkspace::bits`].
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != code.n()`.
    pub fn decode_with(
        &self,
        code: &LdpcCode,
        llrs: &[f64],
        ws: &mut DecoderWorkspace,
    ) -> DecodeStatus {
        self.try_decode_with(code, llrs, ws)
            .expect("llr length mismatch")
    }

    /// Fallible [`MinSumDecoder::decode_with`].
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::LlrLengthMismatch`] on a wrong-sized input.
    pub fn try_decode_with(
        &self,
        code: &LdpcCode,
        llrs: &[f64],
        ws: &mut DecoderWorkspace,
    ) -> Result<DecodeStatus, LdpcError> {
        let _t = hotnoc_obs::prof::scope("ldpc/decode");
        let alpha = self.alpha;
        decode_flat(code, llrs, self.max_iters, ws, |q, out, _tanhs| {
            min_sum_check(q, out, alpha)
        })
    }
}

/// Sum-product (belief propagation) decoder: slightly better waterfall
/// performance at higher per-edge cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SumProductDecoder {
    /// Maximum iterations per block.
    pub max_iters: usize,
}

impl Default for SumProductDecoder {
    fn default() -> Self {
        SumProductDecoder { max_iters: 20 }
    }
}

impl SumProductDecoder {
    /// Decodes one block of channel LLRs.
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != code.n()`.
    pub fn decode(&self, code: &LdpcCode, llrs: &[f64]) -> DecodeOutcome {
        self.try_decode(code, llrs).expect("llr length mismatch")
    }

    /// Fallible decode.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::LlrLengthMismatch`] on a wrong-sized input.
    pub fn try_decode(&self, code: &LdpcCode, llrs: &[f64]) -> Result<DecodeOutcome, LdpcError> {
        let mut ws = DecoderWorkspace::new();
        let status = self.try_decode_with(code, llrs, &mut ws)?;
        Ok(ws.into_outcome(status))
    }

    /// Decodes into `ws`, reusing its buffers (zero allocations once `ws`
    /// has seen the code). Bits land in [`DecoderWorkspace::bits`].
    ///
    /// # Panics
    ///
    /// Panics if `llrs.len() != code.n()`.
    pub fn decode_with(
        &self,
        code: &LdpcCode,
        llrs: &[f64],
        ws: &mut DecoderWorkspace,
    ) -> DecodeStatus {
        self.try_decode_with(code, llrs, ws)
            .expect("llr length mismatch")
    }

    /// Fallible [`SumProductDecoder::decode_with`].
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::LlrLengthMismatch`] on a wrong-sized input.
    pub fn try_decode_with(
        &self,
        code: &LdpcCode,
        llrs: &[f64],
        ws: &mut DecoderWorkspace,
    ) -> Result<DecodeStatus, LdpcError> {
        let _t = hotnoc_obs::prof::scope("ldpc/decode");
        decode_flat(code, llrs, self.max_iters, ws, sum_product_check)
    }
}

/// Saturation magnitude for check messages whose extrinsic minimum is not
/// finite: a degree-1 check row has no "other inputs", so `min2` survives
/// the scan as `+inf` and would launch an infinity into the posterior (and
/// `inf - inf = NaN` into the next iteration's extrinsics). Large enough to
/// dominate any practical LLR, small enough that accumulated posteriors
/// stay finite.
const CHECK_MAG_SAT: f64 = 1e12;

/// Check-node update, min-sum with normalization: for each output edge, the
/// magnitude is `alpha * min` of the other inputs and the sign is the product
/// of the other signs.
///
/// Written branch-free: message signs are essentially random, so a branchy
/// sign/min tracker mispredicts on roughly every other edge and the penalty
/// dominates the arithmetic. Sign products become XOR parity and the sign is
/// applied by flipping the IEEE sign bit — exact negation, so the results
/// stay bit-identical to the branchy form (`±1.0` multiplies are exact).
pub(crate) fn min_sum_check(inputs: &[f64], out: &mut [f64], alpha: f64) {
    if inputs.is_empty() {
        return;
    }
    let mut neg_total = false;
    let (mut min1, mut min2) = (f64::INFINITY, f64::INFINITY);
    let mut min_idx = 0usize;
    for (i, &v) in inputs.iter().enumerate() {
        neg_total ^= v < 0.0;
        let mag = v.abs();
        let new_min = mag < min1;
        min2 = if new_min { min1 } else { min2.min(mag) };
        min1 = min1.min(mag);
        min_idx = if new_min { i } else { min_idx };
    }
    // Degree-1 rows (and all-infinite inputs) leave the minima at +inf;
    // saturate so the outputs stay finite.
    let base1 = alpha * min1.min(CHECK_MAG_SAT);
    let base2 = alpha * min2.min(CHECK_MAG_SAT);
    // Write every edge with the global minimum, then patch the one edge
    // that supplied it — keeps the store loop free of per-edge selects.
    for (o, &v) in out.iter_mut().zip(inputs) {
        let neg = neg_total ^ (v < 0.0);
        *o = f64::from_bits(base1.to_bits() ^ ((neg as u64) << 63));
    }
    let neg = neg_total ^ (inputs[min_idx] < 0.0);
    out[min_idx] = f64::from_bits(base2.to_bits() ^ ((neg as u64) << 63));
}

/// Exact sum-product check update via the tanh rule. `tanhs` is caller
/// scratch of at least `inputs.len()` entries.
fn sum_product_check(inputs: &[f64], out: &mut [f64], tanhs: &mut [f64]) {
    // Guard tanh against saturation.
    let clamp = |x: f64| x.clamp(-30.0, 30.0);
    let tanhs = &mut tanhs[..inputs.len()];
    for (t, &v) in tanhs.iter_mut().zip(inputs) {
        *t = (clamp(v) / 2.0).tanh();
    }
    for (i, o) in out.iter_mut().enumerate() {
        let mut prod = 1.0;
        for (j, &t) in tanhs.iter().enumerate() {
            if j != i {
                prod *= t;
            }
        }
        let prod = prod.clamp(-0.999_999_999, 0.999_999_999);
        *o = 2.0 * prod.atanh();
    }
}

/// The flooding-schedule decode loop over the flattened edge arrays.
/// `check_update(q, out, scratch)` consumes the gathered variable-to-check
/// messages of one row and writes the new check-to-variable messages.
fn decode_flat<F>(
    code: &LdpcCode,
    llrs: &[f64],
    max_iters: usize,
    ws: &mut DecoderWorkspace,
    mut check_update: F,
) -> Result<DecodeStatus, LdpcError>
where
    F: FnMut(&[f64], &mut [f64], &mut [f64]),
{
    if llrs.len() != code.n() {
        return Err(LdpcError::LlrLengthMismatch {
            expected: code.n(),
            got: llrs.len(),
        });
    }
    ws.prepare(code);
    ws.chk_to_var.fill(0.0);
    ws.posterior.copy_from_slice(llrs);
    for (b, &l) in ws.bits.iter_mut().zip(llrs) {
        *b = l < 0.0;
    }

    let mut iterations = 0;
    let mut converged = ws.syndrome_is_zero();
    while !converged && iterations < max_iters {
        iterations += 1;
        // Check pass (CSR): gather each row's variable-to-check messages
        // (posterior minus the edge's previous check message — with all-zero
        // initial messages the first iteration sees the raw LLRs) and write
        // the check update back into the same edge slots. Regular codes run
        // a const-degree specialization so the per-row loops fully unroll.
        match ws.uniform_row_deg {
            Some(3) => check_pass_uniform::<3, F>(ws, &mut check_update),
            Some(4) => check_pass_uniform::<4, F>(ws, &mut check_update),
            Some(5) => check_pass_uniform::<5, F>(ws, &mut check_update),
            Some(6) => check_pass_uniform::<6, F>(ws, &mut check_update),
            Some(7) => check_pass_uniform::<7, F>(ws, &mut check_update),
            Some(8) => check_pass_uniform::<8, F>(ws, &mut check_update),
            _ => check_pass_dyn(ws, &mut check_update),
        }
        // Variable pass (CSC): posterior accumulation and hard decision in
        // one sweep; each variable's edges come in ascending check-row
        // order, so the floating-point sum matches the seed's row-major
        // accumulation bit for bit.
        match ws.uniform_var_deg {
            Some(2) => var_pass_uniform::<2>(ws, llrs),
            Some(3) => var_pass_uniform::<3>(ws, llrs),
            Some(4) => var_pass_uniform::<4>(ws, llrs),
            Some(5) => var_pass_uniform::<5>(ws, llrs),
            Some(6) => var_pass_uniform::<6>(ws, llrs),
            _ => var_pass_dyn(ws, llrs),
        }
        converged = ws.syndrome_is_zero();
    }

    Ok(DecodeStatus {
        converged,
        iterations: iterations.max(1),
    })
}

/// `Some(d)` iff every consecutive gap in the CSR/CSC pointer array is `d`.
fn uniform_degree(ptr: &[u32]) -> Option<usize> {
    let mut degs = ptr.windows(2).map(|w| w[1] - w[0]);
    let first = degs.next()?;
    degs.all(|d| d == first).then_some(first as usize)
}

/// Check pass over rows of arbitrary degree.
fn check_pass_dyn<F>(ws: &mut DecoderWorkspace, check_update: &mut F)
where
    F: FnMut(&[f64], &mut [f64], &mut [f64]),
{
    let DecoderWorkspace {
        row_ptr,
        col_idx,
        chk_to_var,
        posterior,
        scratch_q,
        scratch_t,
        ..
    } = ws;
    for w in row_ptr.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        let cols = &col_idx[lo..hi];
        let c2v = &mut chk_to_var[lo..hi];
        let q = &mut scratch_q[..cols.len()];
        for ((qk, &c), msg) in q.iter_mut().zip(cols).zip(c2v.iter()) {
            *qk = posterior[c as usize] - *msg;
        }
        check_update(q, c2v, &mut scratch_t[..cols.len()]);
    }
}

/// Check pass specialized for uniform row degree `D`: the gather and the
/// check update see fixed-size rows, so their loops unroll and the gather
/// buffer lives in registers.
fn check_pass_uniform<const D: usize, F>(ws: &mut DecoderWorkspace, check_update: &mut F)
where
    F: FnMut(&[f64], &mut [f64], &mut [f64]),
{
    let DecoderWorkspace {
        col_idx,
        chk_to_var,
        posterior,
        scratch_t,
        ..
    } = ws;
    let mut q = [0.0f64; D];
    for (cols, c2v) in col_idx.chunks_exact(D).zip(chk_to_var.chunks_exact_mut(D)) {
        for k in 0..D {
            q[k] = posterior[cols[k] as usize] - c2v[k];
        }
        check_update(&q, c2v, &mut scratch_t[..D]);
    }
}

/// Variable pass over variables of arbitrary degree.
fn var_pass_dyn(ws: &mut DecoderWorkspace, llrs: &[f64]) {
    let DecoderWorkspace {
        var_ptr,
        var_edge,
        chk_to_var,
        posterior,
        bits,
        ..
    } = ws;
    for (((p_out, b), &l), w) in posterior
        .iter_mut()
        .zip(bits.iter_mut())
        .zip(llrs)
        .zip(var_ptr.windows(2))
    {
        let mut p = l;
        for &e in &var_edge[w[0] as usize..w[1] as usize] {
            p += chk_to_var[e as usize];
        }
        *p_out = p;
        *b = p < 0.0;
    }
}

/// Variable pass specialized for uniform variable degree `D`.
fn var_pass_uniform<const D: usize>(ws: &mut DecoderWorkspace, llrs: &[f64]) {
    let DecoderWorkspace {
        var_edge,
        chk_to_var,
        posterior,
        bits,
        ..
    } = ws;
    for (((p_out, b), &l), edges) in posterior
        .iter_mut()
        .zip(bits.iter_mut())
        .zip(llrs)
        .zip(var_edge.chunks_exact(D))
    {
        let mut p = l;
        for k in 0..D {
            p += chk_to_var[edges[k] as usize];
        }
        *p_out = p;
        *b = p < 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AwgnChannel;
    use crate::encoder::Encoder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn code() -> LdpcCode {
        LdpcCode::gallager(240, 3, 6, 5).unwrap()
    }

    #[test]
    fn clean_codeword_converges_immediately() {
        let c = code();
        let llrs: Vec<f64> = vec![8.0; c.n()]; // strong "all zeros"
        let out = MinSumDecoder::default().decode(&c, &llrs);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert!(out.bits.iter().all(|&b| !b));
    }

    #[test]
    fn min_sum_corrects_awgn_noise_at_moderate_snr() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut chan = AwgnChannel::new(3.5, c.rate(), 77);
        let dec = MinSumDecoder::default();
        let mut successes = 0;
        let trials = 20;
        for _ in 0..trials {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let word = enc.encode(&msg).unwrap();
            let llrs = chan.transmit(&word);
            let out = dec.decode(&c, &llrs);
            if out.converged && out.bits == word {
                successes += 1;
            }
        }
        assert!(
            successes >= trials * 8 / 10,
            "only {successes}/{trials} decoded"
        );
    }

    #[test]
    fn sum_product_at_least_as_good_as_min_sum() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut chan_a = AwgnChannel::new(3.0, c.rate(), 5);
        let mut chan_b = AwgnChannel::new(3.0, c.rate(), 5);
        let (mut ms_ok, mut sp_ok) = (0, 0);
        for _ in 0..15 {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let word = enc.encode(&msg).unwrap();
            let la = chan_a.transmit(&word);
            let lb = chan_b.transmit(&word);
            assert_eq!(la, lb);
            if MinSumDecoder::default().decode(&c, &la).converged {
                ms_ok += 1;
            }
            if SumProductDecoder::default().decode(&c, &lb).converged {
                sp_ok += 1;
            }
        }
        assert!(
            sp_ok + 2 >= ms_ok,
            "sum-product unexpectedly weak: {sp_ok} vs {ms_ok}"
        );
    }

    #[test]
    fn hopeless_noise_fails_gracefully() {
        let c = code();
        let mut rng = StdRng::seed_from_u64(6);
        let llrs: Vec<f64> = (0..c.n()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let dec = MinSumDecoder {
            max_iters: 5,
            alpha: 0.8,
        };
        let out = dec.decode(&c, &llrs);
        assert_eq!(out.iterations, 5);
        assert!(!out.converged || c.is_codeword(&out.bits));
    }

    #[test]
    fn iteration_count_increases_with_noise() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let msg = vec![true; enc.k()];
        let word = enc.encode(&msg).unwrap();
        let clean = AwgnChannel::new(8.0, c.rate(), 9).transmit(&word);
        let noisy = AwgnChannel::new(2.5, c.rate(), 9).transmit(&word);
        let dec = MinSumDecoder::default();
        let fast = dec.decode(&c, &clean);
        let slow = dec.decode(&c, &noisy);
        assert!(fast.converged);
        assert!(
            slow.iterations >= fast.iterations,
            "noisy {} < clean {}",
            slow.iterations,
            fast.iterations
        );
    }

    #[test]
    fn wrong_llr_length_rejected() {
        let c = code();
        assert!(matches!(
            MinSumDecoder::default().try_decode(&c, &[1.0]),
            Err(LdpcError::LlrLengthMismatch { .. })
        ));
        let mut ws = DecoderWorkspace::new();
        assert!(matches!(
            MinSumDecoder::default().try_decode_with(&c, &[1.0], &mut ws),
            Err(LdpcError::LlrLengthMismatch { .. })
        ));
    }

    #[test]
    fn min_sum_check_magnitudes() {
        let inputs = [3.0, -1.0, 2.0];
        let mut out = [0.0; 3];
        min_sum_check(&inputs, &mut out, 1.0);
        // Output magnitude = min of other inputs; sign = product of others.
        assert_eq!(out[0], -1.0); // min(1,2)=1, signs: -*+ = -
        assert_eq!(out[1], 2.0); // min(3,2)=2, signs: +*+ = +
        assert_eq!(out[2], -1.0);
    }

    #[test]
    fn min_sum_check_degree_one_row_stays_finite() {
        // A degree-1 check has no "other inputs": before the guard, min2
        // survived as +inf and the sole output edge went infinite, turning
        // the next iteration's extrinsics into `inf - inf = NaN`.
        let mut out = [0.0; 1];
        min_sum_check(&[-2.5], &mut out, 0.8);
        assert!(out[0].is_finite(), "degree-1 output must be finite");
        // Sign: the product of the other signs is empty (+1); the input's
        // own sign cancels against sign_product * self_sign.
        assert_eq!(out[0], 0.8 * CHECK_MAG_SAT);

        // All-infinite inputs saturate rather than poisoning the posterior.
        let mut out = [0.0; 2];
        min_sum_check(&[f64::INFINITY, f64::NEG_INFINITY], &mut out, 1.0);
        assert!(out.iter().all(|o| o.is_finite()));
    }

    #[test]
    fn workspace_decode_matches_convenience_api() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut chan = AwgnChannel::new(3.0, c.rate(), 13);
        let dec = MinSumDecoder::default();
        let mut ws = DecoderWorkspace::for_code(&c);
        for _ in 0..5 {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let word = enc.encode(&msg).unwrap();
            let llrs = chan.transmit(&word);
            let outcome = dec.decode(&c, &llrs);
            let status = dec.decode_with(&c, &llrs, &mut ws);
            assert_eq!(status.converged, outcome.converged);
            assert_eq!(status.iterations, outcome.iterations);
            assert_eq!(ws.bits(), &outcome.bits[..]);
        }
    }

    #[test]
    fn workspace_rebuilds_when_code_changes() {
        let big = code();
        let small = LdpcCode::gallager(120, 3, 6, 1).unwrap();
        let dec = SumProductDecoder::default();
        let mut ws = DecoderWorkspace::new();
        let llrs_big: Vec<f64> = vec![4.0; big.n()];
        let llrs_small: Vec<f64> = vec![-4.0; small.n()];
        // Alternate codes through one workspace; each decode must match a
        // fresh-workspace decode of the same block.
        for _ in 0..2 {
            let a = dec.decode_with(&big, &llrs_big, &mut ws);
            assert_eq!(ws.bits().len(), big.n());
            assert_eq!(a, dec.decode(&big, &llrs_big).into_status());
            let b = dec.decode_with(&small, &llrs_small, &mut ws);
            assert_eq!(ws.bits().len(), small.n());
            assert_eq!(b, dec.decode(&small, &llrs_small).into_status());
        }
    }

    impl DecodeOutcome {
        fn into_status(self) -> DecodeStatus {
            DecodeStatus {
                converged: self.converged,
                iterations: self.iterations,
            }
        }
    }
}
