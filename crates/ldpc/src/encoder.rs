//! Systematic LDPC encoding via GF(2) Gaussian elimination.
//!
//! The parity-check matrix is reduced to row echelon form once; encoding a
//! message then assigns the message bits to the non-pivot (free) columns and
//! back-solves the pivot columns so that every check is satisfied.

use crate::code::LdpcCode;
use crate::error::LdpcError;

/// Dense GF(2) row as a bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitRow {
    words: Vec<u64>,
}

impl BitRow {
    fn zero(nbits: usize) -> Self {
        BitRow {
            words: vec![0; nbits.div_ceil(64)],
        }
    }

    fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn xor_assign(&mut self, other: &BitRow) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }
}

/// A prepared systematic encoder for one [`LdpcCode`].
#[derive(Debug, Clone)]
pub struct Encoder {
    n: usize,
    /// Reduced rows, one per pivot, in pivot order.
    rows: Vec<BitRow>,
    /// Pivot column of each reduced row.
    pivots: Vec<usize>,
    /// Non-pivot (message) columns in ascending order.
    free_cols: Vec<usize>,
}

impl Encoder {
    /// Builds the encoder (one-time Gaussian elimination over GF(2)).
    ///
    /// # Errors
    ///
    /// Currently infallible for valid codes; returns `Result` for future
    /// constructions that may fail (kept for API stability).
    pub fn new(code: &LdpcCode) -> Result<Self, LdpcError> {
        let n = code.n();
        let m = code.m();
        let mut rows: Vec<BitRow> = (0..m)
            .map(|r| {
                let mut row = BitRow::zero(n);
                for &c in code.h().row(r) {
                    row.set(c);
                }
                row
            })
            .collect();

        let mut pivots = Vec::new();
        let mut next_row = 0usize;
        for col in 0..n {
            // Find a row at or below `next_row` with a one in `col`.
            let Some(found) = (next_row..rows.len()).find(|&r| rows[r].get(col)) else {
                continue;
            };
            rows.swap(next_row, found);
            // Eliminate this column from every other row (RREF).
            let pivot_row = rows[next_row].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != next_row && row.get(col) {
                    row.xor_assign(&pivot_row);
                }
            }
            pivots.push(col);
            next_row += 1;
            if next_row == rows.len() {
                break;
            }
        }
        // Rows 0..rank are now fully reduced: each contains exactly one
        // pivot column (its own), so back-substitution is a plain XOR of
        // free-column bits.
        let reduced: Vec<BitRow> = rows[..pivots.len()].to_vec();

        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let free_cols: Vec<usize> = (0..n).filter(|c| !pivot_set.contains(c)).collect();
        Ok(Encoder {
            n,
            rows: reduced,
            pivots,
            free_cols,
        })
    }

    /// The code dimension: number of message bits per block.
    pub fn k(&self) -> usize {
        self.free_cols.len()
    }

    /// The GF(2) rank of the parity-check matrix.
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }

    /// Block length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Encodes `message` (length [`Encoder::k`]) into a codeword of length
    /// [`Encoder::n`] satisfying every parity check.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::MessageLengthMismatch`] on a wrong-sized input.
    pub fn encode(&self, message: &[bool]) -> Result<Vec<bool>, LdpcError> {
        if message.len() != self.k() {
            return Err(LdpcError::MessageLengthMismatch {
                expected: self.k(),
                got: message.len(),
            });
        }
        let mut word = vec![false; self.n];
        for (&col, &bit) in self.free_cols.iter().zip(message) {
            word[col] = bit;
        }
        // Each reduced row has exactly one pivot; in RREF the pivot bit is
        // the XOR of the row's free-column bits.
        for (row, &pivot) in self.rows.iter().zip(&self.pivots) {
            let mut acc = false;
            for &col in &self.free_cols {
                if row.get(col) && word[col] {
                    acc = !acc;
                }
            }
            word[pivot] = acc;
        }
        Ok(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn code() -> LdpcCode {
        LdpcCode::gallager(120, 3, 6, 5).unwrap()
    }

    #[test]
    fn rank_and_dimension_consistent() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        assert_eq!(enc.rank() + enc.k(), c.n());
        // Gallager codes have a few dependent rows; rank <= m.
        assert!(enc.rank() <= c.m());
        assert!(enc.k() >= c.n() - c.m());
    }

    #[test]
    fn all_zero_message_encodes_to_zero() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let w = enc.encode(&vec![false; enc.k()]).unwrap();
        assert!(w.iter().all(|&b| !b));
        assert!(c.is_codeword(&w));
    }

    #[test]
    fn random_messages_encode_to_codewords() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..25 {
            let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
            let w = enc.encode(&msg).unwrap();
            assert!(c.is_codeword(&w), "encoder produced a non-codeword");
        }
    }

    #[test]
    fn encoding_is_linear() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let a: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
        let b: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
        let ab: Vec<bool> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let wa = enc.encode(&a).unwrap();
        let wb = enc.encode(&b).unwrap();
        let wab = enc.encode(&ab).unwrap();
        for i in 0..c.n() {
            assert_eq!(wab[i], wa[i] ^ wb[i], "nonlinear at bit {i}");
        }
    }

    #[test]
    fn message_bits_recoverable_from_codeword() {
        // Systematic in the free columns.
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
        let w = enc.encode(&msg).unwrap();
        let recovered: Vec<bool> = enc.free_cols.iter().map(|&col| w[col]).collect();
        assert_eq!(recovered, msg);
    }

    #[test]
    fn wrong_length_rejected() {
        let c = code();
        let enc = Encoder::new(&c).unwrap();
        assert!(matches!(
            enc.encode(&[true]),
            Err(LdpcError::MessageLengthMismatch { .. })
        ));
    }
}
