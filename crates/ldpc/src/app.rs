//! Timing/activity-accurate NoC application model of the LDPC decoder.
//!
//! The paper's methodology: "A modified cycle-accurate NoC simulator is then
//! run with an encoded message to obtain switching rates for the components
//! in the chip during operation." This module is that run: it drives a
//! `hotnoc_noc::Network` with the message-passing traffic of the decoder
//! (functionally decoupled — the numeric decode runs in [`crate::decoder`];
//! the network carries the equivalent traffic volume, which is what the
//! switching-rate methodology needs) and reports per-tile activity and
//! block latency.

use crate::code::LdpcCode;
use crate::decoder::{DecodeStatus, DecoderWorkspace};
use crate::error::LdpcError;
use crate::mapping::ClusterMapping;
use crate::schedule::{phase_traffic, IterPhase, MessageParams, PhaseTraffic};
use hotnoc_noc::{ActivitySnapshot, Network, NocError, NodeId, Packet, PacketClass};
use serde::{Deserialize, Serialize};

/// Compute-model parameters of a PE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Edge operations retired per cycle by one PE (datapath parallelism).
    pub edges_per_cycle: u32,
    /// Fixed per-phase pipeline overhead cycles (operand fetch, barrier).
    pub phase_overhead_cycles: u32,
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel {
            edges_per_cycle: 2,
            phase_overhead_cycles: 8,
        }
    }
}

/// Measured results of one decoded block on the NoC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockRun {
    /// Total cycles from block start to completion.
    pub cycles: u64,
    /// Edge operations executed per tile (node-id indexed).
    pub ops_per_node: Vec<u64>,
    /// Switching-activity delta over the block (node-id indexed routers).
    pub activity: ActivitySnapshot,
    /// Packets delivered during the block.
    pub packets_delivered: u64,
    /// Decoding iterations simulated.
    pub iterations: usize,
}

/// The application model: a code, a cluster mapping, and the placement of
/// clusters onto mesh nodes.
#[derive(Debug, Clone)]
pub struct LdpcNocApp {
    code: LdpcCode,
    mapping: ClusterMapping,
    /// `placement[cluster] = node` the cluster currently executes on.
    placement: Vec<NodeId>,
    params: MessageParams,
    compute: ComputeModel,
    next_packet_id: u64,
}

impl LdpcNocApp {
    /// Creates the application model.
    ///
    /// # Errors
    ///
    /// Returns [`LdpcError::InvalidClusterCount`] if the placement length
    /// does not match the mapping's cluster count.
    pub fn new(
        code: LdpcCode,
        mapping: ClusterMapping,
        placement: Vec<NodeId>,
        params: MessageParams,
        compute: ComputeModel,
    ) -> Result<Self, LdpcError> {
        if placement.len() != mapping.n_clusters() {
            return Err(LdpcError::InvalidClusterCount {
                clusters: placement.len(),
            });
        }
        Ok(LdpcNocApp {
            code,
            mapping,
            placement,
            params,
            compute,
            next_packet_id: 0,
        })
    }

    /// The identity placement: cluster `i` on node `i`.
    pub fn identity_placement(n_clusters: usize) -> Vec<NodeId> {
        (0..n_clusters).map(|i| NodeId::new(i as u16)).collect()
    }

    /// The code being decoded.
    pub fn code(&self) -> &LdpcCode {
        &self.code
    }

    /// The cluster mapping.
    pub fn mapping(&self) -> &ClusterMapping {
        &self.mapping
    }

    /// Current cluster→node placement.
    pub fn placement(&self) -> &[NodeId] {
        &self.placement
    }

    /// Re-places the clusters (what a migration does).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the cluster count.
    pub fn set_placement(&mut self, placement: Vec<NodeId>) {
        assert_eq!(
            placement.len(),
            self.mapping.n_clusters(),
            "placement length"
        );
        self.placement = placement;
    }

    /// Simulates the decoding of one block taking `iterations`
    /// message-passing iterations, driving `net` cycle by cycle.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Timeout`] if a phase fails to drain (indicating a
    /// saturated or misconfigured network).
    pub fn run_block(
        &mut self,
        net: &mut Network,
        iterations: usize,
    ) -> Result<BlockRun, NocError> {
        let start_cycle = net.cycle();
        let start_snapshot = net.snapshot();
        let start_delivered = net.stats().packets_delivered;

        let v2c = phase_traffic(
            &self.mapping,
            &self.code,
            IterPhase::VarToCheck,
            &self.params,
        );
        let c2v = phase_traffic(
            &self.mapping,
            &self.code,
            IterPhase::CheckToVar,
            &self.params,
        );
        let var_ops = self.mapping.var_ops_per_cluster(&self.code);
        let chk_ops = self.mapping.chk_ops_per_cluster(&self.code);

        for _ in 0..iterations {
            self.run_phase(net, &v2c, &var_ops)?;
            self.run_phase(net, &c2v, &chk_ops)?;
        }

        let mut ops_per_node = vec![0u64; net.mesh().len()];
        for (cluster, node) in self.placement.iter().enumerate() {
            ops_per_node[node.index()] = (var_ops[cluster] + chk_ops[cluster]) * iterations as u64;
        }

        let end_snapshot = net.snapshot();
        Ok(BlockRun {
            cycles: net.cycle() - start_cycle,
            ops_per_node,
            activity: end_snapshot.delta_since(&start_snapshot),
            packets_delivered: net.stats().packets_delivered - start_delivered,
            iterations,
        })
    }

    /// Numerically decodes one block of channel LLRs through `decode`
    /// (threading the caller's [`DecoderWorkspace`] through so the decode
    /// itself is allocation-free), then simulates the NoC traffic of
    /// exactly the iterations the decoder actually used — instead of
    /// [`LdpcNocApp::run_block`]'s fixed iteration count. Hard decisions
    /// stay in `ws`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Timeout`] if a phase fails to drain.
    pub fn run_block_decoding<F>(
        &mut self,
        net: &mut Network,
        llrs: &[f64],
        ws: &mut DecoderWorkspace,
        decode: F,
    ) -> Result<(BlockRun, DecodeStatus), NocError>
    where
        F: FnOnce(&LdpcCode, &[f64], &mut DecoderWorkspace) -> DecodeStatus,
    {
        let status = decode(&self.code, llrs, ws);
        let run = self.run_block(net, status.iterations)?;
        Ok((run, status))
    }

    /// One phase: compute locally, then exchange messages and drain.
    fn run_phase(
        &mut self,
        net: &mut Network,
        traffic: &PhaseTraffic,
        ops: &[u64],
    ) -> Result<(), NocError> {
        // Local compute: PEs work in parallel; the phase waits for the
        // slowest one.
        let max_ops = ops.iter().copied().max().unwrap_or(0);
        let compute_cycles = max_ops.div_ceil(self.compute.edges_per_cycle as u64)
            + self.compute.phase_overhead_cycles as u64;
        net.run(compute_cycles);

        // Message exchange.
        for t in &traffic.transfers {
            let src = self.placement[t.src_cluster];
            let dst = self.placement[t.dst_cluster];
            for &len in &t.packet_lens {
                let p = Packet::new(self.next_packet_id, src, dst, PacketClass::Data, len);
                self.next_packet_id += 1;
                net.inject(p)?;
            }
        }
        // Drain: a barrier at phase end (all messages delivered before the
        // next compute starts).
        let budget = 200_000;
        net.run_until_idle(budget)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotnoc_noc::{Mesh, NocConfig};

    fn setup(n_clusters: usize, mesh_side: usize) -> (LdpcNocApp, Network) {
        let code = LdpcCode::gallager(240, 3, 6, 5).unwrap();
        let mapping = ClusterMapping::contiguous(&code, n_clusters).unwrap();
        let app = LdpcNocApp::new(
            code,
            mapping,
            LdpcNocApp::identity_placement(n_clusters),
            MessageParams::default(),
            ComputeModel::default(),
        )
        .unwrap();
        let net = Network::new(Mesh::square(mesh_side).unwrap(), NocConfig::default());
        (app, net)
    }

    #[test]
    fn block_runs_and_measures() {
        let (mut app, mut net) = setup(16, 4);
        let run = app.run_block(&mut net, 5).unwrap();
        assert!(run.cycles > 0);
        assert_eq!(run.iterations, 5);
        assert!(run.packets_delivered > 0);
        // Total ops = 2 * edges * iterations.
        let total_ops: u64 = run.ops_per_node.iter().sum();
        assert_eq!(total_ops, 2 * app.code().edges() as u64 * 5);
        // Activity landed on the routers.
        let writes: u64 = run.activity.routers.iter().map(|r| r.buffer_writes).sum();
        assert!(writes > 0);
    }

    #[test]
    fn two_blocks_are_reproducible() {
        let (mut app1, mut net1) = setup(16, 4);
        let (mut app2, mut net2) = setup(16, 4);
        let a = app1.run_block(&mut net1, 3).unwrap();
        let b = app2.run_block(&mut net2, 3).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.ops_per_node, b.ops_per_node);
    }

    #[test]
    fn placement_moves_activity() {
        let (mut app, mut net) = setup(16, 4);
        let base = app.run_block(&mut net, 2).unwrap();
        // Reverse the placement; the ops map should reverse too.
        let reversed: Vec<NodeId> = (0..16).rev().map(|i| NodeId::new(i as u16)).collect();
        app.set_placement(reversed);
        let mut net2 = Network::new(Mesh::square(4).unwrap(), NocConfig::default());
        let moved = app.run_block(&mut net2, 2).unwrap();
        let rev_ops: Vec<u64> = base.ops_per_node.iter().rev().copied().collect();
        assert_eq!(moved.ops_per_node, rev_ops);
    }

    #[test]
    fn on_5x5_mesh_with_25_clusters() {
        let (mut app, mut net) = setup(25, 5);
        let run = app.run_block(&mut net, 2).unwrap();
        assert!(run.cycles > 0);
        assert_eq!(run.ops_per_node.len(), 25);
        assert!(run.ops_per_node.iter().all(|&o| o > 0));
    }

    #[test]
    fn decoded_block_simulates_true_iteration_count() {
        let (mut app, mut net) = setup(16, 4);
        let dec = crate::decoder::MinSumDecoder::default();
        let mut ws = DecoderWorkspace::new();
        // Strong all-zeros LLRs: the decoder converges on the initial check.
        let llrs = vec![6.0; app.code().n()];
        let (run, status) = app
            .run_block_decoding(&mut net, &llrs, &mut ws, |c, l, w| dec.decode_with(c, l, w))
            .unwrap();
        assert!(status.converged);
        assert_eq!(status.iterations, 1);
        assert_eq!(run.iterations, status.iterations);
        assert!(ws.bits().iter().all(|&b| !b));
    }

    #[test]
    fn mismatched_placement_rejected() {
        let code = LdpcCode::gallager(120, 3, 6, 1).unwrap();
        let mapping = ClusterMapping::contiguous(&code, 16).unwrap();
        let result = LdpcNocApp::new(
            code,
            mapping,
            vec![NodeId::new(0); 4],
            MessageParams::default(),
            ComputeModel::default(),
        );
        assert!(result.is_err());
    }

    #[test]
    fn longer_blocks_take_proportionally_longer() {
        let (mut app, mut net) = setup(16, 4);
        let short = app.run_block(&mut net, 2).unwrap();
        let long = app.run_block(&mut net, 4).unwrap();
        let ratio = long.cycles as f64 / short.cycles as f64;
        assert!((1.6..2.4).contains(&ratio), "scaling ratio {ratio}");
    }
}
