//! Bit/frame error-rate measurement harness.
//!
//! Not a paper exhibit — the paper measures temperature, not coding gain —
//! but the workload is only credible if the decoder actually corrects
//! errors; this harness produces the standard waterfall curves used by the
//! `ldpc_decode` example and by regression tests.

use crate::channel::AwgnChannel;
use crate::code::LdpcCode;
use crate::decoder::{DecodeStatus, DecoderWorkspace};
use crate::encoder::Encoder;
use crate::error::LdpcError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One operating point of a waterfall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BerPoint {
    /// Eb/N0 in dB.
    pub snr_db: f64,
    /// Frame error rate.
    pub fer: f64,
    /// Bit error rate (over message bits of failed frames too).
    pub ber: f64,
    /// Mean decoder iterations.
    pub mean_iterations: f64,
    /// Frames simulated.
    pub frames: usize,
}

/// Measures FER/BER of `decode` over an SNR sweep with `trials` frames per
/// point. The decoder is any closure from LLRs and a shared
/// [`DecoderWorkspace`] to a [`DecodeStatus`] (min-sum, sum-product,
/// layered, ...) — the harness owns one workspace and threads it through
/// every frame, so the whole sweep decodes without per-block allocations;
/// hard decisions are read back from [`DecoderWorkspace::bits`].
///
/// # Errors
///
/// Propagates code/encoder construction failures.
pub fn waterfall<F>(
    code: &LdpcCode,
    snrs_db: &[f64],
    trials: usize,
    seed: u64,
    mut decode: F,
) -> Result<Vec<BerPoint>, LdpcError>
where
    F: FnMut(&LdpcCode, &[f64], &mut DecoderWorkspace) -> DecodeStatus,
{
    let encoder = Encoder::new(code)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ws = DecoderWorkspace::for_code(code);
    let mut points = Vec::with_capacity(snrs_db.len());
    for (si, &snr) in snrs_db.iter().enumerate() {
        let mut chan = AwgnChannel::new(snr, code.rate(), seed ^ (si as u64) << 32);
        let mut frame_errors = 0usize;
        let mut bit_errors = 0usize;
        let mut iterations = 0usize;
        for _ in 0..trials {
            let msg: Vec<bool> = (0..encoder.k()).map(|_| rng.gen()).collect();
            let word = encoder.encode(&msg)?;
            let llrs = chan.transmit(&word);
            let out = decode(code, &llrs, &mut ws);
            iterations += out.iterations;
            let errs = ws.bits().iter().zip(&word).filter(|(a, b)| a != b).count();
            if errs > 0 || !out.converged {
                frame_errors += 1;
                bit_errors += errs;
            }
        }
        points.push(BerPoint {
            snr_db: snr,
            fer: frame_errors as f64 / trials as f64,
            ber: bit_errors as f64 / (trials * code.n()) as f64,
            mean_iterations: iterations as f64 / trials as f64,
            frames: trials,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::MinSumDecoder;
    use crate::layered::LayeredMinSumDecoder;

    #[test]
    fn waterfall_improves_with_snr() {
        let code = LdpcCode::gallager(240, 3, 6, 3).unwrap();
        let dec = MinSumDecoder::default();
        let points = waterfall(&code, &[1.0, 4.5], 30, 7, |c, l, ws| {
            dec.decode_with(c, l, ws)
        })
        .unwrap();
        assert_eq!(points.len(), 2);
        assert!(
            points[1].fer < points[0].fer,
            "FER did not improve: {} -> {}",
            points[0].fer,
            points[1].fer
        );
        assert!(
            points[1].fer < 0.2,
            "high-SNR FER too high: {}",
            points[1].fer
        );
        assert!(points[1].mean_iterations <= points[0].mean_iterations);
    }

    #[test]
    fn ber_bounded_by_fer() {
        let code = LdpcCode::gallager(120, 3, 6, 1).unwrap();
        let dec = LayeredMinSumDecoder::default();
        let points = waterfall(&code, &[2.0], 25, 3, |c, l, ws| dec.decode_with(c, l, ws)).unwrap();
        for p in points {
            assert!(p.ber <= p.fer + 1e-12, "BER {} above FER {}", p.ber, p.fer);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let code = LdpcCode::gallager(120, 3, 6, 1).unwrap();
        let dec = MinSumDecoder::default();
        let a = waterfall(&code, &[2.5], 10, 9, |c, l, ws| dec.decode_with(c, l, ws)).unwrap();
        let b = waterfall(&code, &[2.5], 10, 9, |c, l, ws| dec.decode_with(c, l, ws)).unwrap();
        assert_eq!(a, b);
    }
}
