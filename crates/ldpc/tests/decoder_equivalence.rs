//! Flattened-decoder equivalence battery: the CSR/workspace decoders must
//! reproduce the seed's `Vec<Vec<f64>>` message-passing implementations
//! **bit for bit** — identical hard decisions, convergence flags, and
//! iteration counts on random codes and random channel observations.
//!
//! The reference implementations below are verbatim transcriptions of the
//! pre-flattening decode loops (flooding min-sum, flooding sum-product, and
//! layered min-sum), kept here as the executable specification the
//! optimized edge-array decoders are checked against. The flattened code
//! preserves floating-point operation order by construction — each
//! variable's CSC edge list is in ascending check-row order, matching the
//! seed's row-major posterior accumulation — so the comparison is exact
//! equality, not approximate.

use hotnoc_ldpc::channel::AwgnChannel;
use hotnoc_ldpc::{
    DecodeOutcome, DecoderWorkspace, Encoder, LayeredMinSumDecoder, LdpcCode, MinSumDecoder,
    SumProductDecoder,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// --- Seed-algorithm reference implementations -----------------------------

fn ref_min_sum_check(inputs: &[f64], out: &mut [f64], alpha: f64) {
    let deg = inputs.len();
    let mut sign_product = 1.0f64;
    let (mut min1, mut min2) = (f64::INFINITY, f64::INFINITY);
    let mut min_idx = 0;
    for (i, &v) in inputs.iter().enumerate() {
        if v < 0.0 {
            sign_product = -sign_product;
        }
        let mag = v.abs();
        if mag < min1 {
            min2 = min1;
            min1 = mag;
            min_idx = i;
        } else if mag < min2 {
            min2 = mag;
        }
    }
    for i in 0..deg {
        let mag = if i == min_idx { min2 } else { min1 };
        let self_sign = if inputs[i] < 0.0 { -1.0 } else { 1.0 };
        out[i] = alpha * sign_product * self_sign * mag;
    }
}

fn ref_sum_product_check(inputs: &[f64], out: &mut [f64]) {
    let clamp = |x: f64| x.clamp(-30.0, 30.0);
    let tanhs: Vec<f64> = inputs.iter().map(|&v| (clamp(v) / 2.0).tanh()).collect();
    for (i, o) in out.iter_mut().enumerate() {
        let mut prod = 1.0;
        for (j, &t) in tanhs.iter().enumerate() {
            if j != i {
                prod *= t;
            }
        }
        let prod = prod.clamp(-0.999_999_999, 0.999_999_999);
        *o = 2.0 * prod.atanh();
    }
}

/// The seed's flooding decode loop over per-row `Vec<Vec<f64>>` storage.
fn ref_decode_flooding<F>(
    code: &LdpcCode,
    llrs: &[f64],
    max_iters: usize,
    mut check_update: F,
) -> DecodeOutcome
where
    F: FnMut(&[f64], &mut [f64]),
{
    assert_eq!(llrs.len(), code.n());
    let m = code.m();
    let mut chk_to_var: Vec<Vec<f64>> = (0..m).map(|r| vec![0.0; code.h().row(r).len()]).collect();
    let mut var_to_chk: Vec<Vec<f64>> = chk_to_var.clone();
    let mut posterior: Vec<f64> = llrs.to_vec();
    let mut bits: Vec<bool> = llrs.iter().map(|&l| l < 0.0).collect();

    let mut iterations = 0;
    let mut converged = code.is_codeword(&bits);
    while !converged && iterations < max_iters {
        iterations += 1;
        for r in 0..m {
            for (k, &v) in code.h().row(r).iter().enumerate() {
                var_to_chk[r][k] = posterior[v] - chk_to_var[r][k];
            }
        }
        let mut scratch = Vec::new();
        for (vt, ct) in var_to_chk.iter().zip(chk_to_var.iter_mut()) {
            scratch.clear();
            scratch.extend_from_slice(vt);
            check_update(&scratch, ct);
        }
        posterior.copy_from_slice(llrs);
        for (r, ct) in chk_to_var.iter().enumerate() {
            for (k, &v) in code.h().row(r).iter().enumerate() {
                posterior[v] += ct[k];
            }
        }
        for (b, &p) in bits.iter_mut().zip(&posterior) {
            *b = p < 0.0;
        }
        converged = code.is_codeword(&bits);
    }

    DecodeOutcome {
        bits,
        converged,
        iterations: iterations.max(1),
    }
}

/// The seed's layered (serial-C) decode loop.
fn ref_decode_layered(
    code: &LdpcCode,
    llrs: &[f64],
    max_iters: usize,
    alpha: f64,
) -> DecodeOutcome {
    assert_eq!(llrs.len(), code.n());
    let m = code.m();
    let mut chk_msgs: Vec<Vec<f64>> = (0..m).map(|r| vec![0.0; code.h().row(r).len()]).collect();
    let mut posterior: Vec<f64> = llrs.to_vec();
    let mut bits: Vec<bool> = llrs.iter().map(|&l| l < 0.0).collect();
    let mut converged = code.is_codeword(&bits);
    let mut iterations = 0;

    let mut extrinsic: Vec<f64> = Vec::new();
    while !converged && iterations < max_iters {
        iterations += 1;
        for (r, msgs) in chk_msgs.iter_mut().enumerate() {
            let row = code.h().row(r);
            extrinsic.clear();
            for (k, &v) in row.iter().enumerate() {
                extrinsic.push(posterior[v] - msgs[k]);
            }
            let (mut min1, mut min2) = (f64::INFINITY, f64::INFINITY);
            let mut min_idx = 0;
            let mut sign = 1.0f64;
            for (k, &q) in extrinsic.iter().enumerate() {
                if q < 0.0 {
                    sign = -sign;
                }
                let mag = q.abs();
                if mag < min1 {
                    min2 = min1;
                    min1 = mag;
                    min_idx = k;
                } else if mag < min2 {
                    min2 = mag;
                }
            }
            for (k, &v) in row.iter().enumerate() {
                let mag = if k == min_idx { min2 } else { min1 };
                let self_sign = if extrinsic[k] < 0.0 { -1.0 } else { 1.0 };
                let msg = alpha * sign * self_sign * mag;
                msgs[k] = msg;
                posterior[v] = extrinsic[k] + msg;
            }
        }
        for (b, &p) in bits.iter_mut().zip(&posterior) {
            *b = p < 0.0;
        }
        converged = code.is_codeword(&bits);
    }

    DecodeOutcome {
        bits,
        converged,
        iterations: iterations.max(1),
    }
}

// --- Shared harness --------------------------------------------------------

/// A random code and a random noisy observation of a random codeword. SNR
/// spans hopeless (1 dB) to easy (6 dB) so the battery exercises early
/// convergence, mid-loop convergence, and iteration exhaustion alike.
fn random_block(n: usize, code_seed: u64, msg_seed: u64, snr_centi: u32) -> (LdpcCode, Vec<f64>) {
    let code = LdpcCode::gallager(n, 3, 6, code_seed).unwrap();
    let enc = Encoder::new(&code).unwrap();
    let mut rng = StdRng::seed_from_u64(msg_seed);
    let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
    let word = enc.encode(&msg).unwrap();
    let mut chan = AwgnChannel::new(snr_centi as f64 / 100.0, code.rate(), msg_seed ^ 0x5EED);
    let llrs = chan.transmit(&word);
    (code, llrs)
}

fn assert_matches_reference(
    reference: &DecodeOutcome,
    ws: &DecoderWorkspace,
    converged: bool,
    iterations: usize,
) {
    assert_eq!(converged, reference.converged, "converged diverged");
    assert_eq!(iterations, reference.iterations, "iterations diverged");
    assert_eq!(ws.bits(), &reference.bits[..], "hard decisions diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn min_sum_matches_seed_reference(
        code_seed in 0u64..2_000,
        msg_seed in 0u64..2_000,
        snr_centi in 100u32..600,
        max_iters in 1usize..24,
    ) {
        let (code, llrs) = random_block(120, code_seed, msg_seed, snr_centi);
        let dec = MinSumDecoder { max_iters, alpha: 0.8 };
        let reference = ref_decode_flooding(&code, &llrs, max_iters, |q, out| {
            ref_min_sum_check(q, out, dec.alpha)
        });
        let mut ws = DecoderWorkspace::new();
        let status = dec.decode_with(&code, &llrs, &mut ws);
        assert_matches_reference(&reference, &ws, status.converged, status.iterations);
    }

    #[test]
    fn sum_product_matches_seed_reference(
        code_seed in 0u64..2_000,
        msg_seed in 0u64..2_000,
        snr_centi in 100u32..600,
    ) {
        let (code, llrs) = random_block(120, code_seed, msg_seed, snr_centi);
        let dec = SumProductDecoder::default();
        let reference =
            ref_decode_flooding(&code, &llrs, dec.max_iters, ref_sum_product_check);
        let mut ws = DecoderWorkspace::new();
        let status = dec.decode_with(&code, &llrs, &mut ws);
        assert_matches_reference(&reference, &ws, status.converged, status.iterations);
    }

    #[test]
    fn layered_matches_seed_reference(
        code_seed in 0u64..2_000,
        msg_seed in 0u64..2_000,
        snr_centi in 100u32..600,
    ) {
        let (code, llrs) = random_block(120, code_seed, msg_seed, snr_centi);
        let dec = LayeredMinSumDecoder::default();
        let reference = ref_decode_layered(&code, &llrs, dec.max_iters, dec.alpha);
        let mut ws = DecoderWorkspace::new();
        let status = dec.decode_with(&code, &llrs, &mut ws);
        assert_matches_reference(&reference, &ws, status.converged, status.iterations);
    }

    #[test]
    fn alpha_variants_match_seed_reference(
        alpha_centi in 50u32..100,
        msg_seed in 0u64..2_000,
    ) {
        let (code, llrs) = random_block(120, 7, msg_seed, 300);
        let dec = MinSumDecoder { max_iters: 20, alpha: alpha_centi as f64 / 100.0 };
        let reference = ref_decode_flooding(&code, &llrs, dec.max_iters, |q, out| {
            ref_min_sum_check(q, out, dec.alpha)
        });
        let mut ws = DecoderWorkspace::new();
        let status = dec.decode_with(&code, &llrs, &mut ws);
        assert_matches_reference(&reference, &ws, status.converged, status.iterations);
    }

    #[test]
    fn reused_workspace_is_history_free(
        code_seed_a in 0u64..500,
        code_seed_b in 0u64..500,
        msg_seed in 0u64..2_000,
    ) {
        // Decoding block B after an unrelated block A (different code, so
        // the workspace rebuilds its topology mid-stream) must produce the
        // same result as decoding B into a fresh workspace.
        let (code_a, llrs_a) = random_block(120, code_seed_a, msg_seed, 200);
        let (code_b, llrs_b) = random_block(240, code_seed_b, msg_seed ^ 1, 350);
        let dec = MinSumDecoder::default();

        let mut shared = DecoderWorkspace::new();
        dec.decode_with(&code_a, &llrs_a, &mut shared);
        let warm = dec.decode_with(&code_b, &llrs_b, &mut shared);

        let mut fresh = DecoderWorkspace::new();
        let cold = dec.decode_with(&code_b, &llrs_b, &mut fresh);

        prop_assert_eq!(warm, cold);
        prop_assert_eq!(shared.bits(), fresh.bits());
    }
}

/// The convenience `decode()` API (which allocates its own workspace) and
/// the `decode_with` path must agree with the reference too — one dense
/// deterministic sweep rather than a proptest, so the three public decoders
/// are each pinned at least once even under `--test-threads` stress.
#[test]
fn convenience_api_matches_reference_across_decoders() {
    for (code_seed, snr) in [(3u64, 150u32), (9, 300), (21, 500)] {
        let (code, llrs) = random_block(240, code_seed, code_seed * 31, snr);
        let ms = MinSumDecoder::default();
        let sp = SumProductDecoder::default();
        let lay = LayeredMinSumDecoder::default();

        let ms_ref = ref_decode_flooding(&code, &llrs, ms.max_iters, |q, out| {
            ref_min_sum_check(q, out, ms.alpha)
        });
        assert_eq!(ms.decode(&code, &llrs), ms_ref);

        let sp_ref = ref_decode_flooding(&code, &llrs, sp.max_iters, ref_sum_product_check);
        assert_eq!(sp.decode(&code, &llrs), sp_ref);

        let lay_ref = ref_decode_layered(&code, &llrs, lay.max_iters, lay.alpha);
        assert_eq!(lay.decode(&code, &llrs), lay_ref);
    }
}
