//! Property tests for the LDPC codec: every encoded message is a codeword,
//! decoding inverts encoding at high SNR, syndrome linearity.

use hotnoc_ldpc::channel::AwgnChannel;
use hotnoc_ldpc::{Encoder, LayeredMinSumDecoder, LdpcCode, MinSumDecoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn encoded_messages_are_codewords(seed in 0u64..5_000, msg_seed in 0u64..5_000) {
        let code = LdpcCode::gallager(120, 3, 6, seed).unwrap();
        let enc = Encoder::new(&code).unwrap();
        let mut rng = StdRng::seed_from_u64(msg_seed);
        let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
        let word = enc.encode(&msg).unwrap();
        prop_assert!(code.is_codeword(&word));
    }

    #[test]
    fn high_snr_decoding_inverts_encoding(code_seed in 0u64..1_000, msg_seed in 0u64..1_000) {
        let code = LdpcCode::gallager(120, 3, 6, code_seed).unwrap();
        let enc = Encoder::new(&code).unwrap();
        let mut rng = StdRng::seed_from_u64(msg_seed);
        let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
        let word = enc.encode(&msg).unwrap();
        let mut chan = AwgnChannel::new(9.0, code.rate(), msg_seed ^ 0xABCD);
        let llrs = chan.transmit(&word);
        for outcome in [
            MinSumDecoder::default().decode(&code, &llrs),
            LayeredMinSumDecoder::default().decode(&code, &llrs),
        ] {
            prop_assert!(outcome.converged, "high-SNR decode failed");
            prop_assert_eq!(&outcome.bits, &word);
        }
    }

    #[test]
    fn syndrome_is_linear(seed in 0u64..1_000, a_seed in 0u64..1_000, b_seed in 0u64..1_000) {
        let code = LdpcCode::gallager(60, 3, 6, seed).unwrap();
        let mut rng_a = StdRng::seed_from_u64(a_seed);
        let mut rng_b = StdRng::seed_from_u64(b_seed);
        let a: Vec<bool> = (0..60).map(|_| rng_a.gen()).collect();
        let b: Vec<bool> = (0..60).map(|_| rng_b.gen()).collect();
        let ab: Vec<bool> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let sa = code.h().syndrome(&a);
        let sb = code.h().syndrome(&b);
        let sab = code.h().syndrome(&ab);
        for i in 0..sa.len() {
            prop_assert_eq!(sab[i], sa[i] ^ sb[i]);
        }
    }

    #[test]
    fn decoder_output_is_codeword_when_converged(
        snr_centi in 150u32..500,
        seed in 0u64..1_000,
    ) {
        let code = LdpcCode::gallager(120, 3, 6, 3).unwrap();
        let enc = Encoder::new(&code).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<bool> = (0..enc.k()).map(|_| rng.gen()).collect();
        let word = enc.encode(&msg).unwrap();
        let mut chan = AwgnChannel::new(snr_centi as f64 / 100.0, code.rate(), seed);
        let out = MinSumDecoder::default().decode(&code, &chan.transmit(&word));
        if out.converged {
            // Convergence is declared by zero syndrome; the output must be
            // a codeword (possibly not the transmitted one at low SNR).
            prop_assert!(code.is_codeword(&out.bits));
        }
    }
}
