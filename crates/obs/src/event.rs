//! The typed, sim-time trace event vocabulary.
//!
//! Every event carries the sim cycle it happened at; a serialized trace is
//! ordered by cycle (non-descending), with ties broken by emission order —
//! which producers keep deterministic by committing stripe-buffered events
//! in ascending router-id order. The taxonomy, field meanings and emission
//! thresholds are documented in `docs/OBSERVABILITY.md`.
//!
//! Coordinates are plain `(x, y)` pairs rather than `hotnoc_noc::Coord` so
//! this crate stays a dependency-free leaf.

/// One simulation event, keyed by sim cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The scenario runner started executing a job (`job` is its index in
    /// the stably-ordered expanded job list).
    JobStart {
        /// Sim cycle (always 0 — the job's first event).
        cycle: u64,
        /// Job index in the expanded campaign job list.
        job: u64,
        /// Job (scenario) name.
        name: String,
    },
    /// The scenario runner finished a job; always the trace's last event.
    JobFinish {
        /// Final sim cycle of the job.
        cycle: u64,
        /// Job index in the expanded campaign job list.
        job: u64,
        /// Job (scenario) name.
        name: String,
    },
    /// A sharded campaign run executed this job as part of its stripe.
    /// Keyed by the job's *position in the stripe* (not completion order,
    /// which varies with thread count).
    ShardProgress {
        /// Sim cycle (always 0 — recorded at job start).
        cycle: u64,
        /// Shard index `i` of `i/n`.
        shard: u64,
        /// Shard count `n` of `i/n`.
        shard_count: u64,
        /// Zero-based position of this job within the shard's stripe.
        position: u64,
        /// Jobs in the stripe.
        stripe_len: u64,
    },
    /// A router went down (fault-plan event applied).
    RouterFailed {
        /// Sim cycle the fault landed.
        cycle: u64,
        /// Router x coordinate.
        x: u8,
        /// Router y coordinate.
        y: u8,
    },
    /// A failed router came back.
    RouterRepaired {
        /// Sim cycle the repair landed.
        cycle: u64,
        /// Router x coordinate.
        x: u8,
        /// Router y coordinate.
        y: u8,
    },
    /// A link went down (both directions).
    LinkFailed {
        /// Sim cycle the fault landed.
        cycle: u64,
        /// Endpoint A x coordinate.
        ax: u8,
        /// Endpoint A y coordinate.
        ay: u8,
        /// Endpoint B x coordinate.
        bx: u8,
        /// Endpoint B y coordinate.
        by: u8,
    },
    /// A failed link came back.
    LinkRepaired {
        /// Sim cycle the repair landed.
        cycle: u64,
        /// Endpoint A x coordinate.
        ax: u8,
        /// Endpoint A y coordinate.
        ay: u8,
        /// Endpoint B x coordinate.
        bx: u8,
        /// Endpoint B y coordinate.
        by: u8,
    },
    /// A batch of fault-plan events committed at one cycle: the fabric
    /// entered a new fault epoch. `packets_dropped` / `flits_dropped`
    /// count the traffic condemned by *this* epoch's teardown.
    FaultEpoch {
        /// Sim cycle the epoch began.
        cycle: u64,
        /// Epoch ordinal (1 for the first topology change).
        epoch: u64,
        /// Routers down after the epoch committed.
        routers_down: u64,
        /// Links down after the epoch committed (failed-link records;
        /// routers that are down also sever their links implicitly).
        links_down: u64,
        /// Packets condemned by this epoch's teardown.
        packets_dropped: u64,
        /// Flits condemned by this epoch's teardown.
        flits_dropped: u64,
    },
    /// A packet was dropped at its source NIC because the source router
    /// is dead or unreachable in the degraded fabric.
    PacketDrop {
        /// Sim cycle of the drop.
        cycle: u64,
        /// Source x coordinate.
        x: u8,
        /// Source y coordinate.
        y: u8,
        /// Flits in the dropped packet.
        flits: u64,
    },
    /// A cycle in which surround routing detoured at least
    /// `DETOUR_BURST_MIN` flit-hops off the minimal path.
    DetourBurst {
        /// Sim cycle of the burst.
        cycle: u64,
        /// Detoured flit-hops this cycle (summed over all routers).
        hops: u64,
    },
    /// Per-window congestion watermark: the peak single-router VC
    /// occupancy observed during one `CONGESTION_WINDOW`-cycle window.
    /// Emitted at the window boundary, only for windows with traffic.
    Congestion {
        /// Sim cycle the window closed (last cycle of the window).
        cycle: u64,
        /// First cycle of the window.
        window_start: u64,
        /// Peak buffered flits in any single router during the window.
        peak: u64,
        /// Cycle at which the peak was (first) observed.
        peak_cycle: u64,
        /// Peak router x coordinate (lowest router id on ties).
        x: u8,
        /// Peak router y coordinate.
        y: u8,
    },
    /// A thermal node crossed the configured temperature threshold
    /// (with hysteresis; see `docs/OBSERVABILITY.md`).
    TempCrossing {
        /// Sim cycle of the thermal frame that observed the crossing.
        cycle: u64,
        /// Thermal block index.
        node: u64,
        /// Block temperature at the crossing, °C.
        temp_c: f64,
        /// The threshold crossed, °C.
        threshold_c: f64,
        /// `true` when crossing upward (heating past the threshold).
        rising: bool,
    },
    /// The reconfiguration policy chose a migration scheme.
    PolicyDecision {
        /// Sim cycle of the decision.
        cycle: u64,
        /// Decision ordinal (1-based).
        decision: u64,
        /// The chosen scheme, `Display`-rendered.
        scheme: String,
    },
    /// The serving layer answered a submission from its result cache
    /// instead of recomputing (`hotnoc serve`; the response bytes are
    /// identical to the first computation's). `cycle` is the hit ordinal —
    /// serving events have no sim time of their own.
    CacheHit {
        /// Hit ordinal (1-based, in service order).
        cycle: u64,
        /// FNV-1a fingerprint of the cached spec.
        fingerprint: String,
        /// Name of the cached scenario.
        name: String,
    },
    /// A migration executed, with its cost model outputs.
    Migration {
        /// Sim cycle the migration committed.
        cycle: u64,
        /// The executed scheme, `Display`-rendered.
        scheme: String,
        /// Phases in the migration plan.
        phases: u64,
        /// Total flit-hops of state moved.
        flit_hops: u64,
        /// NoC cycles the plan stalls the workload for.
        stall_cycles: u64,
        /// Migration energy, joules.
        energy_j: f64,
    },
}

/// Minimum detoured flit-hops in one cycle for a [`TraceEvent::DetourBurst`]
/// to be emitted (quieter cycles still show up in aggregate stats).
pub const DETOUR_BURST_MIN: u64 = 4;

/// Congestion watermark window length, cycles.
pub const CONGESTION_WINDOW: u64 = 64;

impl TraceEvent {
    /// The sim cycle this event is keyed by.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::JobStart { cycle, .. }
            | TraceEvent::JobFinish { cycle, .. }
            | TraceEvent::ShardProgress { cycle, .. }
            | TraceEvent::RouterFailed { cycle, .. }
            | TraceEvent::RouterRepaired { cycle, .. }
            | TraceEvent::LinkFailed { cycle, .. }
            | TraceEvent::LinkRepaired { cycle, .. }
            | TraceEvent::FaultEpoch { cycle, .. }
            | TraceEvent::PacketDrop { cycle, .. }
            | TraceEvent::DetourBurst { cycle, .. }
            | TraceEvent::Congestion { cycle, .. }
            | TraceEvent::TempCrossing { cycle, .. }
            | TraceEvent::PolicyDecision { cycle, .. }
            | TraceEvent::CacheHit { cycle, .. }
            | TraceEvent::Migration { cycle, .. } => cycle,
        }
    }

    /// The event's kind tag — the `"kind"` field of its serialized form
    /// and the vocabulary `hotnoc trace summary` counts by.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobFinish { .. } => "job_finish",
            TraceEvent::ShardProgress { .. } => "shard_progress",
            TraceEvent::RouterFailed { .. } => "router_failed",
            TraceEvent::RouterRepaired { .. } => "router_repaired",
            TraceEvent::LinkFailed { .. } => "link_failed",
            TraceEvent::LinkRepaired { .. } => "link_repaired",
            TraceEvent::FaultEpoch { .. } => "fault_epoch",
            TraceEvent::PacketDrop { .. } => "packet_drop",
            TraceEvent::DetourBurst { .. } => "detour_burst",
            TraceEvent::Congestion { .. } => "congestion",
            TraceEvent::TempCrossing { .. } => "temp_crossing",
            TraceEvent::PolicyDecision { .. } => "policy_decision",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::Migration { .. } => "migration",
        }
    }

    /// Every kind tag, in taxonomy order (used by validators and docs).
    pub const KINDS: [&'static str; 15] = [
        "job_start",
        "job_finish",
        "shard_progress",
        "router_failed",
        "router_repaired",
        "link_failed",
        "link_repaired",
        "fault_epoch",
        "packet_drop",
        "detour_burst",
        "congestion",
        "temp_crossing",
        "policy_decision",
        "cache_hit",
        "migration",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_are_unique_and_listed() {
        let mut kinds = TraceEvent::KINDS.to_vec();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), TraceEvent::KINDS.len());
    }

    #[test]
    fn cycle_accessor_matches_payload() {
        let ev = TraceEvent::RouterFailed {
            cycle: 42,
            x: 1,
            y: 2,
        };
        assert_eq!(ev.cycle(), 42);
        assert_eq!(ev.kind(), "router_failed");
        assert!(TraceEvent::KINDS.contains(&ev.kind()));
    }
}
