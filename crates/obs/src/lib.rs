//! Observability primitives for the hotnoc stack, split into two strictly
//! separated planes:
//!
//! * **the deterministic plane** ([`event`], [`sink`]) — typed sim-time
//!   [`TraceEvent`]s recorded through a [`TraceSink`]. Events are keyed by
//!   sim cycle and carry only simulation state, so a trace is a pure
//!   function of the spec: byte-identical at any thread count and across
//!   kill/resume, exactly like every other artifact (see
//!   `docs/DETERMINISM.md`). Producers that run inside striped parallel
//!   phases buffer events per stripe and commit them in ascending
//!   router-id order, the same discipline as their stats.
//! * **the timing plane** ([`prof`]) — wall-clock scope timers around the
//!   hot phases (`Network::step` sweeps, thermal step, LDPC decode).
//!   Wall time is inherently non-deterministic, so profiles live in a
//!   separate `hotnoc-profile-v1` sidecar and are *never* part of the
//!   byte-identity guarantee.
//!
//! This crate is a dependency-free leaf so every simulation crate can emit
//! into it; serialization to the `hotnoc-trace-v1` / `hotnoc-profile-v1`
//! documents lives in `hotnoc-scenario` (which owns the canonical JSON
//! writer).
//!
//! Recording is free when unused: producers gate on "is a sink installed"
//! (one branch), and [`prof::scope`] is one relaxed atomic load when
//! profiling is disabled — cheap enough that the instrumented hot loops
//! stay inside the CI bench-regression budget.

pub mod event;
pub mod prof;
pub mod sink;

pub use event::TraceEvent;
pub use sink::{RingSink, TraceSink, VecSink};
