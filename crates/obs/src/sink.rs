//! Trace sinks: where producers put [`TraceEvent`]s.
//!
//! A sink is installed into a producer (a `Network`, a co-sim loop, the
//! scenario runner) for the duration of a run and then drained. Sinks are
//! deliberately dumb — ordering discipline is the *producer's* job (events
//! must arrive in the deterministic commit order), and serialization is
//! the scenario crate's.

use crate::event::TraceEvent;

/// Receives trace events in deterministic order.
///
/// `Send` so a sink can ride inside a simulation that a campaign worker
/// thread owns; producers never share one sink across threads — events
/// generated in parallel stripes are buffered per stripe and recorded at
/// the serial commit point.
pub trait TraceSink: Send {
    /// Records one event. Must be cheap; called from simulation hot paths
    /// (behind the producer's "is tracing on" branch).
    fn record(&mut self, ev: TraceEvent);

    /// Takes every retained event out of the sink, in recorded order.
    fn drain(&mut self) -> Vec<TraceEvent>;

    /// Events discarded by a bounded sink (0 for unbounded sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Unbounded sink: retains everything, in order.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// New empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// No events recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Bounded sink: keeps the most recent `capacity` events, counting what it
/// sheds. The drop policy is deterministic (pure function of the recorded
/// sequence), so a ring-truncated trace is still byte-stable.
#[derive(Debug)]
pub struct RingSink {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// New ring retaining at most `capacity` events (capacity 0 retains
    /// nothing and counts everything as dropped).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            events: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::DetourBurst { cycle, hops: 5 }
    }

    #[test]
    fn vec_sink_retains_order() {
        let mut s = VecSink::new();
        for c in 0..5 {
            s.record(ev(c));
        }
        assert_eq!(s.len(), 5);
        let drained = s.drain();
        assert_eq!(drained.len(), 5);
        assert!(s.is_empty());
        assert_eq!(drained[3].cycle(), 3);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_sink_sheds_oldest_and_counts() {
        let mut s = RingSink::new(3);
        for c in 0..10 {
            s.record(ev(c));
        }
        assert_eq!(s.dropped(), 7);
        let drained = s.drain();
        assert_eq!(
            drained.iter().map(TraceEvent::cycle).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn zero_capacity_ring_retains_nothing() {
        let mut s = RingSink::new(0);
        s.record(ev(1));
        assert_eq!(s.dropped(), 1);
        assert!(s.drain().is_empty());
    }
}
