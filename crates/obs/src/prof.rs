//! The non-deterministic timing plane: wall-clock scope timers around
//! named phases, accumulated into a process-global registry.
//!
//! Usage at an instrumentation site:
//!
//! ```
//! let _t = hotnoc_obs::prof::scope("noc/step/alloc_sweep");
//! // ... the phase body; the timer records on drop ...
//! ```
//!
//! When profiling is disabled (the default) `scope` is a single relaxed
//! atomic load returning `None` — the instrumented hot loops pay one
//! predictable branch, which is what keeps the CI bench-regression gate
//! green with instrumentation merged. When enabled, each scope records
//! its duration into per-phase counters plus a log2 histogram from which
//! approximate p50/p95 are derived.
//!
//! Everything here is wall time and therefore **outside the determinism
//! guarantee**: reports go to a separate `hotnoc-profile-v1` sidecar and
//! must never be folded into a deterministic artifact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<(&'static str, PhaseStats)>> = Mutex::new(Vec::new());

/// Histogram bucket count: bucket `i` holds durations with
/// `floor(log2(ns.max(1))) == i`, so 64 buckets cover any `u64` duration.
const BUCKETS: usize = 64;

/// Turns the profiler on or off. Enabling does not clear previously
/// accumulated stats; pair with [`take_report`] to start a fresh window.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether scopes are currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts timing `name` if profiling is enabled; the returned guard
/// records on drop. `name` should be a stable `subsystem/phase` path
/// (e.g. `"thermal/step"`) — it is the aggregation key.
#[inline]
#[must_use]
pub fn scope(name: &'static str) -> Option<ScopeTimer> {
    if !is_enabled() {
        return None;
    }
    Some(ScopeTimer {
        name,
        start: Instant::now(),
    })
}

/// A live scope timer; drops record into the registry.
#[derive(Debug)]
pub struct ScopeTimer {
    name: &'static str,
    start: Instant,
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        match reg.iter_mut().find(|(n, _)| *n == self.name) {
            Some((_, stats)) => stats.record(ns),
            None => {
                let mut stats = PhaseStats::default();
                stats.record(ns);
                reg.push((self.name, stats));
            }
        }
    }
}

/// Accumulated timing of one phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Completed scopes.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    hist: [u64; BUCKETS],
}

impl Default for PhaseStats {
    fn default() -> Self {
        PhaseStats {
            calls: 0,
            total_ns: 0,
            hist: [0; BUCKETS],
        }
    }
}

impl PhaseStats {
    fn record(&mut self, ns: u64) {
        self.calls += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.hist[63 - ns.max(1).leading_zeros() as usize] += 1;
    }

    /// Approximate quantile (`0.0..=1.0`) of per-call duration: the upper
    /// bound of the log2 bucket containing the q-th call, so the reported
    /// value is within 2x of the true quantile.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.calls == 0 {
            return 0;
        }
        let rank = ((q * self.calls as f64).ceil() as u64).clamp(1, self.calls);
        let mut seen = 0u64;
        for (i, &count) in self.hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }
}

/// One phase's row in a profile report.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// The phase path (`subsystem/phase`).
    pub name: String,
    /// Completed scopes.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Mean per-call wall time, nanoseconds.
    pub mean_ns: f64,
    /// Approximate median per-call wall time, nanoseconds (log2-bucket
    /// upper bound).
    pub p50_ns: u64,
    /// Approximate 95th-percentile per-call wall time, nanoseconds.
    pub p95_ns: u64,
}

/// A snapshot of every phase recorded so far, in first-seen order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Per-phase rows.
    pub phases: Vec<PhaseReport>,
}

fn snapshot(reg: &[(&'static str, PhaseStats)]) -> ProfileReport {
    ProfileReport {
        phases: reg
            .iter()
            .map(|(name, s)| PhaseReport {
                name: (*name).to_string(),
                calls: s.calls,
                total_ns: s.total_ns,
                mean_ns: if s.calls == 0 {
                    0.0
                } else {
                    s.total_ns as f64 / s.calls as f64
                },
                p50_ns: s.quantile_ns(0.50),
                p95_ns: s.quantile_ns(0.95),
            })
            .collect(),
    }
}

/// Snapshots the registry without clearing it.
pub fn report() -> ProfileReport {
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    snapshot(&reg)
}

/// Snapshots and clears the registry — the usual end-of-run call, so
/// consecutive profiled runs in one process don't bleed into each other.
pub fn take_report() -> ProfileReport {
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let out = snapshot(&reg);
    reg.clear();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag and registry are process-global; tests touching
    /// them serialize on this lock to stay order-independent.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_scope_is_none() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        assert!(scope("test/never").is_none());
    }

    #[test]
    fn quantiles_bound_recorded_durations() {
        let mut s = PhaseStats::default();
        for ns in [10u64, 20, 30, 40, 1000] {
            s.record(ns);
        }
        assert_eq!(s.calls, 5);
        assert_eq!(s.total_ns, 1100);
        // p50 of {10,20,30,40,1000}: true median 30, bucket upper bound 31.
        assert_eq!(s.quantile_ns(0.50), 31);
        // p95 lands in the 1000ns bucket [512, 1023].
        assert_eq!(s.quantile_ns(0.95), 1023);
        assert_eq!(PhaseStats::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn enabled_scopes_accumulate_and_drain() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        {
            let _t = scope("test/phase_a");
            std::hint::black_box(0u64);
        }
        {
            let _t = scope("test/phase_a");
        }
        set_enabled(false);
        let rep = take_report();
        let row = rep
            .phases
            .iter()
            .find(|p| p.name == "test/phase_a")
            .expect("phase recorded");
        assert!(row.calls >= 2);
        assert!(row.p95_ns >= row.p50_ns);
        // Registry drained: a second take shows nothing for this phase.
        assert!(!take_report()
            .phases
            .iter()
            .any(|p| p.name == "test/phase_a"));
    }
}
