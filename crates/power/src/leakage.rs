//! Temperature-dependent leakage (static) power.
//!
//! Subthreshold leakage grows exponentially with junction temperature; the
//! usual architectural model is `P(T) = P(T_ref) * exp(k * (T - T_ref))`.
//! The paper observes this coupling indirectly: the rotation scheme's
//! migration energy raises configuration E's average temperature by 0.3 °C,
//! which in turn raises leakage chip-wide.

use crate::tech::TechParams;

/// Leakage power of a block of `area_mm2` at junction temperature
/// `temp_c`, in watts.
pub fn leakage_power(area_mm2: f64, temp_c: f64, tech: &TechParams) -> f64 {
    area_mm2 * tech.leak_density_ref * (tech.leak_temp_coeff * (temp_c - tech.leak_t_ref)).exp()
}

/// One sweep of the leakage/temperature fixed point: given block
/// temperatures, returns per-block leakage. The co-simulation alternates
/// this with the thermal solve; convergence is fast because d(leak)/dT is
/// small compared to the thermal conductance to ambient.
pub fn leakage_per_block(areas_mm2: &[f64], temps_c: &[f64], tech: &TechParams) -> Vec<f64> {
    assert_eq!(areas_mm2.len(), temps_c.len(), "length mismatch");
    areas_mm2
        .iter()
        .zip(temps_c)
        .map(|(&a, &t)| leakage_power(a, t, tech))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_grows_with_temperature() {
        let tech = TechParams::ldpc_160nm();
        let cold = leakage_power(4.36, 40.0, &tech);
        let hot = leakage_power(4.36, 85.0, &tech);
        assert!(hot > cold * 1.5, "expected strong growth: {cold} -> {hot}");
    }

    #[test]
    fn reference_point_matches_density() {
        let tech = TechParams::ldpc_160nm();
        let p = leakage_power(1.0, tech.leak_t_ref, &tech);
        assert!((p - tech.leak_density_ref).abs() < 1e-15);
    }

    #[test]
    fn per_block_vectorized() {
        let tech = TechParams::ldpc_160nm();
        let areas = [4.36, 4.36];
        let temps = [50.0, 90.0];
        let l = leakage_per_block(&areas, &temps, &tech);
        assert_eq!(l.len(), 2);
        assert!(l[1] > l[0]);
    }

    #[test]
    fn leakage_small_fraction_of_tile_watts() {
        // At 160 nm leakage is a minor (but non-zero) fraction of ~1.5 W.
        let tech = TechParams::ldpc_160nm();
        let p = leakage_power(4.36, 80.0, &tech);
        assert!((0.001..0.3).contains(&p), "leakage {p} W implausible");
    }
}
