//! Power breakdowns and traces.

use serde::{Deserialize, Serialize};

/// Power of one tile, split by component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Router dynamic power (W).
    pub router: f64,
    /// PE compute dynamic power (W).
    pub pe: f64,
    /// Static leakage power (W).
    pub leakage: f64,
}

impl PowerBreakdown {
    /// Total tile power (W).
    pub fn total(&self) -> f64 {
        self.router + self.pe + self.leakage
    }

    /// Scales all components (used for calibration normalization).
    pub fn scaled(&self, factor: f64) -> PowerBreakdown {
        PowerBreakdown {
            router: self.router * factor,
            pe: self.pe * factor,
            leakage: self.leakage * factor,
        }
    }
}

/// A per-block power trace at a fixed frame period; the input to
/// `hotnoc_thermal::TransientSim`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    dt: f64,
    n_blocks: usize,
    frames: Vec<Vec<f64>>,
}

impl PowerTrace {
    /// Creates an empty trace with frame period `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `dt` or zero blocks.
    pub fn new(dt: f64, n_blocks: usize) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        assert!(n_blocks > 0, "need at least one block");
        PowerTrace {
            dt,
            n_blocks,
            frames: Vec::new(),
        }
    }

    /// Appends a frame of per-block watts.
    ///
    /// # Panics
    ///
    /// Panics if the frame length mismatches.
    pub fn push(&mut self, watts: &[f64]) {
        assert_eq!(watts.len(), self.n_blocks, "frame length mismatch");
        self.frames.push(watts.to_vec());
    }

    /// Frame period (seconds).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Recorded frames.
    pub fn frames(&self) -> &[Vec<f64>] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when no frames are recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total energy over the trace, in joules.
    pub fn total_energy(&self) -> f64 {
        self.frames
            .iter()
            .map(|f| f.iter().sum::<f64>() * self.dt)
            .sum()
    }

    /// Time-averaged total chip power, in watts (0 for an empty trace).
    pub fn mean_chip_power(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.total_energy() / (self.dt * self.frames.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_scale() {
        let b = PowerBreakdown {
            router: 0.2,
            pe: 1.0,
            leakage: 0.05,
        };
        assert!((b.total() - 1.25).abs() < 1e-12);
        assert!((b.scaled(2.0).total() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn trace_energy() {
        let mut tr = PowerTrace::new(0.5, 2);
        tr.push(&[1.0, 1.0]);
        tr.push(&[2.0, 0.0]);
        assert!((tr.total_energy() - 2.0).abs() < 1e-12);
        assert!((tr.mean_chip_power() - 2.0).abs() < 1e-12);
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn empty_trace() {
        let tr = PowerTrace::new(1.0, 1);
        assert!(tr.is_empty());
        assert_eq!(tr.mean_chip_power(), 0.0);
    }

    #[test]
    #[should_panic(expected = "frame length mismatch")]
    fn wrong_frame_panics() {
        let mut tr = PowerTrace::new(1.0, 2);
        tr.push(&[1.0]);
    }
}
