//! Processing-element compute power.
//!
//! The LDPC PEs of the paper's chips perform check-node and variable-node
//! updates; we charge one [`crate::tech::TechParams::e_pe_op`] per edge
//! operation (one message read-modify-write through the PE datapath and its
//! local memory).

use crate::tech::TechParams;

/// Dynamic energy of `ops` PE edge operations, in joules.
pub fn pe_dynamic_energy(ops: u64, tech: &TechParams) -> f64 {
    ops as f64 * tech.e_pe_op
}

/// Average PE dynamic power over a window of `cycles` cycles, in watts.
/// Zero for an empty window.
pub fn pe_dynamic_power(ops: u64, cycles: u64, tech: &TechParams) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    pe_dynamic_energy(ops, tech) / (cycles as f64 / tech.clock_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_ops() {
        let tech = TechParams::ldpc_160nm();
        assert!(
            (pe_dynamic_energy(200, &tech) / pe_dynamic_energy(100, &tech) - 2.0).abs() < 1e-12
        );
    }

    #[test]
    fn busy_pe_in_watt_range() {
        // An LDPC PE doing ~8k edge ops per 109.3 us block lands around a
        // watt in 160 nm — the band the paper's chips (72-86 C peaks over a
        // 40 C ambient) imply.
        let tech = TechParams::ldpc_160nm();
        let p = pe_dynamic_power(8_000, 54_650, &tech);
        assert!((0.05..5.0).contains(&p), "PE power {p} W implausible");
    }

    #[test]
    fn zero_window_zero_power() {
        let tech = TechParams::ldpc_160nm();
        assert_eq!(pe_dynamic_power(100, 0, &tech), 0.0);
    }
}
