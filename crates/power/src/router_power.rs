//! Router dynamic power from event counts (Orion-style decomposition).

use crate::activity::TileActivity;
use crate::tech::TechParams;

/// Dynamic energy consumed by one router over a window, in joules.
pub fn router_dynamic_energy(a: &TileActivity, tech: &TechParams) -> f64 {
    a.buffer_writes as f64 * tech.e_buffer_write
        + a.buffer_reads as f64 * tech.e_buffer_read
        + a.xbar_traversals as f64 * tech.e_xbar
        + a.arbitrations as f64 * tech.e_arb
        + a.link_flits as f64 * tech.e_link_flit
        + a.bit_transitions as f64 * tech.e_bit_transition
}

/// Average dynamic power of one router over a window of `cycles` cycles, in
/// watts. Zero for an empty window.
pub fn router_dynamic_power(a: &TileActivity, cycles: u64, tech: &TechParams) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = cycles as f64 / tech.clock_hz;
    router_dynamic_energy(a, tech) / seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act() -> TileActivity {
        TileActivity {
            buffer_writes: 1000,
            buffer_reads: 1000,
            xbar_traversals: 1000,
            arbitrations: 1200,
            link_flits: 900,
            bit_transitions: 32_000,
            pe_ops: 0,
        }
    }

    #[test]
    fn energy_is_linear_in_activity() {
        let tech = TechParams::ldpc_160nm();
        let e1 = router_dynamic_energy(&act(), &tech);
        let doubled = act() + act();
        let e2 = router_dynamic_energy(&doubled, &tech);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_scales_inverse_with_window() {
        let tech = TechParams::ldpc_160nm();
        let p1 = router_dynamic_power(&act(), 1000, &tech);
        let p2 = router_dynamic_power(&act(), 2000, &tech);
        assert!((p1 / p2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_events_dominate_arbitration() {
        // Sanity on the decomposition: datapath >> control for wide flits.
        let tech = TechParams::ldpc_160nm();
        assert!(tech.e_buffer_write > 10.0 * tech.e_arb);
    }

    #[test]
    fn plausible_magnitude() {
        // A saturated router (1 flit/cycle on 4 ports) at 500 MHz should
        // burn tens of milliwatts to a few hundred, not watts.
        let tech = TechParams::ldpc_160nm();
        let cycles = 500_000;
        let a = TileActivity {
            buffer_writes: 4 * cycles,
            buffer_reads: 4 * cycles,
            xbar_traversals: 4 * cycles,
            arbitrations: 5 * cycles,
            link_flits: 4 * cycles,
            bit_transitions: 4 * 32 * cycles,
            pe_ops: 0,
        };
        let p = router_dynamic_power(&a, cycles, &tech);
        assert!((0.01..2.0).contains(&p), "router power {p} W implausible");
    }
}
