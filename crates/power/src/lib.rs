//! # hotnoc-power — activity-based power models (160 nm)
//!
//! Substitute for the Synopsys Power Compiler flow of the DATE'05 paper: the
//! paper synthesizes its LDPC chips in a 160 nm standard-cell library,
//! obtains per-unit power with Power Compiler, and drives it with switching
//! rates from the cycle-accurate NoC simulator. This crate computes the same
//! quantity — watts per functional unit — from the simulator's activity
//! counters and an energy-per-event technology characterization
//! ([`tech::TechParams::ldpc_160nm`]).
//!
//! Components:
//!
//! * [`activity`] — neutral per-tile activity records (router events + PE
//!   operations per window),
//! * [`router_power`] — Orion-style router energy (buffers, crossbar,
//!   arbiter, links),
//! * [`pe_power`] — LDPC processing-element compute energy,
//! * [`leakage`] — temperature-dependent static power,
//! * [`trace`] — per-block power traces consumed by `hotnoc-thermal`.
//!
//! ```
//! use hotnoc_power::{tech::TechParams, activity::TileActivity, tile_power};
//!
//! let tech = TechParams::ldpc_160nm();
//! let act = TileActivity {
//!     buffer_writes: 10_000,
//!     buffer_reads: 10_000,
//!     xbar_traversals: 10_000,
//!     arbitrations: 12_000,
//!     link_flits: 9_000,
//!     bit_transitions: 300_000,
//!     pe_ops: 40_000,
//! };
//! let p = tile_power(&act, 54_650, &tech, 70.0);
//! assert!(p.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod leakage;
pub mod pe_power;
pub mod router_power;
pub mod tech;
pub mod trace;

pub use activity::{ActivityFrame, TileActivity};
pub use tech::TechParams;
pub use trace::{PowerBreakdown, PowerTrace};

/// Computes the full power breakdown of one tile over a window of
/// `cycles` cycles at junction temperature `temp_c`.
///
/// This is the top-level entry point combining [`router_power`],
/// [`pe_power`] and [`leakage`].
pub fn tile_power(
    activity: &TileActivity,
    cycles: u64,
    tech: &TechParams,
    temp_c: f64,
) -> PowerBreakdown {
    PowerBreakdown {
        router: router_power::router_dynamic_power(activity, cycles, tech),
        pe: pe_power::pe_dynamic_power(activity.pe_ops, cycles, tech),
        leakage: leakage::leakage_power(tech.tile_area_mm2, temp_c, tech),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tile_consumes_more_than_idle() {
        let tech = TechParams::ldpc_160nm();
        let busy = TileActivity {
            buffer_writes: 50_000,
            buffer_reads: 50_000,
            xbar_traversals: 50_000,
            arbitrations: 50_000,
            link_flits: 45_000,
            bit_transitions: 1_500_000,
            pe_ops: 100_000,
        };
        let idle = TileActivity::default();
        let pb = tile_power(&busy, 54_650, &tech, 70.0);
        let pi = tile_power(&idle, 54_650, &tech, 70.0);
        assert!(pb.total() > pi.total());
        assert!(pi.router == 0.0 && pi.pe == 0.0);
        assert!(pi.leakage > 0.0, "idle tile still leaks");
    }

    #[test]
    fn zero_cycles_gives_zero_dynamic() {
        let tech = TechParams::ldpc_160nm();
        let act = TileActivity {
            pe_ops: 10,
            ..TileActivity::default()
        };
        let p = tile_power(&act, 0, &tech, 50.0);
        assert_eq!(p.pe, 0.0);
        assert_eq!(p.router, 0.0);
    }
}
