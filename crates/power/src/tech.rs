//! Technology characterization: energy per micro-operation.
//!
//! The absolute values below are representative of a 160 nm standard-cell
//! process at 1.8 V / 500 MHz. The co-simulation additionally normalizes the
//! total chip power of each configuration to reproduce the paper's measured
//! base temperatures (DESIGN.md §5), so the *distribution* across events is
//! what matters here.

use serde::{Deserialize, Serialize};

/// Energy-per-event and static-power parameters of a process + cell library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Human-readable name.
    pub name: String,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Nominal clock (Hz).
    pub clock_hz: f64,
    /// Energy per flit written into an input buffer (J).
    pub e_buffer_write: f64,
    /// Energy per flit read from an input buffer (J).
    pub e_buffer_read: f64,
    /// Energy per flit crossing the crossbar (J).
    pub e_xbar: f64,
    /// Energy per switch-allocation decision (J).
    pub e_arb: f64,
    /// Energy per flit driven onto an inter-router link (J).
    pub e_link_flit: f64,
    /// Additional energy per payload bit transition on a link (J).
    pub e_bit_transition: f64,
    /// Energy per LDPC edge operation in a PE (J).
    pub e_pe_op: f64,
    /// Tile area in mm² (paper: 4.36 mm² per functional unit).
    pub tile_area_mm2: f64,
    /// Leakage power density at `leak_t_ref` (W/mm²).
    pub leak_density_ref: f64,
    /// Exponential leakage temperature coefficient (1/K).
    pub leak_temp_coeff: f64,
    /// Leakage reference temperature (°C).
    pub leak_t_ref: f64,
}

impl TechParams {
    /// Parameters for the paper's platform: a 160 nm standard-cell LDPC
    /// decoder NoC with 4.36 mm² tiles at 1.8 V, 500 MHz.
    pub fn ldpc_160nm() -> Self {
        TechParams {
            name: "ldpc-160nm".to_owned(),
            vdd: 1.8,
            clock_hz: 500.0e6,
            // Router energies roughly follow Orion-style scaling for a
            // 64-bit 5-port router in 160 nm.
            e_buffer_write: 1.1e-12 * 64.0,
            e_buffer_read: 0.9e-12 * 64.0,
            e_xbar: 1.4e-12 * 64.0,
            e_arb: 2.0e-12,
            e_link_flit: 0.8e-12 * 64.0,
            e_bit_transition: 0.35e-12,
            // A PE edge operation exercises a serial min/sum datapath plus
            // local SRAM; dominated by memory access in 160 nm.
            e_pe_op: 2.4e-9,
            tile_area_mm2: 4.36,
            leak_density_ref: 0.004,
            leak_temp_coeff: 0.017,
            leak_t_ref: 60.0,
        }
    }

    /// `true` when every energy/area value is positive and finite.
    pub fn is_physical(&self) -> bool {
        [
            self.vdd,
            self.clock_hz,
            self.e_buffer_write,
            self.e_buffer_read,
            self.e_xbar,
            self.e_arb,
            self.e_link_flit,
            self.e_bit_transition,
            self.e_pe_op,
            self.tile_area_mm2,
            self.leak_density_ref,
            self.leak_temp_coeff,
        ]
        .iter()
        .all(|v| v.is_finite() && *v > 0.0)
            && self.leak_t_ref.is_finite()
    }
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams::ldpc_160nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_physical() {
        assert!(TechParams::default().is_physical());
    }

    #[test]
    fn paper_tile_area() {
        assert!((TechParams::ldpc_160nm().tile_area_mm2 - 4.36).abs() < 1e-12);
    }

    #[test]
    fn broken_params_detected() {
        let mut t = TechParams::ldpc_160nm();
        t.e_pe_op = -1.0;
        assert!(!t.is_physical());
        let mut t2 = TechParams::ldpc_160nm();
        t2.clock_hz = f64::NAN;
        assert!(!t2.is_physical());
    }
}
