//! Neutral per-tile activity records.
//!
//! `hotnoc-power` deliberately does not depend on the NoC simulator; the
//! co-simulation layer converts `hotnoc_noc::RouterActivity` snapshots into
//! these records (one per tile per window).

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Switching activity of one tile (router + PE) over one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileActivity {
    /// Flits written into the router's input buffers.
    pub buffer_writes: u64,
    /// Flits read from input buffers.
    pub buffer_reads: u64,
    /// Crossbar traversals.
    pub xbar_traversals: u64,
    /// Switch-allocation decisions.
    pub arbitrations: u64,
    /// Flits driven onto outbound links (all ports).
    pub link_flits: u64,
    /// Payload bit transitions on outbound links.
    pub bit_transitions: u64,
    /// LDPC edge operations executed by the PE.
    pub pe_ops: u64,
}

impl Add for TileActivity {
    type Output = TileActivity;

    fn add(self, r: TileActivity) -> TileActivity {
        TileActivity {
            buffer_writes: self.buffer_writes + r.buffer_writes,
            buffer_reads: self.buffer_reads + r.buffer_reads,
            xbar_traversals: self.xbar_traversals + r.xbar_traversals,
            arbitrations: self.arbitrations + r.arbitrations,
            link_flits: self.link_flits + r.link_flits,
            bit_transitions: self.bit_transitions + r.bit_transitions,
            pe_ops: self.pe_ops + r.pe_ops,
        }
    }
}

impl TileActivity {
    /// Scales all counters by `factor` (used when extrapolating one decoded
    /// block's activity over a longer window). Rounds to nearest.
    pub fn scaled(&self, factor: f64) -> TileActivity {
        let s = |v: u64| ((v as f64) * factor).round().max(0.0) as u64;
        TileActivity {
            buffer_writes: s(self.buffer_writes),
            buffer_reads: s(self.buffer_reads),
            xbar_traversals: s(self.xbar_traversals),
            arbitrations: s(self.arbitrations),
            link_flits: s(self.link_flits),
            bit_transitions: s(self.bit_transitions),
            pe_ops: s(self.pe_ops),
        }
    }

    /// `true` when all counters are zero.
    pub fn is_idle(&self) -> bool {
        *self == TileActivity::default()
    }
}

/// Activity of every tile over one window of `cycles` cycles.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityFrame {
    /// Window length in cycles.
    pub cycles: u64,
    /// Per-tile activity, indexed like mesh node ids (row-major).
    pub tiles: Vec<TileActivity>,
}

impl ActivityFrame {
    /// Creates an idle frame for `n` tiles.
    pub fn idle(n: usize, cycles: u64) -> Self {
        ActivityFrame {
            cycles,
            tiles: vec![TileActivity::default(); n],
        }
    }

    /// Applies a tile permutation: the returned frame has
    /// `out[perm[i]] = self[i]` — i.e. the activity that was at tile `i`
    /// moves to tile `perm[i]`. This is how migration remaps the PE-compute
    /// part of the power map.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..tiles.len()`.
    pub fn permuted(&self, perm: &[usize]) -> ActivityFrame {
        assert_eq!(perm.len(), self.tiles.len(), "permutation length mismatch");
        let mut out = vec![TileActivity::default(); self.tiles.len()];
        let mut seen = vec![false; self.tiles.len()];
        for (i, &p) in perm.iter().enumerate() {
            assert!(p < out.len() && !seen[p], "not a permutation");
            seen[p] = true;
            out[p] = self.tiles[i];
        }
        ActivityFrame {
            cycles: self.cycles,
            tiles: out,
        }
    }

    /// Sums the activity over all tiles.
    pub fn total(&self) -> TileActivity {
        self.tiles
            .iter()
            .fold(TileActivity::default(), |acc, t| acc + *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(n: u64) -> TileActivity {
        TileActivity {
            buffer_writes: n,
            buffer_reads: n,
            xbar_traversals: n,
            arbitrations: n,
            link_flits: n,
            bit_transitions: n,
            pe_ops: n,
        }
    }

    #[test]
    fn add_and_scale() {
        let a = act(10) + act(5);
        assert_eq!(a.pe_ops, 15);
        let s = a.scaled(2.0);
        assert_eq!(s.buffer_writes, 30);
        let down = a.scaled(0.5);
        assert_eq!(down.pe_ops, 8); // 7.5 rounds to 8
    }

    #[test]
    fn permute_moves_activity() {
        let mut f = ActivityFrame::idle(3, 100);
        f.tiles[0] = act(7);
        let p = f.permuted(&[2, 0, 1]);
        assert!(p.tiles[2] == act(7));
        assert!(p.tiles[0].is_idle());
        assert_eq!(p.cycles, 100);
    }

    #[test]
    fn total_sums() {
        let mut f = ActivityFrame::idle(2, 10);
        f.tiles[0] = act(1);
        f.tiles[1] = act(2);
        assert_eq!(f.total().pe_ops, 3);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_panics() {
        let f = ActivityFrame::idle(2, 10);
        let _ = f.permuted(&[0, 0]);
    }
}
