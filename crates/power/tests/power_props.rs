//! Property tests for the power models: linearity in activity, inverse
//! scaling with window length, leakage monotonicity in temperature.

use hotnoc_power::{activity::TileActivity, leakage, pe_power, router_power, tech::TechParams};
use proptest::prelude::*;

fn activity_strategy() -> impl Strategy<Value = TileActivity> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..10_000_000,
        0u64..1_000_000,
    )
        .prop_map(|(bw, br, xb, arb, lf, bt, ops)| TileActivity {
            buffer_writes: bw,
            buffer_reads: br,
            xbar_traversals: xb,
            arbitrations: arb,
            link_flits: lf,
            bit_transitions: bt,
            pe_ops: ops,
        })
}

proptest! {
    #[test]
    fn router_energy_additive(a in activity_strategy(), b in activity_strategy()) {
        let tech = TechParams::ldpc_160nm();
        let ea = router_power::router_dynamic_energy(&a, &tech);
        let eb = router_power::router_dynamic_energy(&b, &tech);
        let eab = router_power::router_dynamic_energy(&(a + b), &tech);
        prop_assert!((eab - (ea + eb)).abs() < 1e-9 * (1.0 + eab.abs()));
    }

    #[test]
    fn power_halves_when_window_doubles(
        a in activity_strategy(),
        cycles in 1u64..10_000_000,
    ) {
        let tech = TechParams::ldpc_160nm();
        let p1 = router_power::router_dynamic_power(&a, cycles, &tech);
        let p2 = router_power::router_dynamic_power(&a, cycles * 2, &tech);
        prop_assert!((p1 - 2.0 * p2).abs() < 1e-9 * (1.0 + p1.abs()));
    }

    #[test]
    fn pe_power_linear_in_ops(ops in 0u64..10_000_000, cycles in 1u64..10_000_000) {
        let tech = TechParams::ldpc_160nm();
        let p1 = pe_power::pe_dynamic_power(ops, cycles, &tech);
        let p2 = pe_power::pe_dynamic_power(ops * 2, cycles, &tech);
        prop_assert!((p2 - 2.0 * p1).abs() < 1e-9 * (1.0 + p2.abs()));
    }

    #[test]
    fn leakage_monotone_in_temperature(
        t1 in -20.0f64..200.0,
        dt in 0.1f64..100.0,
        area in 0.1f64..50.0,
    ) {
        let tech = TechParams::ldpc_160nm();
        let cold = leakage::leakage_power(area, t1, &tech);
        let hot = leakage::leakage_power(area, t1 + dt, &tech);
        prop_assert!(hot > cold);
        prop_assert!(cold > 0.0);
    }

    #[test]
    fn scaled_activity_scales_energy(a in activity_strategy(), factor in 1u32..16) {
        let tech = TechParams::ldpc_160nm();
        let scaled = a.scaled(factor as f64);
        let e1 = router_power::router_dynamic_energy(&a, &tech);
        let e2 = router_power::router_dynamic_energy(&scaled, &tech);
        // Integer factors scale the counters exactly.
        prop_assert!((e2 - factor as f64 * e1).abs() < 1e-12 + 1e-9 * e2.abs());
    }
}
