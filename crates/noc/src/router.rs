//! Input-buffered wormhole router with virtual channels.
//!
//! The router keeps per-input-port, per-virtual-channel FIFO buffers. A head
//! flit at the front of a VC triggers route computation; switch allocation is
//! round-robin per output port; credits flow back to the upstream router as
//! buffer slots free up. This is the classical 4-stage VC router collapsed
//! into a single-cycle model with a separate link-traversal stage, which
//! preserves throughput and event counts (what the power model needs) while
//! staying fast enough for multi-million-cycle co-simulation.

use crate::config::NocConfig;
use crate::flit::{Flit, PacketId};
use crate::stats::RouterActivity;
use crate::topology::{Coord, Direction};
use std::collections::VecDeque;

/// State of one virtual channel at an input port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum VcState {
    /// No packet holds the channel.
    Idle,
    /// A packet's route is held until its tail flit leaves.
    Active {
        /// Allocated output direction.
        out_dir: Direction,
        /// Flits of the packet that still have to traverse this router.
        flits_left: u32,
        /// The packet holding the channel (needed by fault teardown to
        /// identify streams routed into a newly failed component).
        packet: PacketId,
    },
}

/// One virtual channel: a FIFO of flits plus wormhole state.
#[derive(Debug, Clone)]
pub(crate) struct InputVc {
    pub buf: VecDeque<Flit>,
    pub state: VcState,
}

impl InputVc {
    fn new(depth: u32) -> Self {
        InputVc {
            buf: VecDeque::with_capacity(depth as usize),
            state: VcState::Idle,
        }
    }
}

/// An input port: one [`InputVc`] per virtual channel.
#[derive(Debug, Clone)]
pub(crate) struct InputPort {
    pub vcs: Vec<InputVc>,
}

/// An output port: downstream credit counters and the round-robin pointer
/// used by switch allocation.
#[derive(Debug, Clone)]
pub(crate) struct OutputPort {
    /// Credits per downstream virtual channel.
    pub credits: Vec<u32>,
    /// Wormhole ownership: which (input port, vc) currently holds each
    /// outbound virtual channel. `None` means the channel is free and only a
    /// head flit may claim it; ownership is released when the tail passes.
    pub vc_owner: Vec<Option<(u8, u8)>>,
    /// Round-robin arbitration pointer over (input port, vc) pairs.
    pub rr_ptr: usize,
    /// Credits in flight back to this port: (vc, cycle at which they land).
    pub credit_queue: VecDeque<(u8, u64)>,
    /// Last payload word sent, for bit-transition counting.
    pub last_payload: u64,
}

/// A mesh router.
///
/// Routers are owned and stepped by [`crate::Network`]; the public surface is
/// the activity counters and the coordinate.
#[derive(Debug, Clone)]
pub struct Router {
    coord: Coord,
    pub(crate) inputs: Vec<InputPort>,
    pub(crate) outputs: Vec<OutputPort>,
    pub(crate) activity: RouterActivity,
}

impl Router {
    /// Creates an idle router at `coord`.
    pub(crate) fn new(coord: Coord, cfg: &NocConfig) -> Self {
        let inputs = (0..5)
            .map(|_| InputPort {
                vcs: (0..cfg.num_vcs)
                    .map(|_| InputVc::new(cfg.buffer_depth))
                    .collect(),
            })
            .collect();
        let outputs = (0..5)
            .map(|_| OutputPort {
                credits: vec![cfg.buffer_depth; cfg.num_vcs as usize],
                vc_owner: vec![None; cfg.num_vcs as usize],
                rr_ptr: 0,
                credit_queue: VecDeque::new(),
                last_payload: 0,
            })
            .collect();
        Router {
            coord,
            inputs,
            outputs,
            activity: RouterActivity::default(),
        }
    }

    /// The router's mesh coordinate.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Cumulative switching activity since construction (or the last
    /// [`Router::reset_activity`]).
    pub fn activity(&self) -> RouterActivity {
        self.activity
    }

    /// Clears the activity counters.
    pub fn reset_activity(&mut self) {
        self.activity = RouterActivity::default();
    }

    /// Number of flits currently buffered in this router.
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|vc| vc.buf.len())
            .sum()
    }

    /// Accepts a flit into an input buffer. Flow control must guarantee
    /// space; a full buffer therefore indicates a protocol violation.
    ///
    /// # Panics
    ///
    /// Panics if the target buffer is full (credit protocol violated) or the
    /// VC index is out of range.
    pub(crate) fn accept_flit(&mut self, port: Direction, flit: Flit, buffer_depth: u32) {
        let vc = &mut self.inputs[port.index()].vcs[flit.vc as usize];
        assert!(
            vc.buf.len() < buffer_depth as usize,
            "credit protocol violation: buffer overflow at {} port {}",
            self.coord,
            port
        );
        vc.buf.push_back(flit);
        self.activity.buffer_writes += 1;
    }

    /// Processes landed credits for the current cycle, returning how many
    /// landed (the network's work tracker retires that many units).
    pub(crate) fn land_credits(&mut self, now: u64) -> usize {
        let mut landed = 0;
        for out in &mut self.outputs {
            while let Some(&(vc, at)) = out.credit_queue.front() {
                if at > now {
                    break;
                }
                out.credit_queue.pop_front();
                out.credits[vc as usize] += 1;
                landed += 1;
            }
        }
        landed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{packetize, Packet, PacketClass};
    use crate::topology::NodeId;

    fn cfg() -> NocConfig {
        NocConfig::default()
    }

    fn flit() -> Flit {
        let p = Packet::new(1, NodeId::new(0), NodeId::new(3), PacketClass::Data, 1);
        packetize(&p, cfg().num_vcs, 0)[0]
    }

    #[test]
    fn new_router_is_idle() {
        let r = Router::new(Coord::new(1, 2), &cfg());
        assert_eq!(r.coord(), Coord::new(1, 2));
        assert!(r.activity().is_idle());
        assert_eq!(r.buffered_flits(), 0);
    }

    #[test]
    fn accept_counts_buffer_write() {
        let mut r = Router::new(Coord::new(0, 0), &cfg());
        r.accept_flit(Direction::West, flit(), cfg().buffer_depth);
        assert_eq!(r.activity().buffer_writes, 1);
        assert_eq!(r.buffered_flits(), 1);
    }

    #[test]
    #[should_panic(expected = "credit protocol violation")]
    fn overflow_panics() {
        let mut r = Router::new(Coord::new(0, 0), &cfg());
        for _ in 0..=cfg().buffer_depth {
            r.accept_flit(Direction::West, flit(), cfg().buffer_depth);
        }
    }

    #[test]
    fn credits_land_in_order() {
        let mut r = Router::new(Coord::new(0, 0), &cfg());
        let before = r.outputs[0].credits[0];
        r.outputs[0].credits[0] = 0;
        r.outputs[0].credit_queue.push_back((0, 5));
        r.outputs[0].credit_queue.push_back((0, 7));
        r.land_credits(4);
        assert_eq!(r.outputs[0].credits[0], 0);
        r.land_credits(5);
        assert_eq!(r.outputs[0].credits[0], 1);
        r.land_credits(10);
        assert_eq!(r.outputs[0].credits[0], 2);
        assert!(before >= 1);
    }

    #[test]
    fn reset_activity_clears() {
        let mut r = Router::new(Coord::new(0, 0), &cfg());
        r.accept_flit(Direction::North, flit(), cfg().buffer_depth);
        assert!(!r.activity().is_idle());
        r.reset_activity();
        assert!(r.activity().is_idle());
    }
}
