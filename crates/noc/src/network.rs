//! The cycle-accurate network: routers, links and NICs stepped in lockstep.

use crate::config::NocConfig;
use crate::error::NocError;
use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::flit::{Flit, Packet, PacketClass, PacketId};
use crate::io_interface::AddressMap;
use crate::nic::Nic;
use crate::router::{Router, VcState};
use crate::routing::{Routing, RoutingKind};
use crate::stats::{ActivitySnapshot, NetworkStats};
use crate::topology::{Coord, Direction, Mesh, NodeId};
use hotnoc_obs::event::{CONGESTION_WINDOW, DETOUR_BURST_MIN};
use hotnoc_obs::{TraceEvent, TraceSink};
use std::collections::{HashSet, VecDeque};

/// A packet delivery record handed to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredPacket {
    /// Id of the delivered packet.
    pub packet_id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Traffic class.
    pub class: PacketClass,
    /// Cycle the packet was injected.
    pub inject_cycle: u64,
    /// Cycle the tail flit was ejected.
    pub eject_cycle: u64,
}

impl DeliveredPacket {
    /// End-to-end latency in cycles (inclusive of the ejection cycle).
    pub fn latency(&self) -> u64 {
        self.eject_cycle - self.inject_cycle + 1
    }
}

/// Credit returned to an upstream router, queued during a cycle and applied
/// after all routers have been stepped.
struct CreditEvent {
    router: usize,
    out_port: usize,
    vc: u8,
    at: u64,
}

/// The installed fault schedule plus the live/dead view it drives. Boxed
/// behind an `Option` so healthy networks pay one pointer of overhead.
struct FaultDriver {
    /// Scheduled events, sorted by cycle (stable, so same-cycle events
    /// apply in plan order).
    events: Vec<crate::fault::FaultEvent>,
    /// Index of the first event not yet applied.
    next: usize,
    /// Current enable bits and detour tables.
    state: FaultState,
}

/// The simulated network-on-chip.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
///
/// # Performance architecture
///
/// `step` cost tracks *occupancy*, not topology size: a per-router work
/// counter (buffered flits + outbound link flits + queued NIC flits +
/// credits in flight) feeds a sorted dirty worklist, and only routers with
/// pending work are visited each cycle. A fully idle mesh steps in O(1).
/// The router-to-router adjacency is precomputed at construction
/// (`neighbors`), so the hot loop never re-derives coordinates, and switch
/// allocation walks a bitmask of occupied input VCs instead of scanning
/// every `(port, vc)` slot.
///
/// The allocation sweep itself (route computation + switch allocation +
/// traversal) is a two-phase compute/commit design: the dirty worklist is
/// partitioned into contiguous router-id stripes, each stripe computes its
/// routers' route/VC/switch decisions and commits the effects it owns
/// (buffer pops, outbound-link pushes, NIC ejections), and every effect
/// that crosses a stripe boundary — credit events to upstream routers and
/// the network-global counters — is buffered per stripe and committed in
/// stripe (= ascending router-id) order afterwards. Stripes share no
/// mutable state, so they run in parallel on the [`minipool`] pool when
/// more than [`Network::threads`] == 1 workers are configured
/// (`HOTNOC_THREADS`, default: available parallelism) and the worklist is
/// large enough to amortize dispatch.
///
/// All of this is behaviourally invisible: the cycle-for-cycle semantics
/// are identical to a dense serial 0..n sweep at every thread count
/// (guarded by the golden-determinism suite and the parallel-equivalence
/// property tests).
pub struct Network {
    cfg: NocConfig,
    mesh: Mesh,
    routing: RoutingKind,
    routers: Vec<Router>,
    /// Outgoing link queue per router per mesh direction: flits in flight
    /// with their arrival cycle at the downstream router.
    links: Vec<[VecDeque<(Flit, u64)>; 4]>,
    nics: Vec<Nic>,
    delivered: Vec<Vec<DeliveredPacket>>,
    cycle: u64,
    stats: NetworkStats,
    address_map: Option<Box<dyn AddressMap>>,
    /// Downstream router index per mesh direction (None at mesh edges);
    /// the reverse direction of entry `d` is `Direction::MESH[d].opposite()`.
    neighbors: Vec<[Option<u32>; 4]>,
    /// Per-router pending-work units: buffered flits + flits on outbound
    /// links + flits queued in the local NIC + credits in flight to it.
    work: Vec<u32>,
    /// Flits buffered inside each router (phase-4 skip test).
    buffered: Vec<u32>,
    /// Ascending list of routers with `work > 0`, processed each cycle.
    worklist: Vec<u32>,
    /// Routers activated since the worklist was last merged.
    incoming: Vec<u32>,
    /// Whether a router sits in `worklist` or `incoming` already.
    queued: Vec<bool>,
    /// Scratch buffer for worklist merging (reused across cycles).
    scratch: Vec<u32>,
    /// Worker count for the allocation sweep (1 = serial), resolved from
    /// `HOTNOC_THREADS` (default: available parallelism) at construction.
    threads: usize,
    /// Minimum dirty-router count before the sweep is striped across
    /// threads; below it, dispatch overhead would dominate.
    par_threshold: usize,
    /// Reused per-stripe sweep outputs (index = stripe).
    stripe_outs: Vec<SweepOut>,
    /// Network-wide occupancy totals, kept for O(1) [`Network::in_flight`].
    total_buffered: u64,
    total_on_links: u64,
    total_nic_queued: u64,
    /// Runtime fault schedule and live/dead fabric view; `None` until a
    /// [`FaultPlan`] is installed.
    faults: Option<Box<FaultDriver>>,
    /// Deterministic trace recording; `None` (the default) keeps every hot
    /// path on a single never-taken branch.
    trace: Option<Box<TraceState>>,
}

/// Trace recording state, live only while a sink is installed (see
/// [`Network::set_trace_sink`]). All bookkeeping here is a pure function
/// of simulation state, so recorded events are byte-deterministic at any
/// thread count.
struct TraceState {
    sink: Box<dyn TraceSink>,
    /// Fault epochs committed so far (ordinal of the next `FaultEpoch`).
    epochs: u64,
    /// First cycle of the open congestion window.
    window_start: u64,
    /// Peak single-router buffered-flit count in the open window.
    peak: u64,
    /// Cycle the peak was first observed.
    peak_cycle: u64,
    /// Router (node index) holding the peak; lowest id on ties.
    peak_router: u32,
}

/// Adds `amount` work units to router `r`, enrolling it in the dirty list if
/// it was idle. Free function so callers can hold disjoint field borrows.
#[inline]
fn add_work(work: &mut [u32], queued: &mut [bool], incoming: &mut Vec<u32>, r: usize, amount: u32) {
    work[r] += amount;
    if !queued[r] {
        queued[r] = true;
        incoming.push(r as u32);
    }
}

/// Dirty-router count below which the sweep always runs serially.
const DEFAULT_PAR_THRESHOLD: usize = 64;

/// Immutable per-cycle context shared by every stripe of the allocation
/// sweep.
struct SweepCtx<'a> {
    mesh: Mesh,
    routing: RoutingKind,
    now: u64,
    link_latency: u64,
    num_vcs: usize,
    /// `5 * num_vcs`, the round-robin arbitration slot count.
    slots: usize,
    buffer_depth: u32,
    neighbors: &'a [[Option<u32>; 4]],
    /// Set only while the fabric is degraded; route computation then uses
    /// the surround-routing detour tables instead of `routing`.
    faults: Option<&'a FaultState>,
    /// Whether a trace sink is installed; gates the (cheap) per-router
    /// congestion sampling inside the sweep.
    trace: bool,
}

/// One stripe of the allocation sweep: a contiguous router-id range
/// `[base, base + routers.len())` with exclusive access to that range's
/// per-router state, plus the dirty router ids (`ids`) to visit inside it.
struct Stripe<'a> {
    base: usize,
    ids: &'a [u32],
    routers: &'a mut [Router],
    links: &'a mut [[VecDeque<(Flit, u64)>; 4]],
    nics: &'a mut [Nic],
    delivered: &'a mut [Vec<DeliveredPacket>],
    buffered: &'a mut [u32],
    work: &'a mut [u32],
}

/// Cross-stripe and network-global effects of one stripe's sweep, buffered
/// during the (possibly parallel) compute phase and committed serially in
/// stripe order, which keeps the cycle semantics identical to the dense
/// serial sweep.
#[derive(Default)]
struct SweepOut {
    /// Credits owed to upstream routers (which may sit in another stripe).
    credits: Vec<CreditEvent>,
    /// Delta to fold into the network-wide statistics.
    stats: NetworkStats,
    /// Flits popped out of input buffers (`total_buffered` decrement).
    flits_popped: u64,
    /// Flits pushed onto outbound links (`total_on_links` increment).
    flits_to_links: u64,
    /// Pre-sweep (phases 1–3): link arrivals whose downstream router lies
    /// outside the stripe, as `(router, source direction index, flit)`.
    arrivals: Vec<(u32, u8, Flit)>,
    /// Pre-sweep: in-stripe routers handed new work, to enroll in the
    /// dirty list at commit (the stripe cannot touch `queued`/`incoming`).
    activated: Vec<u32>,
    /// Pre-sweep: flits that finished link traversal (`total_on_links`
    /// decrement).
    flits_arrived: u64,
    /// Pre-sweep: flits landed in input buffers — link arrivals applied
    /// in-stripe plus NIC injections (`total_buffered` increment).
    flits_buffered: u64,
    /// Pre-sweep: flits moved from NIC queues to the local input port
    /// (`total_nic_queued` decrement).
    nic_injected: u64,
    /// Tracing only: peak buffered-flit count of any single router this
    /// stripe visited this cycle (0 when no sink is installed).
    peak_occ: u64,
    /// Tracing only: the router holding `peak_occ` (first = lowest id,
    /// since stripes visit their ids in ascending order).
    peak_router: u32,
}

impl SweepOut {
    fn reset(&mut self) {
        self.credits.clear();
        self.stats = NetworkStats::default();
        self.flits_popped = 0;
        self.flits_to_links = 0;
        self.arrivals.clear();
        self.activated.clear();
        self.flits_arrived = 0;
        self.flits_buffered = 0;
        self.nic_injected = 0;
        self.peak_occ = 0;
        self.peak_router = 0;
    }
}

/// Splits `s` into `cuts.len() + 1` disjoint sub-slices at the given
/// absolute element indices (strictly ascending, each `< s.len()`).
fn split_at_cuts<'a, T>(mut s: &'a mut [T], cuts: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0usize;
    for &c in cuts {
        let (head, tail) = s.split_at_mut(c - prev);
        out.push(head);
        s = tail;
        prev = c;
    }
    out.push(s);
    out
}

/// Step phases 1–3 (credit landing, link arrivals, NIC injection) for every
/// dirty router in one stripe. The three phases fuse into one pass per
/// router because they touch disjoint state: phase 1 only the router's
/// output credit queues, phase 2 only its outbound link queues and the
/// downstream routers' mesh input ports, phase 3 only its own NIC and Local
/// input port (which phase 2 never feeds). Arrivals whose downstream router
/// lies in this stripe are applied directly; the rest are deferred into
/// `out.arrivals` and committed in ascending stripe order, which reproduces
/// the dense serial loop's arrival order per input port (each port is fed
/// by exactly one upstream link queue).
fn pre_sweep_stripe(ctx: &SweepCtx<'_>, stripe: &mut Stripe<'_>, out: &mut SweepOut) {
    let lo = stripe.base;
    let hi = stripe.base + stripe.routers.len();
    for &r_global in stripe.ids {
        let r_global = r_global as usize;
        let i = r_global - lo;

        // 1. Land credits that were in flight back to this router.
        let landed = stripe.routers[i].land_credits(ctx.now);
        stripe.work[i] -= landed as u32;

        // 2. Link arrivals: move flits that completed link traversal into
        //    the downstream router's input buffers.
        for d in 0..4 {
            let Some(nb_id) = ctx.neighbors[r_global][d] else {
                debug_assert!(stripe.links[i][d].is_empty());
                continue;
            };
            let nb = nb_id as usize;
            let dir = Direction::MESH[d];
            while let Some(&(flit, at)) = stripe.links[i][d].front() {
                if at > ctx.now {
                    break;
                }
                stripe.links[i][d].pop_front();
                stripe.work[i] -= 1;
                out.flits_arrived += 1;
                if (lo..hi).contains(&nb) {
                    stripe.routers[nb - lo].accept_flit(dir.opposite(), flit, ctx.buffer_depth);
                    stripe.buffered[nb - lo] += 1;
                    stripe.work[nb - lo] += 1;
                    out.flits_buffered += 1;
                    out.activated.push(nb_id);
                } else {
                    out.arrivals.push((nb_id, d as u8, flit));
                }
            }
        }

        // 3. NIC injection: one flit per node per cycle into the local
        //    port, space permitting. Phase 2 only ever feeds mesh ports, so
        //    the Local-port space check is commit-order independent.
        let nic = &mut stripe.nics[i];
        let Some(&flit) = nic.peek_inject() else {
            continue;
        };
        let router = &mut stripe.routers[i];
        let local = Direction::Local.index();
        if router.inputs[local].vcs[flit.vc as usize].buf.len() < ctx.buffer_depth as usize {
            nic.take_inject();
            router.accept_flit(Direction::Local, flit, ctx.buffer_depth);
            // One work unit moves from the NIC queue to the buffers.
            out.nic_injected += 1;
            stripe.buffered[i] += 1;
            out.flits_buffered += 1;
        }
    }
}

/// Route computation + switch allocation + traversal for every dirty router
/// in one stripe (the compute phase of the two-phase sweep). Touches only
/// state the stripe owns; every effect that crosses a stripe boundary is
/// deferred into `out` for the ordered commit phase.
fn sweep_stripe(ctx: &SweepCtx<'_>, stripe: &mut Stripe<'_>, out: &mut SweepOut) {
    let num_vcs = ctx.num_vcs;
    for &r_global in stripe.ids {
        let r_global = r_global as usize;
        let i = r_global - stripe.base;
        if stripe.buffered[i] == 0 {
            continue;
        }
        if ctx.trace && stripe.buffered[i] as u64 > out.peak_occ {
            out.peak_occ = stripe.buffered[i] as u64;
            out.peak_router = r_global as u32;
        }
        let coord = ctx.mesh.coord(NodeId::new(r_global as u16));
        let router = &mut stripe.routers[i];

        // Route computation for head flits at the front of idle VCs, plus
        // the occupancy mask switch allocation walks: bit
        // `port * num_vcs + vc` is set iff that input VC is Active with at
        // least one buffered flit (the only slots that can ever win
        // arbitration).
        let mut occupied: u64 = 0;
        for port in 0..5 {
            for vc in 0..num_vcs {
                let ivc = &mut router.inputs[port].vcs[vc];
                if matches!(ivc.state, VcState::Idle) {
                    let Some(front) = ivc.buf.front() else {
                        continue;
                    };
                    if front.is_head() {
                        let (dst_id, len, packet, down) =
                            (front.dst, front.len, front.packet, front.down_phase);
                        let dst = ctx.mesh.coord(dst_id);
                        let out_dir = match ctx.faults {
                            // Degraded fabric: surround routing. The detour
                            // table is total over live (position, dst) pairs
                            // because unroutable packets are purged at fault
                            // application, before any sweep runs.
                            Some(fs) => {
                                let (dir, now_down) = fs
                                    .next_hop(r_global, dst_id.index(), down)
                                    .expect("unroutable packets are purged at fault events");
                                if now_down != down {
                                    ivc.buf.front_mut().expect("checked above").down_phase =
                                        now_down;
                                }
                                if dir != ctx.routing.next_hop(coord, dst) {
                                    out.stats.detour_hops += 1;
                                }
                                dir
                            }
                            None => ctx.routing.next_hop(coord, dst),
                        };
                        ivc.state = VcState::Active {
                            out_dir,
                            flits_left: len,
                            packet,
                        };
                        router.activity.routes_computed += 1;
                    } else {
                        continue;
                    }
                } else if ivc.buf.is_empty() {
                    continue;
                }
                occupied |= 1 << (port * num_vcs + vc);
            }
        }
        if occupied == 0 {
            continue;
        }

        // Switch allocation: at most one flit per output port and one per
        // input port each cycle, round-robin among requesters. The two
        // masked passes visit exactly the occupied slots the dense scan
        // would, in the same rotated order.
        let mut input_used = [false; 5];
        for out_dir in Direction::ALL {
            let d = out_dir.index();
            let start = router.outputs[d].rr_ptr % ctx.slots;
            let mut winner: Option<(usize, usize)> = None;
            let above = occupied & (!0u64 << start);
            let below = occupied & !(!0u64 << start);
            'scan: for half in [above, below] {
                let mut m = half;
                while m != 0 {
                    let slot = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (port, vc) = (slot / num_vcs, slot % num_vcs);
                    if input_used[port] {
                        continue;
                    }
                    let ivc = &router.inputs[port].vcs[vc];
                    let VcState::Active { out_dir: od, .. } = ivc.state else {
                        unreachable!("masked slot must be active")
                    };
                    if od != out_dir {
                        continue;
                    }
                    // Wormhole VC allocation: only the owning input VC may
                    // send on an allocated outbound channel, and a free
                    // channel can only be claimed by a head flit.
                    let front = ivc.buf.front().expect("masked slot is non-empty");
                    match router.outputs[d].vc_owner[vc] {
                        None => {
                            if !front.is_head() {
                                continue;
                            }
                        }
                        Some(owner) => {
                            if owner != (port as u8, vc as u8) {
                                continue;
                            }
                        }
                    }
                    // Body/tail flits may only move while credits (or the
                    // ejection port) allow.
                    if out_dir != Direction::Local && router.outputs[d].credits[vc] == 0 {
                        continue;
                    }
                    winner = Some((port, vc));
                    break 'scan;
                }
            }
            let Some((port, vc)) = winner else { continue };
            input_used[port] = true;
            router.outputs[d].rr_ptr = (port * num_vcs + vc + 1) % ctx.slots;
            router.activity.arbitrations += 1;

            let ivc = &mut router.inputs[port].vcs[vc];
            let flit = ivc.buf.pop_front().expect("winner has a flit");
            stripe.buffered[i] -= 1;
            out.flits_popped += 1;
            stripe.work[i] -= 1;
            // Acquire/release the outbound wormhole channel.
            router.outputs[d].vc_owner[vc] = if flit.is_tail() {
                None
            } else if flit.is_head() {
                Some((port as u8, vc as u8))
            } else {
                router.outputs[d].vc_owner[vc]
            };
            let ivc = &mut router.inputs[port].vcs[vc];
            match &mut ivc.state {
                VcState::Active { flits_left, .. } => {
                    *flits_left -= 1;
                    if *flits_left == 0 {
                        ivc.state = VcState::Idle;
                    }
                }
                VcState::Idle => unreachable!("winner VC must be active"),
            }
            let drained = ivc.buf.is_empty() || matches!(ivc.state, VcState::Idle);
            if drained {
                occupied &= !(1 << (port * num_vcs + vc));
            }
            router.activity.buffer_reads += 1;
            router.activity.xbar_traversals += 1;
            let out_port = &mut router.outputs[d];
            router.activity.bit_transitions +=
                (out_port.last_payload ^ flit.payload).count_ones() as u64;
            out_port.last_payload = flit.payload;
            router.activity.link_flits[d] += 1;

            // Return a credit to whoever fed this input buffer. The
            // upstream router may live in another stripe, so the event is
            // deferred to the ordered commit.
            if port != Direction::Local.index() {
                let in_dir = Direction::ALL[port];
                let upstream_id = ctx.neighbors[r_global][in_dir.index()]
                    .expect("flit arrived from a mesh neighbor")
                    as usize;
                out.credits.push(CreditEvent {
                    router: upstream_id,
                    out_port: in_dir.opposite().index(),
                    vc: flit.vc,
                    at: ctx.now + 1,
                });
            }

            if out_dir == Direction::Local {
                // Ejection: hand to the NIC; completed packets go to the
                // application pickup queue.
                let nic = &mut stripe.nics[i];
                if let Some((packet, at)) = nic.eject(flit, ctx.now) {
                    let record = DeliveredPacket {
                        packet_id: packet.id,
                        src: packet.src,
                        dst: packet.dst,
                        class: packet.class,
                        inject_cycle: flit.inject_cycle,
                        eject_cycle: at,
                    };
                    out.stats.packets_delivered += 1;
                    let lat = record.latency();
                    out.stats.total_packet_latency += lat;
                    out.stats.max_packet_latency = out.stats.max_packet_latency.max(lat);
                    out.stats.latency_histogram.record(lat);
                    stripe.delivered[i].push(record);
                }
                out.stats.flits_ejected += 1;
            } else {
                router.outputs[d].credits[vc] -= 1;
                stripe.links[i][d].push_back((flit, ctx.now + ctx.link_latency));
                out.flits_to_links += 1;
                stripe.work[i] += 1;
                out.stats.flit_hops += 1;
            }
        }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("mesh", &self.mesh)
            .field("cycle", &self.cycle)
            .field("in_flight", &self.in_flight())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Creates an idle network over `mesh` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NocConfig::validate`]; use
    /// [`Network::try_new`] for fallible construction.
    pub fn new(mesh: Mesh, cfg: NocConfig) -> Self {
        Network::try_new(mesh, cfg, RoutingKind::Xy).expect("invalid NocConfig")
    }

    /// Fallible constructor with an explicit routing algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidConfig`] if the configuration is invalid.
    pub fn try_new(mesh: Mesh, cfg: NocConfig, routing: RoutingKind) -> Result<Self, NocError> {
        cfg.validate()?;
        let n = mesh.len();
        let routers = mesh.iter_coords().map(|c| Router::new(c, &cfg)).collect();
        let neighbors = mesh
            .iter_coords()
            .map(|c| {
                std::array::from_fn(|d| {
                    mesh.neighbor(c, Direction::MESH[d])
                        .map(|nb| mesh.node_id(nb).expect("neighbor inside mesh").index() as u32)
                })
            })
            .collect();
        Ok(Network {
            cfg,
            mesh,
            routing,
            routers,
            links: (0..n)
                .map(|_| std::array::from_fn(|_| VecDeque::new()))
                .collect(),
            nics: (0..n).map(|_| Nic::default()).collect(),
            delivered: (0..n).map(|_| Vec::new()).collect(),
            cycle: 0,
            stats: NetworkStats::default(),
            address_map: None,
            neighbors,
            work: vec![0; n],
            buffered: vec![0; n],
            worklist: Vec::new(),
            incoming: Vec::new(),
            queued: vec![false; n],
            scratch: Vec::new(),
            threads: minipool::configured_threads(),
            par_threshold: DEFAULT_PAR_THRESHOLD,
            stripe_outs: Vec::new(),
            total_buffered: 0,
            total_on_links: 0,
            total_nic_queued: 0,
            faults: None,
            trace: None,
        })
    }

    /// The mesh this network simulates.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The configuration in effect.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Installs the I/O-boundary address map used by
    /// [`Network::inject_external`] (§2.3 of the paper). Passing the map by
    /// box allows the reconfiguration controller to own a shared handle.
    pub fn set_address_map(&mut self, map: Box<dyn AddressMap>) {
        self.address_map = Some(map);
    }

    /// Removes the I/O address map (reverting to identity behaviour).
    pub fn clear_address_map(&mut self) -> Option<Box<dyn AddressMap>> {
        self.address_map.take()
    }

    /// Injects a packet at its source NIC.
    ///
    /// # Errors
    ///
    /// * [`NocError::EmptyPacket`] if `len_flits == 0`.
    /// * [`NocError::CoordOutOfBounds`] if src or dst are outside the mesh.
    pub fn inject(&mut self, packet: Packet) -> Result<(), NocError> {
        if packet.len_flits == 0 {
            return Err(NocError::EmptyPacket);
        }
        for node in [packet.src, packet.dst] {
            if node.index() >= self.mesh.len() {
                return Err(NocError::CoordOutOfBounds {
                    coord: Coord::new(u8::MAX, u8::MAX),
                    width: self.mesh.width() as u8,
                    height: self.mesh.height() as u8,
                });
            }
        }
        // On a degraded fabric, packets whose endpoints are dead or mutually
        // unreachable are dropped at the source NIC: they count as injected
        // *and* dropped so flit conservation holds, and the caller's traffic
        // schedule is unaffected.
        if let Some(d) = &self.faults {
            if d.state.active() {
                let (src, dst) = (packet.src.index(), packet.dst.index());
                if !d.state.router_enabled(src)
                    || !d.state.router_enabled(dst)
                    || !d.state.reachable(src, dst)
                {
                    self.stats.packets_injected += 1;
                    self.stats.flits_injected += packet.len_flits as u64;
                    self.stats.packets_dropped += 1;
                    self.stats.flits_dropped += packet.len_flits as u64;
                    if let Some(t) = &mut self.trace {
                        let c = self.mesh.coord(packet.src);
                        t.sink.record(TraceEvent::PacketDrop {
                            cycle: self.cycle,
                            x: c.x,
                            y: c.y,
                            flits: packet.len_flits as u64,
                        });
                    }
                    return Ok(());
                }
            }
        }
        self.nics[packet.src.index()].enqueue(&packet, self.cfg.num_vcs, self.cycle);
        self.total_nic_queued += packet.len_flits as u64;
        add_work(
            &mut self.work,
            &mut self.queued,
            &mut self.incoming,
            packet.src.index(),
            packet.len_flits,
        );
        self.stats.packets_injected += 1;
        self.stats.flits_injected += packet.len_flits as u64;
        Ok(())
    }

    /// Injects a packet arriving from outside the chip: the destination is
    /// first translated from logical to physical coordinates by the
    /// installed [`AddressMap`], making migration transparent to the sender.
    ///
    /// # Errors
    ///
    /// Same as [`Network::inject`].
    pub fn inject_external(&mut self, mut packet: Packet) -> Result<(), NocError> {
        if let Some(map) = &self.address_map {
            let logical = self.mesh.coord(packet.dst);
            let physical = map.logical_to_physical(logical);
            packet.dst = self.mesh.node_id(physical)?;
        }
        self.inject(packet)
    }

    /// Translates a delivered packet's source back to logical coordinates,
    /// as the I/O interface does for packets leaving the chip.
    pub fn externalize(&self, delivered: DeliveredPacket) -> DeliveredPacket {
        match &self.address_map {
            None => delivered,
            Some(map) => {
                let physical = self.mesh.coord(delivered.src);
                let logical = map.physical_to_logical(physical);
                DeliveredPacket {
                    src: self
                        .mesh
                        .node_id(logical)
                        .expect("address map is a bijection"),
                    ..delivered
                }
            }
        }
    }

    /// Packets delivered at `node` since the last drain.
    pub fn drain_delivered(&mut self, node: NodeId) -> Vec<DeliveredPacket> {
        std::mem::take(&mut self.delivered[node.index()])
    }

    /// All packets delivered anywhere since the last drain, in delivery
    /// order per node.
    pub fn drain_all_delivered(&mut self) -> Vec<DeliveredPacket> {
        let total: usize = self.delivered.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for v in &mut self.delivered {
            out.append(v);
        }
        out
    }

    /// Flits currently inside the network (buffers + links + NIC queues).
    /// O(1): reads the occupancy counters the step loop maintains.
    pub fn in_flight(&self) -> u64 {
        self.total_buffered + self.total_on_links + self.total_nic_queued
    }

    /// Merges routers activated since the last merge into the ascending
    /// worklist and drops entries whose work drained to zero. Keeping the
    /// list sorted preserves the seed loop's 0..n processing order, which
    /// the golden-determinism suite pins down.
    fn merge_worklist(&mut self) {
        if self.incoming.is_empty() {
            if self.worklist.iter().any(|&r| self.work[r as usize] == 0) {
                let queued = &mut self.queued;
                let work = &self.work;
                self.worklist.retain(|&r| {
                    let keep = work[r as usize] > 0;
                    if !keep {
                        queued[r as usize] = false;
                    }
                    keep
                });
            }
            return;
        }
        self.incoming.sort_unstable();
        self.scratch.clear();
        let mut old = self.worklist.iter().copied().peekable();
        let mut new = self.incoming.iter().copied().peekable();
        loop {
            let r = match (old.peek(), new.peek()) {
                (Some(&a), Some(&b)) => {
                    debug_assert_ne!(a, b, "router queued twice");
                    if a < b {
                        old.next().expect("peeked")
                    } else {
                        new.next().expect("peeked")
                    }
                }
                (Some(_), None) => old.next().expect("peeked"),
                (None, Some(_)) => new.next().expect("peeked"),
                (None, None) => break,
            };
            if self.work[r as usize] > 0 {
                self.scratch.push(r);
            } else {
                self.queued[r as usize] = false;
            }
        }
        std::mem::swap(&mut self.worklist, &mut self.scratch);
        self.incoming.clear();
    }

    /// Runs `f` over the dirty `worklist`, either inline as one stripe (the
    /// serial path) or cut into contiguous router-id stripes with equal
    /// dirty-router counts on the minipool workers. Each stripe gets
    /// exclusive access to its id range's per-router state and defers every
    /// cross-stripe effect into its `SweepOut`; the caller commits
    /// `self.stripe_outs[..nstripes]` in ascending stripe order. Returns
    /// the stripe count.
    fn run_striped(
        &mut self,
        worklist: &[u32],
        now: u64,
        f: fn(&SweepCtx<'_>, &mut Stripe<'_>, &mut SweepOut),
    ) -> usize {
        let nstripes = if self.threads > 1 && worklist.len() >= self.par_threshold {
            self.threads.min(worklist.len())
        } else {
            1
        };
        while self.stripe_outs.len() < nstripes {
            self.stripe_outs.push(SweepOut::default());
        }
        let ctx = SweepCtx {
            mesh: self.mesh,
            routing: self.routing,
            now,
            link_latency: self.cfg.link_latency as u64,
            num_vcs: self.cfg.num_vcs as usize,
            slots: 5 * self.cfg.num_vcs as usize,
            buffer_depth: self.cfg.buffer_depth,
            neighbors: &self.neighbors,
            faults: match &self.faults {
                Some(d) if d.state.active() => Some(&d.state),
                _ => None,
            },
            trace: self.trace.is_some(),
        };
        if nstripes == 1 {
            let out = &mut self.stripe_outs[0];
            out.reset();
            let mut stripe = Stripe {
                base: 0,
                ids: worklist,
                routers: &mut self.routers,
                links: &mut self.links,
                nics: &mut self.nics,
                delivered: &mut self.delivered,
                buffered: &mut self.buffered,
                work: &mut self.work,
            };
            f(&ctx, &mut stripe, out);
        } else {
            // Stripe k owns worklist segment [k*len/n, (k+1)*len/n); the
            // router-id space is cut at each segment's first dirty id so
            // stripes own disjoint contiguous id ranges.
            let len = worklist.len();
            let cuts: Vec<usize> = (1..nstripes)
                .map(|k| worklist[k * len / nstripes] as usize)
                .collect();
            let outs = &mut self.stripe_outs[..nstripes];
            for out in outs.iter_mut() {
                out.reset();
            }
            let mut stripes: Vec<Stripe<'_>> = Vec::with_capacity(nstripes);
            let pieces = split_at_cuts(&mut self.routers, &cuts)
                .into_iter()
                .zip(split_at_cuts(&mut self.links, &cuts))
                .zip(split_at_cuts(&mut self.nics, &cuts))
                .zip(split_at_cuts(&mut self.delivered, &cuts))
                .zip(split_at_cuts(&mut self.buffered, &cuts))
                .zip(split_at_cuts(&mut self.work, &cuts));
            for (k, (((((routers, links), nics), delivered), buffered), work)) in pieces.enumerate()
            {
                stripes.push(Stripe {
                    base: if k == 0 { 0 } else { cuts[k - 1] },
                    ids: &worklist[k * len / nstripes..(k + 1) * len / nstripes],
                    routers,
                    links,
                    nics,
                    delivered,
                    buffered,
                    work,
                });
            }
            let pool = minipool::global();
            pool.ensure_workers(nstripes - 1);
            let ctx = &ctx;
            pool.scope(|s| {
                for (stripe, out) in stripes.into_iter().zip(outs.iter_mut()) {
                    s.spawn(move || {
                        let mut stripe = stripe;
                        f(ctx, &mut stripe, out);
                    });
                }
            });
        }
        nstripes
    }

    /// Advances the simulation by one clock cycle.
    ///
    /// Only routers with pending work (tracked by the occupancy counters)
    /// are visited; an idle network advances its clock in O(1).
    pub fn step(&mut self) {
        let now = self.cycle;
        if self.faults.is_some() {
            self.apply_fault_events(now);
        }
        self.merge_worklist();
        if self.worklist.is_empty() {
            self.close_congestion_window(now);
            self.cycle += 1;
            return;
        }
        let worklist = std::mem::take(&mut self.worklist);

        // 1–3. Credit landing, link arrivals, and NIC injection, fused into
        // one pass per dirty router and striped across threads exactly like
        // the allocation sweep (same worker count, same threshold). Each
        // stripe applies in-stripe arrivals directly and defers the rest.
        let prof_pre = hotnoc_obs::prof::scope("noc/step/pre_sweep");
        let n_pre = self.run_striped(&worklist, now, pre_sweep_stripe);

        // Commit phases 1–3 in ascending stripe order: since the stripes
        // partition the ascending worklist, cross-stripe arrivals replay in
        // exactly the dense serial loop's source-router order.
        for out in &mut self.stripe_outs[..n_pre] {
            self.total_on_links -= out.flits_arrived;
            self.total_buffered += out.flits_buffered;
            self.total_nic_queued -= out.nic_injected;
            for (nb, d, flit) in out.arrivals.drain(..) {
                let nb = nb as usize;
                let dir = Direction::MESH[d as usize];
                self.routers[nb].accept_flit(dir.opposite(), flit, self.cfg.buffer_depth);
                self.buffered[nb] += 1;
                self.total_buffered += 1;
                add_work(&mut self.work, &mut self.queued, &mut self.incoming, nb, 1);
            }
            for nb in out.activated.drain(..) {
                let nb = nb as usize;
                if !self.queued[nb] {
                    self.queued[nb] = true;
                    self.incoming.push(nb as u32);
                }
            }
        }

        drop(prof_pre);

        // Absorb routers that phase 2 fed (they may be able to move the
        // newly buffered flit this very cycle, exactly as the dense sweep
        // would), then run the allocation phase over the merged list.
        self.worklist = worklist;
        self.merge_worklist();
        let worklist = std::mem::take(&mut self.worklist);

        // 4. Route computation + switch allocation + traversal: the
        //    two-phase compute/commit sweep over the re-merged worklist.
        let prof_alloc = hotnoc_obs::prof::scope("noc/step/alloc_sweep");
        let nstripes = self.run_striped(&worklist, now, sweep_stripe);
        self.worklist = worklist;

        // Commit phase: fold each stripe's deferred effects in stripe
        // (= ascending router-id) order, reproducing exactly the sequence
        // the dense serial sweep would have produced.
        let tracing = self.trace.is_some();
        let mut cycle_detours = 0u64;
        let mut cycle_peak = 0u64;
        let mut cycle_peak_router = 0u32;
        for out in &mut self.stripe_outs[..nstripes] {
            if tracing {
                cycle_detours += out.stats.detour_hops;
                if out.peak_occ > cycle_peak {
                    cycle_peak = out.peak_occ;
                    cycle_peak_router = out.peak_router;
                }
            }
            self.stats.merge(&out.stats);
            self.total_buffered -= out.flits_popped;
            self.total_on_links += out.flits_to_links;
            for ev in out.credits.drain(..) {
                // Credits addressed to a disabled router vanish with it; its
                // credit counters are rebuilt from neighbor buffer occupancy
                // if it is ever repaired.
                if let Some(d) = &self.faults {
                    if !d.state.router_enabled(ev.router) {
                        continue;
                    }
                }
                self.routers[ev.router].outputs[ev.out_port]
                    .credit_queue
                    .push_back((ev.vc, ev.at));
                add_work(
                    &mut self.work,
                    &mut self.queued,
                    &mut self.incoming,
                    ev.router,
                    1,
                );
            }
        }

        drop(prof_alloc);

        // Trace plane: the per-cycle aggregates merged above (ascending
        // stripe order, strict-max comparison) are thread-count invariant,
        // so the emitted events are too.
        if let Some(t) = &mut self.trace {
            if cycle_detours >= DETOUR_BURST_MIN {
                t.sink.record(TraceEvent::DetourBurst {
                    cycle: now,
                    hops: cycle_detours,
                });
            }
            if cycle_peak > t.peak {
                t.peak = cycle_peak;
                t.peak_cycle = now;
                t.peak_router = cycle_peak_router;
            }
        }
        self.close_congestion_window(now);

        self.cycle += 1;
    }

    /// Installs a trace sink: fault/repair epochs, source packet drops,
    /// detour bursts and per-window congestion watermarks are recorded
    /// into it until [`Network::take_trace_sink`]. Events are a pure
    /// function of simulation state — byte-identical at any thread count —
    /// and recording perturbs nothing the simulation observes.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(Box::new(TraceState {
            sink,
            epochs: 0,
            window_start: self.cycle,
            peak: 0,
            peak_cycle: 0,
            peak_router: 0,
        }));
    }

    /// Removes the trace sink, flushing the open congestion window first,
    /// and returns it for draining. `None` if no sink was installed.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let mut t = self.trace.take()?;
        if t.peak > 0 {
            let end = self.cycle.saturating_sub(1).max(t.window_start);
            let c = self.mesh.coord(NodeId::new(t.peak_router as u16));
            t.sink.record(TraceEvent::Congestion {
                cycle: end,
                window_start: t.window_start,
                peak: t.peak,
                peak_cycle: t.peak_cycle,
                x: c.x,
                y: c.y,
            });
        }
        Some(t.sink)
    }

    /// Emits the congestion watermark when `now` closes a
    /// [`CONGESTION_WINDOW`]-cycle window (windows without traffic stay
    /// silent). Runs on every step, including the idle fast path, so
    /// window boundaries fall at fixed cycles regardless of load; the
    /// inline hint keeps the no-sink case a single predicted branch there.
    #[inline]
    fn close_congestion_window(&mut self, now: u64) {
        let Some(t) = &mut self.trace else { return };
        if !(now + 1).is_multiple_of(CONGESTION_WINDOW) {
            return;
        }
        if t.peak > 0 {
            let c = self.mesh.coord(NodeId::new(t.peak_router as u16));
            t.sink.record(TraceEvent::Congestion {
                cycle: now,
                window_start: t.window_start,
                peak: t.peak,
                peak_cycle: t.peak_cycle,
                x: c.x,
                y: c.y,
            });
        }
        t.peak = 0;
        t.peak_cycle = 0;
        t.peak_router = 0;
        t.window_start = now + 1;
    }

    /// Worker threads the allocation sweep may use (1 = always serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the allocation sweep's worker-thread count (clamped to
    /// `[1, minipool::MAX_WORKERS]`). The simulation result is bit-identical
    /// at every thread count; this only trades wall-clock for cores.
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.clamp(1, minipool::MAX_WORKERS);
    }

    /// Sets the minimum dirty-router count before the sweep is striped
    /// across threads (default 64). Exposed so the parallel-equivalence
    /// tests and benches can force the parallel path on small meshes.
    pub fn set_par_threshold(&mut self, n: usize) {
        self.par_threshold = n.max(1);
    }

    /// Runs for exactly `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until no flits remain in flight, returning the number of packets
    /// delivered during the drain.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::Timeout`] if the network has not drained after
    /// `budget` cycles.
    pub fn run_until_idle(&mut self, budget: u64) -> Result<u64, NocError> {
        let delivered_before = self.stats.packets_delivered;
        let mut spent = 0;
        while self.in_flight() > 0 {
            if spent >= budget {
                return Err(NocError::Timeout {
                    budget,
                    in_flight: self.in_flight(),
                });
            }
            self.step();
            spent += 1;
        }
        Ok(self.stats.packets_delivered - delivered_before)
    }

    /// Takes an activity snapshot (for windowed power computation).
    pub fn snapshot(&self) -> ActivitySnapshot {
        ActivitySnapshot {
            cycle: self.cycle,
            routers: self.routers.iter().map(Router::activity).collect(),
            nic_injected: self.nics.iter().map(|n| n.flits_injected).collect(),
            nic_ejected: self.nics.iter().map(|n| n.flits_ejected).collect(),
        }
    }

    /// Read-only access to a router (for inspection in tests and tools).
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// Recomputes the in-flight count by walking every buffer, link and NIC
    /// queue — the seed implementation of [`Network::in_flight`]. Used by
    /// tests to cross-check the O(1) occupancy counters.
    #[cfg(test)]
    fn recount_in_flight(&self) -> u64 {
        let buffered: usize = self.routers.iter().map(Router::buffered_flits).sum();
        let on_links: usize = self
            .links
            .iter()
            .flat_map(|l| l.iter())
            .map(VecDeque::len)
            .sum();
        let queued: usize = self.nics.iter().map(Nic::pending_flits).sum();
        (buffered + on_links + queued) as u64
    }

    /// Resets all activity counters (cycle count and in-flight traffic are
    /// preserved).
    pub fn reset_activity(&mut self) {
        for r in &mut self.routers {
            r.reset_activity();
        }
        for nic in &mut self.nics {
            nic.flits_injected = 0;
            nic.flits_ejected = 0;
        }
    }

    /// Installs (or replaces) the runtime fault schedule.
    ///
    /// Events apply at the start of their scheduled cycle, before any flit
    /// moves; events scheduled in the past fire at the next [`Network::step`].
    /// Replacing a plan keeps the current enable/disable state of the fabric
    /// and only swaps the pending schedule.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidFaultPlan`] if the plan references
    /// coordinates outside the mesh or links between non-adjacent routers.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) -> Result<(), NocError> {
        plan.validate(self.mesh)?;
        let mut events = plan.events().to_vec();
        events.sort_by_key(|e| e.at);
        match &mut self.faults {
            Some(d) => {
                d.events = events;
                d.next = 0;
            }
            None => {
                self.faults = Some(Box::new(FaultDriver {
                    events,
                    next: 0,
                    state: FaultState::healthy(self.mesh),
                }));
            }
        }
        Ok(())
    }

    /// The current live/dead view of the fabric, or `None` if no fault plan
    /// was ever installed.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_deref().map(|d| &d.state)
    }

    /// The node index and outgoing direction of the `a`-side of a validated
    /// link `(a, b)`.
    fn link_endpoint(&self, a: Coord, b: Coord) -> (usize, Direction) {
        let id = self.mesh.node_id(a).expect("validated plan").index();
        let dir = Direction::MESH
            .into_iter()
            .find(|&d| self.mesh.neighbor(a, d) == Some(b))
            .expect("validated plan joins mesh neighbors");
        (id, dir)
    }

    /// Applies every fault event scheduled at or before `now`, as one batch:
    /// flip the enable bits, rebuild the detour tables, then tear down all
    /// traffic the new fabric can no longer carry. Runs serially at the top
    /// of [`Network::step`], so the parallel sweep only ever observes a
    /// settled fabric.
    fn apply_fault_events(&mut self, now: u64) {
        match &self.faults {
            Some(d) if d.next < d.events.len() && d.events[d.next].at <= now => {}
            _ => return,
        }
        let mut driver = self.faults.take().expect("checked above");
        let mut newly_failed: Vec<usize> = Vec::new();
        let mut repaired: Vec<usize> = Vec::new();
        let mut changed = false;
        while driver.next < driver.events.len() && driver.events[driver.next].at <= now {
            let ev = driver.events[driver.next];
            driver.next += 1;
            match ev.kind {
                FaultKind::FailRouter(c) => {
                    let id = self.mesh.node_id(c).expect("validated plan").index();
                    if driver.state.set_router(id, false) {
                        newly_failed.push(id);
                        changed = true;
                        if let Some(t) = &mut self.trace {
                            t.sink.record(TraceEvent::RouterFailed {
                                cycle: now,
                                x: c.x,
                                y: c.y,
                            });
                        }
                    }
                }
                FaultKind::RepairRouter(c) => {
                    let id = self.mesh.node_id(c).expect("validated plan").index();
                    if driver.state.set_router(id, true) {
                        repaired.push(id);
                        changed = true;
                        if let Some(t) = &mut self.trace {
                            t.sink.record(TraceEvent::RouterRepaired {
                                cycle: now,
                                x: c.x,
                                y: c.y,
                            });
                        }
                    }
                }
                FaultKind::FailLink(a, b) => {
                    let (id, dir) = self.link_endpoint(a, b);
                    if driver.state.set_link(self.mesh, id, dir, false) {
                        changed = true;
                        if let Some(t) = &mut self.trace {
                            t.sink.record(TraceEvent::LinkFailed {
                                cycle: now,
                                ax: a.x,
                                ay: a.y,
                                bx: b.x,
                                by: b.y,
                            });
                        }
                    }
                }
                FaultKind::RepairLink(a, b) => {
                    let (id, dir) = self.link_endpoint(a, b);
                    if driver.state.set_link(self.mesh, id, dir, true) {
                        changed = true;
                        if let Some(t) = &mut self.trace {
                            t.sink.record(TraceEvent::LinkRepaired {
                                cycle: now,
                                ax: a.x,
                                ay: a.y,
                                bx: b.x,
                                by: b.y,
                            });
                        }
                    }
                }
            }
        }
        if changed {
            let (drops_before, flit_drops_before) =
                (self.stats.packets_dropped, self.stats.flits_dropped);
            driver.state.rebuild(self.mesh);
            self.fault_teardown(&driver.state, &newly_failed);
            for &r in &repaired {
                self.restore_router_credits(r, &driver.state);
            }
            if let Some(t) = &mut self.trace {
                t.epochs += 1;
                t.sink.record(TraceEvent::FaultEpoch {
                    cycle: now,
                    epoch: t.epochs,
                    routers_down: driver.state.disabled_routers() as u64,
                    links_down: driver.state.disabled_links() as u64,
                    packets_dropped: self.stats.packets_dropped - drops_before,
                    flits_dropped: self.stats.flits_dropped - flit_drops_before,
                });
            }
        }
        self.faults = Some(driver);
    }

    /// Packet-atomic teardown after a fault epoch change: condemns every
    /// packet with a flit at a dead component, with a dead or unreachable
    /// destination, or mid-stream across more than one buffer/link/queue,
    /// physically removes all its flits (with credit refunds to live
    /// upstream routers), resets newly failed routers to power-on state,
    /// and discards every surviving packet's committed route and routing
    /// phase so all traffic re-plans against the new fabric. Dropping
    /// mid-stream wormholes is what keeps reconfiguration deadlock-free:
    /// no channel claim survives a table change, so the up*/down* channel
    /// ordering of the new epoch is the only one in effect.
    fn fault_teardown(&mut self, state: &FaultState, newly_failed: &[usize]) {
        let n = self.mesh.len();
        let local = Direction::Local.index();

        // Pass 1: condemn. A packet dies at a reconfiguration epoch if any
        // of its flits sits at a dead router or rides a dead link, its
        // destination is dead or unreachable from where its flits are, or
        // it is mid-stream: its flits span more than one buffer, link or
        // NIC queue, or some were already consumed by reassembly. Survivors
        // are packets wholly at rest in a single container; pass 2 resets
        // their committed routes, so all traffic re-plans against the new
        // fabric from a clean slate. That makes the up*/down* deadlock-
        // freedom argument hold unconditionally after every epoch — no
        // wormhole spans a table change, so no stale channel claim can mix
        // the old and new channel orderings into a cycle.
        let mut doomed: HashSet<PacketId> = HashSet::new();
        // Per packet: flits found, packet length, first container seen
        // (encoded as router * 16 + slot).
        let mut seen: std::collections::HashMap<PacketId, (u32, u32, u32)> =
            std::collections::HashMap::new();
        let mesh = self.mesh;
        let routing = self.routing;
        // `entry` is the live channel whose downstream buffer holds (or will
        // receive) this flit: the upstream node and its outgoing direction.
        let mut note = |flit: &Flit,
                        container: u32,
                        at: usize,
                        dead_here: bool,
                        entry: Option<(usize, Direction)>,
                        doomed: &mut HashSet<PacketId>| {
            let dst = flit.dst.index();
            if dead_here || !state.router_enabled(dst) || !state.reachable(at, dst) {
                doomed.insert(flit.packet);
            } else if let Some((from, dir)) = entry {
                // Residency discipline: a packet occupying the downstream
                // buffer of channel `from -> at` may only resume in a phase
                // that channel permits — a descending-channel resident must
                // finish by descending, and after a return to full health it
                // must sit where its XY route would have put it. Anything
                // else would carry a channel dependency across the epoch
                // that the routing discipline's acyclicity proof forbids.
                let keep = if state.active() {
                    !state.channel_descends(from, at) || state.down_reachable(at, dst)
                } else {
                    routing.next_hop(mesh.coord(NodeId::new(from as u16)), mesh.coord(flit.dst))
                        == dir
                };
                if !keep {
                    doomed.insert(flit.packet);
                }
            }
            let e = seen.entry(flit.packet).or_insert((0, flit.len, container));
            e.0 += 1;
            if e.2 != container {
                doomed.insert(flit.packet);
            }
        };
        for r in 0..n {
            let r_dead = !state.router_enabled(r);
            let base = (r * 16) as u32;
            for flit in &self.nics[r].inject_queue {
                note(flit, base + 15, r, r_dead, None, &mut doomed);
            }
            for (p, port) in self.routers[r].inputs.iter().enumerate() {
                let entry = if p < 4 {
                    self.neighbors[r][p].and_then(|u| {
                        let u = u as usize;
                        (state.router_enabled(u) && state.link_enabled(r, Direction::MESH[p]))
                            .then_some((u, Direction::MESH[p].opposite()))
                    })
                } else {
                    None
                };
                for (vc, ivc) in port.vcs.iter().enumerate() {
                    for flit in &ivc.buf {
                        note(
                            flit,
                            base + (p * 2 + vc) as u32,
                            r,
                            r_dead,
                            entry,
                            &mut doomed,
                        );
                    }
                }
            }
            for d in 0..4 {
                if self.links[r][d].is_empty() {
                    continue;
                }
                let nb = self.neighbors[r][d].expect("flits only travel real links") as usize;
                let here_dead = r_dead
                    || !state.link_enabled(r, Direction::MESH[d])
                    || !state.router_enabled(nb);
                for (flit, _) in &self.links[r][d] {
                    note(
                        flit,
                        base + 10 + d as u32,
                        nb,
                        here_dead,
                        Some((r, Direction::MESH[d])),
                        &mut doomed,
                    );
                }
            }
        }
        for (packet, &(count, len, _)) in &seen {
            if count < len {
                doomed.insert(*packet);
            }
        }

        // Pass 2: remove and repair the books. Credit refunds target other
        // routers, so they are collected and applied after the per-router
        // loop.
        let mut refunds: Vec<(usize, usize, u8)> = Vec::new();
        let mut flits_dropped: u64 = 0;
        for r in 0..n {
            if newly_failed.contains(&r) {
                // Full power-off reset: every flit inside dies (its packet
                // is condemned), upstream routers get their credits back,
                // and the router restarts from power-on state if repaired.
                let router = &self.routers[r];
                for (p, port) in router.inputs.iter().enumerate() {
                    for ivc in &port.vcs {
                        for flit in &ivc.buf {
                            flits_dropped += 1;
                            if p != local {
                                let up = self.neighbors[r][p].expect("mesh port fed by neighbor");
                                if state.router_enabled(up as usize) {
                                    refunds.push((
                                        up as usize,
                                        Direction::ALL[p].opposite().index(),
                                        flit.vc,
                                    ));
                                }
                            }
                        }
                    }
                }
                self.total_buffered -= router.buffered_flits() as u64;
                self.buffered[r] = 0;
                for d in 0..4 {
                    let on_link = self.links[r][d].len() as u64;
                    self.total_on_links -= on_link;
                    flits_dropped += on_link;
                    self.links[r][d].clear();
                }
                let queued = self.nics[r].clear_for_fault() as u64;
                self.total_nic_queued -= queued;
                flits_dropped += queued;
                let activity = self.routers[r].activity;
                self.routers[r] = Router::new(self.mesh.coord(NodeId::new(r as u16)), &self.cfg);
                self.routers[r].activity = activity;
                self.work[r] = 0;
                continue;
            }
            if !state.router_enabled(r) {
                // Failed in an earlier epoch: already empty.
                continue;
            }
            // Live router: surgically remove condemned flits, refund the
            // credits they held, release their wormhole channels, and reset
            // every survivor's routing phase.
            let nic = &mut self.nics[r];
            let before = nic.inject_queue.len();
            nic.inject_queue.retain(|f| !doomed.contains(&f.packet));
            let removed = (before - nic.inject_queue.len()) as u64;
            if removed > 0 {
                self.total_nic_queued -= removed;
                self.work[r] -= removed as u32;
                flits_dropped += removed;
            }
            for f in nic.inject_queue.iter_mut() {
                f.down_phase = false;
            }
            nic.abort_reassembly(&doomed);
            let router = &mut self.routers[r];
            for p in 0..5 {
                // The restart phase for survivors in this port's buffers:
                // residents of a descending channel resume descending (pass
                // 1 condemned any that could not), everyone else re-plans
                // from the ascending phase.
                let resume_down = p < 4
                    && match self.neighbors[r][p] {
                        Some(u) => {
                            let u = u as usize;
                            state.router_enabled(u)
                                && state.link_enabled(r, Direction::MESH[p])
                                && state.channel_descends(u, r)
                        }
                        None => false,
                    };
                for vc in 0..self.cfg.num_vcs as usize {
                    let ivc = &mut router.inputs[p].vcs[vc];
                    let before = ivc.buf.len();
                    if before > 0 {
                        let mut kept = VecDeque::with_capacity(before);
                        while let Some(mut f) = ivc.buf.pop_front() {
                            if doomed.contains(&f.packet) {
                                flits_dropped += 1;
                                if p != local {
                                    let up =
                                        self.neighbors[r][p].expect("mesh port fed by neighbor");
                                    if state.router_enabled(up as usize) {
                                        refunds.push((
                                            up as usize,
                                            Direction::ALL[p].opposite().index(),
                                            f.vc,
                                        ));
                                    }
                                }
                            } else {
                                f.down_phase = resume_down;
                                kept.push_back(f);
                            }
                        }
                        let removed = (before - kept.len()) as u32;
                        ivc.buf = kept;
                        if removed > 0 {
                            self.buffered[r] -= removed;
                            self.total_buffered -= removed as u64;
                            self.work[r] -= removed;
                        }
                    }
                    if let VcState::Active { out_dir, .. } = ivc.state {
                        // Discard every committed-but-unsent route at the
                        // epoch: a surviving Active packet is wholly
                        // buffered here (mid-stream packets were condemned
                        // above) and re-plans against the new tables, while
                        // a doomed one releases its wormhole claim.
                        ivc.state = VcState::Idle;
                        let out = &mut router.outputs[out_dir.index()];
                        if out.vc_owner[vc] == Some((p as u8, vc as u8)) {
                            out.vc_owner[vc] = None;
                        }
                    }
                }
            }
            for d in 0..4 {
                let q = &mut self.links[r][d];
                if q.is_empty() {
                    continue;
                }
                // Survivors here land in the downstream buffer of channel
                // `r -> nb`; their restart phase follows that channel.
                let resume_down = match self.neighbors[r][d] {
                    Some(nb) => state.channel_descends(r, nb as usize),
                    None => false,
                };
                let before = q.len();
                let mut kept = VecDeque::with_capacity(before);
                while let Some((mut f, at)) = q.pop_front() {
                    if doomed.contains(&f.packet) {
                        flits_dropped += 1;
                        refunds.push((r, d, f.vc));
                    } else {
                        f.down_phase = resume_down;
                        kept.push_back((f, at));
                    }
                }
                let removed = (before - kept.len()) as u32;
                *q = kept;
                if removed > 0 {
                    self.total_on_links -= removed as u64;
                    self.work[r] -= removed;
                }
            }
        }
        for (router, out_port, vc) in refunds {
            self.routers[router].outputs[out_port].credits[vc as usize] += 1;
        }
        self.stats.flits_dropped += flits_dropped;
        self.stats.packets_dropped += doomed.len() as u64;
    }

    /// Re-arms a repaired router's output credit counters from the actual
    /// buffer occupancy of its neighbors. Flits the router sent before it
    /// failed may still sit in those buffers; their credits return through
    /// the normal queue as they drain, landing the counters exactly back at
    /// `buffer_depth`.
    fn restore_router_credits(&mut self, r: usize, state: &FaultState) {
        for d in 0..4 {
            let Some(nb) = self.neighbors[r][d] else {
                continue;
            };
            let nb = nb as usize;
            if !state.router_enabled(nb) {
                continue;
            }
            let facing = Direction::MESH[d].opposite().index();
            for vc in 0..self.cfg.num_vcs as usize {
                let occupied = self.routers[nb].inputs[facing].vcs[vc].buf.len() as u32;
                self.routers[r].outputs[d].credits[vc] = self.cfg.buffer_depth - occupied;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketClass;

    fn mk_net(n: usize) -> Network {
        Network::new(Mesh::square(n).unwrap(), NocConfig::default())
    }

    fn packet(id: u64, net: &Network, sx: u8, sy: u8, dx: u8, dy: u8, len: u32) -> Packet {
        let src = net.mesh().node_id_at(sx, sy).unwrap();
        let dst = net.mesh().node_id_at(dx, dy).unwrap();
        Packet::new(id, src, dst, PacketClass::Data, len)
    }

    #[test]
    fn single_packet_delivery() {
        let mut net = mk_net(4);
        let p = packet(0, &net, 0, 0, 3, 3, 4);
        net.inject(p).unwrap();
        let delivered = net.run_until_idle(1_000).unwrap();
        assert_eq!(delivered, 1);
        let recs = net.drain_delivered(net.mesh().node_id_at(3, 3).unwrap());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].src, p.src);
        // 6 hops, 4 flits, ~2 cycles per hop + serialization.
        assert!(
            recs[0].latency() >= 10 && recs[0].latency() <= 40,
            "latency {}",
            recs[0].latency()
        );
    }

    #[test]
    fn local_delivery_same_node() {
        let mut net = mk_net(3);
        net.inject(packet(0, &net, 1, 1, 1, 1, 2)).unwrap();
        assert_eq!(net.run_until_idle(100).unwrap(), 1);
    }

    #[test]
    fn all_to_all_delivery_no_loss() {
        let mut net = mk_net(4);
        let mesh = net.mesh();
        let mut id = 0;
        for src in mesh.iter_nodes() {
            for dst in mesh.iter_nodes() {
                if src != dst {
                    net.inject(Packet::new(id, src, dst, PacketClass::Data, 3))
                        .unwrap();
                    id += 1;
                }
            }
        }
        let total = 16 * 15;
        let delivered = net.run_until_idle(100_000).unwrap();
        assert_eq!(delivered, total);
        assert_eq!(net.stats().packets_delivered, total);
        assert_eq!(net.stats().flits_ejected, 3 * total);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn empty_packet_rejected() {
        let mut net = mk_net(3);
        let mut p = packet(0, &net, 0, 0, 1, 1, 1);
        p.len_flits = 0;
        assert_eq!(net.inject(p), Err(NocError::EmptyPacket));
    }

    #[test]
    fn out_of_mesh_node_rejected() {
        let mut net = mk_net(3);
        let p = Packet::new(0, NodeId::new(0), NodeId::new(99), PacketClass::Data, 1);
        assert!(matches!(
            net.inject(p),
            Err(NocError::CoordOutOfBounds { .. })
        ));
    }

    #[test]
    fn timeout_reported() {
        let mut net = mk_net(4);
        net.inject(packet(0, &net, 0, 0, 3, 3, 8)).unwrap();
        let err = net.run_until_idle(2).unwrap_err();
        assert!(matches!(err, NocError::Timeout { .. }));
    }

    #[test]
    fn flits_arrive_in_order() {
        let mut net = mk_net(4);
        // Two packets from different sources to the same sink, long bodies.
        net.inject(packet(0, &net, 0, 0, 3, 0, 16)).unwrap();
        net.inject(packet(1, &net, 0, 1, 3, 0, 16)).unwrap();
        net.run_until_idle(10_000).unwrap();
        // Reassembly would panic (debug) or miscount on out-of-order
        // delivery; reaching here with 2 packets is the assertion.
        assert_eq!(net.stats().packets_delivered, 2);
    }

    #[test]
    fn wormhole_blocks_do_not_deadlock() {
        // Saturate a 4x4 with cross traffic on one VC class.
        let mut net = mk_net(4);
        let mesh = net.mesh();
        let mut id = 0;
        for rep in 0..10 {
            for y in 0..4u8 {
                let src = mesh.node_id_at(0, y).unwrap();
                let dst = mesh.node_id_at(3, 3 - y).unwrap();
                net.inject(Packet::new(id, src, dst, PacketClass::Data, 8))
                    .unwrap();
                id += 1;
                let src2 = mesh.node_id_at(3 - y, 0).unwrap();
                let dst2 = mesh.node_id_at(y, 3).unwrap();
                net.inject(Packet::new(id, src2, dst2, PacketClass::Data, 8))
                    .unwrap();
                id += 1;
            }
            let _ = rep;
        }
        let delivered = net.run_until_idle(100_000).unwrap();
        assert_eq!(delivered, 80);
    }

    #[test]
    fn credits_restored_after_drain() {
        let mut net = mk_net(4);
        net.inject(packet(0, &net, 0, 0, 3, 2, 12)).unwrap();
        net.run_until_idle(10_000).unwrap();
        net.run(5); // let trailing credits land
        for node in net.mesh().iter_nodes() {
            let r = net.router(node);
            for out in &r.outputs {
                for &c in &out.credits {
                    assert_eq!(c, net.config().buffer_depth);
                }
                assert!(out.credit_queue.is_empty());
            }
        }
    }

    #[test]
    fn activity_counters_consistent() {
        let mut net = mk_net(4);
        net.inject(packet(0, &net, 0, 0, 2, 0, 5)).unwrap();
        net.run_until_idle(1_000).unwrap();
        let snap = net.snapshot();
        let total_writes: u64 = snap.routers.iter().map(|r| r.buffer_writes).sum();
        let total_reads: u64 = snap.routers.iter().map(|r| r.buffer_reads).sum();
        // Every buffered flit is eventually read exactly once.
        assert_eq!(total_writes, total_reads);
        // 5 flits traverse 3 routers each (src, mid, dst).
        assert_eq!(total_reads, 15);
        // 2 link hops * 5 flits.
        assert_eq!(net.stats().flit_hops, 10);
        let xbar: u64 = snap.routers.iter().map(|r| r.xbar_traversals).sum();
        assert_eq!(xbar, 15);
    }

    #[test]
    fn snapshot_delta_tracks_window() {
        let mut net = mk_net(4);
        net.inject(packet(0, &net, 0, 0, 3, 3, 4)).unwrap();
        net.run_until_idle(1_000).unwrap();
        let a = net.snapshot();
        net.inject(packet(1, &net, 3, 3, 0, 0, 4)).unwrap();
        net.run_until_idle(1_000).unwrap();
        let b = net.snapshot();
        let d = b.delta_since(&a);
        let writes: u64 = d.routers.iter().map(|r| r.buffer_writes).sum();
        assert_eq!(writes, 4 * 7); // 4 flits through 7 routers
    }

    #[test]
    fn reset_activity_clears_counters() {
        let mut net = mk_net(3);
        net.inject(packet(0, &net, 0, 0, 2, 2, 2)).unwrap();
        net.run_until_idle(1_000).unwrap();
        net.reset_activity();
        let snap = net.snapshot();
        assert!(snap.routers.iter().all(|r| r.is_idle()));
        assert!(snap.nic_injected.iter().all(|&x| x == 0));
    }

    #[test]
    fn vc_classes_use_separate_channels() {
        let mut net = mk_net(4);
        let src = net.mesh().node_id_at(0, 0).unwrap();
        let dst = net.mesh().node_id_at(3, 0).unwrap();
        net.inject(Packet::new(0, src, dst, PacketClass::Data, 4))
            .unwrap();
        net.inject(Packet::new(1, src, dst, PacketClass::State, 4))
            .unwrap();
        net.run_until_idle(1_000).unwrap();
        assert_eq!(net.stats().packets_delivered, 2);
    }

    #[test]
    fn external_injection_respects_address_map() {
        use crate::io_interface::AddressMap;

        #[derive(Debug)]
        struct SwapCorners;
        impl AddressMap for SwapCorners {
            fn logical_to_physical(&self, c: Coord) -> Coord {
                match (c.x, c.y) {
                    (0, 0) => Coord::new(3, 3),
                    (3, 3) => Coord::new(0, 0),
                    _ => c,
                }
            }
            fn physical_to_logical(&self, c: Coord) -> Coord {
                self.logical_to_physical(c)
            }
        }

        let mut net = mk_net(4);
        net.set_address_map(Box::new(SwapCorners));
        let p = packet(0, &net, 1, 1, 0, 0, 2); // logical dst (0,0)
        net.inject_external(p).unwrap();
        net.run_until_idle(1_000).unwrap();
        // Physically delivered to (3,3).
        let at_swapped = net.drain_delivered(net.mesh().node_id_at(3, 3).unwrap());
        assert_eq!(at_swapped.len(), 1);
        // Outbound source translation.
        let rec = at_swapped[0];
        let rec_out = net.externalize(DeliveredPacket {
            src: net.mesh().node_id_at(3, 3).unwrap(),
            ..rec
        });
        assert_eq!(rec_out.src, net.mesh().node_id_at(0, 0).unwrap());
    }

    #[test]
    fn run_advances_cycles() {
        let mut net = mk_net(3);
        net.run(17);
        assert_eq!(net.cycle(), 17);
    }

    #[test]
    fn occupancy_counters_match_recount_under_load() {
        let mut net = mk_net(4);
        let mesh = net.mesh();
        let mut gen = crate::traffic::TrafficGenerator::new(
            mesh,
            crate::traffic::TrafficPattern::UniformRandom,
            0.2,
            4,
            21,
        );
        for _ in 0..300 {
            gen.tick(&mut net);
            net.step();
            assert_eq!(net.in_flight(), net.recount_in_flight());
        }
        net.run_until_idle(50_000).unwrap();
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.recount_in_flight(), 0);
    }

    #[test]
    fn idle_network_steps_in_constant_time_path() {
        let mut net = mk_net(8);
        net.run(1_000);
        assert_eq!(net.cycle(), 1_000);
        assert!(net.worklist.is_empty(), "idle mesh kept routers active");
        // Wake it up, drain it, and verify the worklist empties again.
        net.inject(packet(0, &net, 0, 0, 7, 7, 4)).unwrap();
        net.run_until_idle(10_000).unwrap();
        net.run(5); // land trailing credits
        net.step();
        assert!(net.worklist.is_empty(), "drained mesh kept routers active");
        assert!(net.work.iter().all(|&w| w == 0), "stale work units remain");
    }

    #[test]
    fn drain_all_delivered_returns_everything_once() {
        let mut net = mk_net(3);
        for i in 0..6 {
            net.inject(packet(i, &net, 0, 0, 2, 2, 2)).unwrap();
        }
        net.run_until_idle(10_000).unwrap();
        let all = net.drain_all_delivered();
        assert_eq!(all.len(), 6);
        assert!(net.drain_all_delivered().is_empty());
    }

    #[test]
    fn router_failure_mid_flight_conserves_flits() {
        use crate::fault::FaultPlan;
        let mut net = mk_net(4);
        let mesh = net.mesh();
        // Cross traffic that saturates the centre, then kill (1,1) at cycle
        // 8 with flits mid-flight through it.
        let mut id = 0;
        for src in mesh.iter_nodes() {
            for dst in mesh.iter_nodes() {
                if src != dst {
                    net.inject(Packet::new(id, src, dst, PacketClass::Data, 4))
                        .unwrap();
                    id += 1;
                }
            }
        }
        net.install_fault_plan(FaultPlan::new().fail_router(8, Coord::new(1, 1)))
            .unwrap();
        net.run_until_idle(100_000).unwrap();
        let s = net.stats();
        assert!(s.flits_dropped > 0, "the dying router must drop traffic");
        assert!(s.packets_dropped > 0);
        assert_eq!(
            s.flits_injected,
            s.flits_ejected + s.flits_dropped,
            "flit conservation violated"
        );
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.recount_in_flight(), 0);
        // Everything not through the dead router still arrives, detouring.
        assert!(s.packets_delivered + s.packets_dropped == s.packets_injected);
        assert!(s.detour_hops > 0, "surround routing must have engaged");
    }

    #[test]
    fn inject_on_degraded_fabric_counts_dropped_endpoints() {
        use crate::fault::FaultPlan;
        let mut net = mk_net(4);
        net.install_fault_plan(FaultPlan::new().fail_router(0, Coord::new(2, 2)))
            .unwrap();
        net.step(); // apply the event
        assert_eq!(net.fault_state().unwrap().disabled_routers(), 1);
        // To a dead destination: accepted, counted injected and dropped.
        let dead_dst = packet(0, &net, 0, 0, 2, 2, 3);
        net.inject(dead_dst).unwrap();
        assert_eq!(net.stats().flits_dropped, 3);
        assert_eq!(net.stats().packets_dropped, 1);
        assert_eq!(net.in_flight(), 0);
        // Between live endpoints: delivered as usual.
        net.inject(packet(1, &net, 0, 0, 3, 3, 3)).unwrap();
        net.run_until_idle(10_000).unwrap();
        assert_eq!(net.stats().packets_delivered, 1);
        assert_eq!(
            net.stats().flits_injected,
            net.stats().flits_ejected + net.stats().flits_dropped
        );
    }

    #[test]
    fn repair_restores_credits_and_healthy_routing() {
        use crate::fault::FaultPlan;
        let mut net = mk_net(4);
        let plan = FaultPlan::new()
            .fail_router(5, Coord::new(1, 1))
            .fail_link(5, Coord::new(2, 2), Coord::new(3, 2))
            .repair_router(400, Coord::new(1, 1))
            .repair_link(400, Coord::new(2, 2), Coord::new(3, 2));
        net.install_fault_plan(plan).unwrap();
        let mesh = net.mesh();
        let mut id = 0;
        for src in mesh.iter_nodes() {
            for dst in mesh.iter_nodes() {
                if src != dst {
                    net.inject(Packet::new(id, src, dst, PacketClass::Data, 2))
                        .unwrap();
                    id += 1;
                }
            }
        }
        net.run_until_idle(100_000).unwrap();
        net.run(500); // past the repairs, credits land
        assert!(!net.fault_state().unwrap().active());
        for node in net.mesh().iter_nodes() {
            let r = net.router(node);
            for out in &r.outputs {
                for &c in &out.credits {
                    assert_eq!(c, net.config().buffer_depth, "credits corrupt at {node}");
                }
                assert!(out.credit_queue.is_empty());
            }
        }
        // Healthy again: XY routing, full delivery, counters consistent.
        let before = net.stats().packets_delivered;
        net.inject(packet(id, &net, 0, 0, 3, 3, 4)).unwrap();
        net.run_until_idle(10_000).unwrap();
        assert_eq!(net.stats().packets_delivered, before + 1);
        assert_eq!(net.recount_in_flight(), 0);
    }

    #[test]
    fn latency_histogram_tracks_deliveries() {
        let mut net = mk_net(4);
        for i in 0..10 {
            net.inject(packet(i, &net, 0, 0, 3, 3, 2)).unwrap();
        }
        net.run_until_idle(10_000).unwrap();
        let h = &net.stats().latency_histogram;
        assert_eq!(h.count(), 10);
        let p99 = h.quantile_upper_bound(0.99).unwrap();
        assert!(p99 >= net.stats().max_packet_latency);
        let p50 = h.quantile_upper_bound(0.5).unwrap();
        assert!(p50 <= p99);
    }
}

#[cfg(test)]
mod fault_debug {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::traffic::{TrafficGenerator, TrafficPattern};

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    #[ignore]
    fn hunt_midflight_deadlock() {
        for case in 0..400u64 {
            let mut rng = Rng(0x9E3779B97F4A7C15 ^ (case + 1));
            let side = 4 + rng.below(4) as usize;
            let mesh = Mesh::square(side).unwrap();
            let nr = rng.below(3) as usize;
            let nl = rng.below(3) as usize;
            let routers: Vec<Coord> = (0..nr)
                .map(|_| Coord::new(rng.below(side as u64) as u8, rng.below(side as u64) as u8))
                .collect();
            let links: Vec<(Coord, Coord)> = (0..nl)
                .map(|_| {
                    let x = rng.below(side as u64 - 1) as u8;
                    let y = rng.below(side as u64 - 1) as u8;
                    if rng.below(2) == 1 {
                        (Coord::new(x, y), Coord::new(x, y + 1))
                    } else {
                        (Coord::new(x, y), Coord::new(x + 1, y))
                    }
                })
                .collect();
            let fail_at = 1 + rng.below(149);
            let repair_after = 1 + rng.below(199);
            let mut plan = FaultPlan::new();
            for &c in &routers {
                plan = plan.fail_router(fail_at, c);
            }
            for &(a, b) in &links {
                plan = plan.fail_link(fail_at, a, b);
            }
            if let Some(&c) = routers.first() {
                plan = plan.repair_router(fail_at + repair_after, c);
            }
            let mut net = Network::new(mesh, NocConfig::default());
            net.set_par_threshold(1);
            net.install_fault_plan(plan).unwrap();
            let mut gen =
                TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, 0.12, 4, 0xC0DE + case);
            for _ in 0..250 {
                gen.tick(&mut net);
                net.step();
            }
            if net.run_until_idle(20_000).is_err() {
                // Give repairs a chance, then check again.
                net.run(repair_after + 300);
                if net.run_until_idle(20_000).is_ok() {
                    continue;
                }
                eprintln!(
                    "case {case}: side {side} routers {routers:?} links {links:?} \
                     fail_at {fail_at} repair_after {repair_after} stuck={}",
                    net.in_flight()
                );
                dump_stuck(&net);
                panic!("deadlock reproduced in case {case}");
            }
        }
    }

    fn dump_stuck(net: &Network) {
        let n = net.mesh.len();
        for r in 0..n {
            let router = &net.routers[r];
            let mut lines = Vec::new();
            for p in 0..5 {
                for vc in 0..net.cfg.num_vcs as usize {
                    let ivc = &router.inputs[p].vcs[vc];
                    if !ivc.buf.is_empty() || !matches!(ivc.state, VcState::Idle) {
                        let fronts: Vec<String> = ivc
                            .buf
                            .iter()
                            .map(|f| {
                                format!(
                                    "p{}#{} dst{} dp{}",
                                    f.packet,
                                    f.seq,
                                    f.dst.index(),
                                    f.down_phase
                                )
                            })
                            .collect();
                        lines.push(format!(
                            "  in[{p}][{vc}] state={:?} buf={:?}",
                            ivc.state, fronts
                        ));
                    }
                }
            }
            for d in 0..4 {
                let out = &router.outputs[d];
                let owners: Vec<_> = out.vc_owner.iter().collect();
                let credits: Vec<_> = out.credits.iter().collect();
                if out.vc_owner.iter().any(Option::is_some)
                    || out.credits.iter().any(|&c| c != net.cfg.buffer_depth)
                    || !out.credit_queue.is_empty()
                {
                    lines.push(format!(
                        "  out[{d}] owner={owners:?} credits={credits:?} cq={}",
                        out.credit_queue.len()
                    ));
                }
                if !net.links[r][d].is_empty() {
                    lines.push(format!("  link[{d}] {} flits", net.links[r][d].len()));
                }
            }
            if !net.nics[r].inject_queue.is_empty() {
                lines.push(format!("  nicq {} flits", net.nics[r].inject_queue.len()));
            }
            if !lines.is_empty() {
                let ok = net
                    .faults
                    .as_ref()
                    .map(|d| d.state.router_enabled(r))
                    .unwrap_or(true);
                eprintln!(
                    "router {r} ({:?}) live={ok} work={}",
                    net.mesh.coord(NodeId::new(r as u16)),
                    net.work[r]
                );
                for l in lines {
                    eprintln!("{l}");
                }
            }
        }
    }
}
