//! Network interface controllers: packet injection and reassembly.

use crate::flit::{packetize, Flit, Packet, PacketId};
use crate::topology::NodeId;
use std::collections::{HashMap, VecDeque};

/// Per-node network interface: an injection FIFO of serialized flits and a
/// reassembly table for arriving packets.
#[derive(Debug, Clone, Default)]
pub(crate) struct Nic {
    /// Flits waiting to enter the router's local input port.
    pub inject_queue: VecDeque<Flit>,
    /// Packets being reassembled: id -> flits received so far.
    reassembly: HashMap<PacketId, u32>,
    /// Flits injected (activity counter).
    pub flits_injected: u64,
    /// Flits ejected (activity counter).
    pub flits_ejected: u64,
}

impl Nic {
    /// Serializes `packet` and queues its flits for injection.
    pub fn enqueue(&mut self, packet: &Packet, num_vcs: u8, now: u64) {
        for flit in packetize(packet, num_vcs, now) {
            self.inject_queue.push_back(flit);
        }
    }

    /// The next flit waiting to enter the router's local port, if any.
    pub fn peek_inject(&self) -> Option<&Flit> {
        self.inject_queue.front()
    }

    /// Removes the flit returned by [`Nic::peek_inject`] and counts it as
    /// injected. Called by the network once the router confirmed buffer
    /// space for it.
    pub fn take_inject(&mut self) -> Option<Flit> {
        let flit = self.inject_queue.pop_front();
        if flit.is_some() {
            self.flits_injected += 1;
        }
        flit
    }

    /// Accepts an ejected flit; returns the completed packet (and its
    /// delivery cycle) when the tail arrives.
    pub fn eject(&mut self, flit: Flit, now: u64) -> Option<(Packet, u64)> {
        self.flits_ejected += 1;
        let count = self.reassembly.entry(flit.packet).or_insert(0);
        *count += 1;
        debug_assert!(*count <= flit.len, "duplicate flit for {}", flit.packet);
        if flit.is_tail() {
            self.reassembly.remove(&flit.packet);
            let packet = Packet {
                id: flit.packet,
                src: flit.src,
                dst: flit.dst,
                class: flit.class,
                len_flits: flit.len,
                payload: 0,
            };
            Some((packet, now))
        } else {
            None
        }
    }

    /// Flits still queued for injection. The network tracks occupancy
    /// incrementally; this recount survives for tests cross-checking it.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn pending_flits(&self) -> usize {
        self.inject_queue.len()
    }

    /// Packets currently mid-reassembly.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn open_reassemblies(&self) -> usize {
        self.reassembly.len()
    }

    /// Aborts reassembly of packets condemned by fault teardown; their
    /// remaining flits will never arrive.
    pub fn abort_reassembly(&mut self, doomed: &std::collections::HashSet<PacketId>) {
        self.reassembly.retain(|id, _| !doomed.contains(id));
    }

    /// Drops every queued and half-reassembled packet (router failure).
    /// Returns the number of queued flits discarded; the activity counters
    /// survive so windowed deltas stay monotone.
    pub fn clear_for_fault(&mut self) -> usize {
        let dropped = self.inject_queue.len();
        self.inject_queue.clear();
        self.reassembly.clear();
        dropped
    }
}

/// A packet that completed its journey, as reported to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// The packet (payload seed is not preserved; contents travel in flits).
    pub packet_id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle the head was injected.
    pub inject_cycle: u64,
    /// Cycle the tail was ejected.
    pub eject_cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketClass;

    #[test]
    fn enqueue_serializes_all_flits() {
        let mut nic = Nic::default();
        let p = Packet::new(9, NodeId::new(0), NodeId::new(1), PacketClass::Data, 5);
        nic.enqueue(&p, 2, 0);
        assert_eq!(nic.pending_flits(), 5);
    }

    #[test]
    fn eject_reassembles_in_order() {
        let mut nic = Nic::default();
        let p = Packet::new(3, NodeId::new(0), NodeId::new(1), PacketClass::Data, 3);
        let flits = packetize(&p, 2, 10);
        assert!(nic.eject(flits[0], 20).is_none());
        assert!(nic.eject(flits[1], 21).is_none());
        let (done, at) = nic.eject(flits[2], 22).expect("tail completes packet");
        assert_eq!(done.id, p.id);
        assert_eq!(done.len_flits, 3);
        assert_eq!(at, 22);
        assert_eq!(nic.open_reassemblies(), 0);
        assert_eq!(nic.flits_ejected, 3);
    }

    #[test]
    fn interleaved_packets_reassemble_independently() {
        let mut nic = Nic::default();
        let a = Packet::new(1, NodeId::new(0), NodeId::new(1), PacketClass::Data, 2);
        let b = Packet::new(2, NodeId::new(2), NodeId::new(1), PacketClass::Data, 2);
        let fa = packetize(&a, 2, 0);
        let fb = packetize(&b, 2, 0);
        assert!(nic.eject(fa[0], 5).is_none());
        assert!(nic.eject(fb[0], 6).is_none());
        assert_eq!(nic.open_reassemblies(), 2);
        assert!(nic.eject(fb[1], 7).is_some());
        assert!(nic.eject(fa[1], 8).is_some());
        assert_eq!(nic.open_reassemblies(), 0);
    }
}
