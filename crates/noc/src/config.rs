//! Simulator configuration.

use crate::error::NocError;
use serde::{Deserialize, Serialize};

/// Microarchitectural parameters of the routers and links.
///
/// The defaults model the paper's 160 nm LDPC-decoder NoC: 64-bit links, two
/// virtual channels (one for data, one for reconfiguration traffic), 4-flit
/// input buffers and single-cycle links at 500 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Number of virtual channels per input port (1..=8).
    pub num_vcs: u8,
    /// Buffer depth per virtual channel, in flits (1..=256).
    pub buffer_depth: u32,
    /// Link traversal latency in cycles (>= 1).
    pub link_latency: u32,
    /// Flit width in bits (payload word is 64-bit; widths above 64 model
    /// parallel lanes and only affect energy accounting).
    pub flit_bits: u32,
    /// Clock frequency in Hz, used to convert cycles to seconds.
    pub clock_hz: f64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            num_vcs: 2,
            buffer_depth: 4,
            link_latency: 1,
            flit_bits: 64,
            clock_hz: 500.0e6,
        }
    }
}

impl NocConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.num_vcs == 0 || self.num_vcs > 8 {
            return Err(NocError::InvalidConfig {
                what: "num_vcs must be in 1..=8",
            });
        }
        if self.buffer_depth == 0 || self.buffer_depth > 256 {
            return Err(NocError::InvalidConfig {
                what: "buffer_depth must be in 1..=256",
            });
        }
        if self.link_latency == 0 {
            return Err(NocError::InvalidConfig {
                what: "link_latency must be >= 1",
            });
        }
        if self.flit_bits == 0 || self.flit_bits > 1024 {
            return Err(NocError::InvalidConfig {
                what: "flit_bits must be in 1..=1024",
            });
        }
        if !(self.clock_hz.is_finite() && self.clock_hz > 0.0) {
            return Err(NocError::InvalidConfig {
                what: "clock_hz must be positive and finite",
            });
        }
        Ok(())
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Converts seconds to (rounded) cycles at the configured clock.
    pub fn seconds_to_cycles(&self, seconds: f64) -> u64 {
        (seconds * self.clock_hz).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        NocConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_zero_vcs() {
        let cfg = NocConfig {
            num_vcs: 0,
            ..NocConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_buffer() {
        let cfg = NocConfig {
            buffer_depth: 0,
            ..NocConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_latency_and_bad_clock() {
        assert!(NocConfig {
            link_latency: 0,
            ..NocConfig::default()
        }
        .validate()
        .is_err());
        assert!(NocConfig {
            clock_hz: f64::NAN,
            ..NocConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn time_conversions_roundtrip() {
        let cfg = NocConfig::default();
        assert_eq!(cfg.seconds_to_cycles(1.0e-6), 500);
        let s = cfg.cycles_to_seconds(54_650);
        assert!((s - 109.3e-6).abs() < 1e-12);
    }
}
