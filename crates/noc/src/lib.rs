//! # hotnoc-noc — cycle-accurate 2-D mesh network-on-chip simulator
//!
//! This crate implements the "modified cycle-accurate NoC simulator" that the
//! DATE'05 paper *Hotspot Prevention Through Runtime Reconfiguration in
//! Network-On-Chip* (Link & Vijaykrishnan) uses to obtain per-component
//! switching rates. It models:
//!
//! * a 2-D mesh [`topology::Mesh`] of input-buffered wormhole routers with
//!   virtual channels and credit-based flow control ([`router`], [`network`]),
//! * dimension-order ([`routing::XyRouting`], [`routing::YxRouting`]) and
//!   partially-adaptive turn-model ([`routing::WestFirstRouting`]) routing,
//! * network interfaces ([`nic`]) that packetize and reassemble messages,
//! * per-component switching-activity counters and latency histograms
//!   ([`stats`]) that feed the `hotnoc-power` model,
//! * synthetic traffic patterns ([`traffic`]) for validation and benchmarks,
//! * a chip I/O boundary with transparent address transformation hooks
//!   ([`io_interface`]), the mechanism §2.3 of the paper uses to hide
//!   migration from the outside world.
//!
//! ## Quick example
//!
//! ```
//! use hotnoc_noc::{Mesh, Network, NocConfig, Packet, PacketClass};
//!
//! let mesh = Mesh::square(4).unwrap();
//! let mut net = Network::new(mesh, NocConfig::default());
//! let src = mesh.node_id_at(0, 0).unwrap();
//! let dst = mesh.node_id_at(3, 3).unwrap();
//! let packet = Packet::new(0, src, dst, PacketClass::Data, 4);
//! net.inject(packet).unwrap();
//! let delivered = net.run_until_idle(10_000).unwrap();
//! assert_eq!(delivered, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod fault;
pub mod flit;
pub mod io_interface;
pub mod network;
pub mod nic;
pub mod router;
pub mod routing;
pub mod stats;
pub mod topology;
pub mod traffic;

pub use config::NocConfig;
pub use error::NocError;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultState};
pub use flit::{Flit, FlitKind, Packet, PacketClass, PacketId};
pub use io_interface::{AddressMap, IdentityMap};
pub use network::{DeliveredPacket, Network};
pub use routing::{Routing, RoutingKind, WestFirstRouting, XyRouting, YxRouting};
pub use stats::{ActivitySnapshot, LatencyHistogram, NetworkStats, RouterActivity};
pub use topology::{Coord, Direction, Mesh, NodeId};
pub use traffic::{TrafficGenerator, TrafficPattern};
