//! Switching-activity counters and network statistics.
//!
//! The thermal methodology of the paper derives per-component power from
//! switching rates observed in the cycle-accurate simulation; these counters
//! are the interface between the NoC simulator and the power model.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Sub};

/// Per-router event counters for one simulation interval.
///
/// Each counter corresponds to an energy-bearing micro-operation in the
/// router (buffer write, buffer read, crossbar traversal, arbitration,
/// outbound link flit). `RouterActivity` forms a commutative monoid under
/// `+` and supports windowed deltas via `-`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterActivity {
    /// Flits written into input buffers.
    pub buffer_writes: u64,
    /// Flits read out of input buffers.
    pub buffer_reads: u64,
    /// Flits that crossed the crossbar.
    pub xbar_traversals: u64,
    /// Switch-allocation decisions performed.
    pub arbitrations: u64,
    /// Flits sent on each output port (N, E, S, W, Local).
    pub link_flits: [u64; 5],
    /// Payload bit transitions observed on outbound links (for bit-accurate
    /// dynamic power estimates).
    pub bit_transitions: u64,
    /// Head flits routed (route computations).
    pub routes_computed: u64,
}

impl RouterActivity {
    /// Total flits sent on mesh links (excluding the local/ejection port).
    pub fn mesh_link_flits(&self) -> u64 {
        self.link_flits[..4].iter().sum()
    }

    /// Total flits sent on all output ports.
    pub fn total_link_flits(&self) -> u64 {
        self.link_flits.iter().sum()
    }

    /// `true` if no activity was recorded.
    pub fn is_idle(&self) -> bool {
        *self == RouterActivity::default()
    }
}

impl Add for RouterActivity {
    type Output = RouterActivity;

    fn add(self, rhs: RouterActivity) -> RouterActivity {
        let mut link_flits = [0u64; 5];
        for (i, slot) in link_flits.iter_mut().enumerate() {
            *slot = self.link_flits[i] + rhs.link_flits[i];
        }
        RouterActivity {
            buffer_writes: self.buffer_writes + rhs.buffer_writes,
            buffer_reads: self.buffer_reads + rhs.buffer_reads,
            xbar_traversals: self.xbar_traversals + rhs.xbar_traversals,
            arbitrations: self.arbitrations + rhs.arbitrations,
            link_flits,
            bit_transitions: self.bit_transitions + rhs.bit_transitions,
            routes_computed: self.routes_computed + rhs.routes_computed,
        }
    }
}

impl Sub for RouterActivity {
    type Output = RouterActivity;

    /// Windowed delta; saturates at zero so a reset mid-window cannot
    /// produce wrap-around garbage.
    fn sub(self, rhs: RouterActivity) -> RouterActivity {
        let mut link_flits = [0u64; 5];
        for (i, slot) in link_flits.iter_mut().enumerate() {
            *slot = self.link_flits[i].saturating_sub(rhs.link_flits[i]);
        }
        RouterActivity {
            buffer_writes: self.buffer_writes.saturating_sub(rhs.buffer_writes),
            buffer_reads: self.buffer_reads.saturating_sub(rhs.buffer_reads),
            xbar_traversals: self.xbar_traversals.saturating_sub(rhs.xbar_traversals),
            arbitrations: self.arbitrations.saturating_sub(rhs.arbitrations),
            link_flits,
            bit_transitions: self.bit_transitions.saturating_sub(rhs.bit_transitions),
            routes_computed: self.routes_computed.saturating_sub(rhs.routes_computed),
        }
    }
}

/// A power-of-two-bucketed latency histogram: bucket `i` counts latencies
/// in `[2^i, 2^(i+1))` cycles (bucket 0 covers latency 1).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl LatencyHistogram {
    /// Records one latency sample (cycles, >= 1).
    pub fn record(&mut self, latency: u64) {
        let bucket = 64 - latency.max(1).leading_zeros() as usize - 1;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The bucket counts (bucket `i` covers `[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Folds another histogram into this one (bucket-wise addition).
    /// Commutative and associative, so per-stripe histograms from the
    /// parallel sweep merge into the same totals in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (slot, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += b;
        }
        self.count += other.count;
    }

    /// An upper bound on the `q`-quantile latency (0 < q <= 1): the
    /// exclusive upper edge of the bucket containing that quantile.
    /// `None` before any sample.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64 << (i + 1));
            }
        }
        Some(1u64 << self.buckets.len())
    }
}

/// Network-wide aggregate statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Packets injected into the network.
    pub packets_injected: u64,
    /// Packets fully delivered (tail ejected).
    pub packets_delivered: u64,
    /// Flits injected.
    pub flits_injected: u64,
    /// Flits ejected.
    pub flits_ejected: u64,
    /// Sum of packet latencies (inject -> tail ejection), in cycles.
    pub total_packet_latency: u64,
    /// Maximum packet latency observed.
    pub max_packet_latency: u64,
    /// Total flit-hops (each flit crossing each mesh link counts once).
    pub flit_hops: u64,
    /// Flits physically removed from the network by fault teardown (never
    /// ejected). Zero on a healthy fabric; flit conservation holds as
    /// `flits_injected == flits_ejected + flits_dropped` once idle.
    pub flits_dropped: u64,
    /// Packets dropped by fault teardown (each counted once, however many
    /// of its flits were still in flight).
    pub packets_dropped: u64,
    /// Route computations where surround routing chose a different output
    /// than the healthy routing algorithm would have.
    pub detour_hops: u64,
    /// Distribution of packet latencies.
    pub latency_histogram: LatencyHistogram,
}

impl NetworkStats {
    /// Mean packet latency in cycles, or `None` before any delivery.
    pub fn mean_latency(&self) -> Option<f64> {
        (self.packets_delivered > 0)
            .then(|| self.total_packet_latency as f64 / self.packets_delivered as f64)
    }

    /// Accumulates a delta produced by one stripe of the parallel sweep.
    /// Every field is a commutative fold (sums, max, bucket-wise histogram
    /// addition), so the merged totals do not depend on stripe order.
    pub fn merge(&mut self, delta: &NetworkStats) {
        self.packets_injected += delta.packets_injected;
        self.packets_delivered += delta.packets_delivered;
        self.flits_injected += delta.flits_injected;
        self.flits_ejected += delta.flits_ejected;
        self.total_packet_latency += delta.total_packet_latency;
        self.max_packet_latency = self.max_packet_latency.max(delta.max_packet_latency);
        self.flit_hops += delta.flit_hops;
        self.flits_dropped += delta.flits_dropped;
        self.packets_dropped += delta.packets_dropped;
        self.detour_hops += delta.detour_hops;
        self.latency_histogram.merge(&delta.latency_histogram);
    }

    /// Upper bound on the `q`-quantile packet latency (the bucket edge of
    /// [`LatencyHistogram::quantile_upper_bound`]), or `None` before any
    /// delivery. This is what latency-vs-load curves report as p50/p95.
    pub fn latency_quantile_upper(&self, q: f64) -> Option<u64> {
        self.latency_histogram.quantile_upper_bound(q)
    }

    /// Delivered throughput in flits per cycle over `cycles`.
    pub fn throughput(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.flits_ejected as f64 / cycles as f64
        }
    }
}

/// A point-in-time snapshot of every activity counter in the network.
///
/// Snapshots are cheap (a few hundred words) and subtractable, which is how
/// the co-simulation extracts per-window activity for the power model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivitySnapshot {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Per-router activity, indexed by node id.
    pub routers: Vec<RouterActivity>,
    /// Per-node injected flits (NIC activity).
    pub nic_injected: Vec<u64>,
    /// Per-node ejected flits (NIC activity).
    pub nic_ejected: Vec<u64>,
}

impl ActivitySnapshot {
    /// Computes the activity that happened between `earlier` and `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two snapshots come from differently sized networks.
    pub fn delta_since(&self, earlier: &ActivitySnapshot) -> ActivitySnapshot {
        assert_eq!(
            self.routers.len(),
            earlier.routers.len(),
            "snapshots from different networks"
        );
        ActivitySnapshot {
            cycle: self.cycle.saturating_sub(earlier.cycle),
            routers: self
                .routers
                .iter()
                .zip(&earlier.routers)
                .map(|(a, b)| *a - *b)
                .collect(),
            nic_injected: self
                .nic_injected
                .iter()
                .zip(&earlier.nic_injected)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            nic_ejected: self
                .nic_ejected
                .iter()
                .zip(&earlier.nic_ejected)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> RouterActivity {
        RouterActivity {
            buffer_writes: n,
            buffer_reads: n + 1,
            xbar_traversals: n + 2,
            arbitrations: n + 3,
            link_flits: [n, n, n, n, n],
            bit_transitions: 10 * n,
            routes_computed: n / 2,
        }
    }

    #[test]
    fn activity_add_sub_roundtrip() {
        let a = sample(10);
        let b = sample(3);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn activity_sub_saturates() {
        let small = sample(1);
        let big = sample(5);
        let d = small - big;
        assert_eq!(d.buffer_writes, 0);
        assert_eq!(d.link_flits, [0; 5]);
    }

    #[test]
    fn mesh_vs_total_link_flits() {
        let a = sample(2);
        assert_eq!(a.mesh_link_flits(), 8);
        assert_eq!(a.total_link_flits(), 10);
    }

    #[test]
    fn idle_detection() {
        assert!(RouterActivity::default().is_idle());
        assert!(!sample(1).is_idle());
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = LatencyHistogram::default();
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(10); // bucket 3
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets(), &[1, 2, 0, 1]);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for lat in [1u64, 2, 2, 3, 100] {
            h.record(lat);
        }
        // Median of {1,2,2,3,100} is 2 -> bucket 1 -> upper bound 4.
        assert_eq!(h.quantile_upper_bound(0.5), Some(4));
        // The tail sample dominates the max quantile.
        assert_eq!(h.quantile_upper_bound(1.0), Some(128));
    }

    #[test]
    fn histogram_merge_matches_interleaved_recording() {
        let mut merged = LatencyHistogram::default();
        let mut reference = LatencyHistogram::default();
        let mut part = LatencyHistogram::default();
        for lat in [1u64, 3, 9, 200] {
            reference.record(lat);
            merged.record(lat);
        }
        for lat in [2u64, 1000, 4] {
            reference.record(lat);
            part.record(lat);
        }
        merged.merge(&part);
        assert_eq!(merged, reference);
    }

    #[test]
    fn stats_merge_folds_all_fields() {
        let mut a = NetworkStats {
            packets_delivered: 2,
            total_packet_latency: 30,
            max_packet_latency: 20,
            flit_hops: 7,
            ..NetworkStats::default()
        };
        a.latency_histogram.record(10);
        a.latency_histogram.record(20);
        let mut b = NetworkStats {
            packets_delivered: 1,
            total_packet_latency: 50,
            max_packet_latency: 50,
            flits_ejected: 4,
            ..NetworkStats::default()
        };
        b.latency_histogram.record(50);
        a.merge(&b);
        assert_eq!(a.packets_delivered, 3);
        assert_eq!(a.total_packet_latency, 80);
        assert_eq!(a.max_packet_latency, 50);
        assert_eq!(a.flits_ejected, 4);
        assert_eq!(a.flit_hops, 7);
        assert_eq!(a.latency_histogram.count(), 3);
    }

    #[test]
    fn stats_latency_quantile_delegates_to_the_histogram() {
        let mut s = NetworkStats::default();
        assert_eq!(s.latency_quantile_upper(0.5), None);
        for lat in [1u64, 2, 2, 3, 100] {
            s.latency_histogram.record(lat);
        }
        assert_eq!(s.latency_quantile_upper(0.5), Some(4));
        assert_eq!(s.latency_quantile_upper(1.0), Some(128));
    }

    #[test]
    fn stats_latency_and_throughput() {
        let mut s = NetworkStats::default();
        assert_eq!(s.mean_latency(), None);
        s.packets_delivered = 4;
        s.total_packet_latency = 100;
        s.flits_ejected = 50;
        assert_eq!(s.mean_latency(), Some(25.0));
        assert!((s.throughput(100) - 0.5).abs() < 1e-12);
        assert_eq!(s.throughput(0), 0.0);
    }

    #[test]
    fn snapshot_delta() {
        let early = ActivitySnapshot {
            cycle: 100,
            routers: vec![sample(1), sample(2)],
            nic_injected: vec![5, 6],
            nic_ejected: vec![1, 2],
        };
        let late = ActivitySnapshot {
            cycle: 300,
            routers: vec![sample(4), sample(9)],
            nic_injected: vec![15, 16],
            nic_ejected: vec![11, 12],
        };
        let d = late.delta_since(&early);
        assert_eq!(d.cycle, 200);
        assert_eq!(d.routers[0].buffer_writes, 3);
        assert_eq!(d.nic_injected, vec![10, 10]);
        assert_eq!(d.nic_ejected, vec![10, 10]);
    }

    #[test]
    #[should_panic(expected = "different networks")]
    fn snapshot_delta_size_mismatch_panics() {
        let a = ActivitySnapshot {
            cycle: 0,
            routers: vec![sample(1)],
            nic_injected: vec![0],
            nic_ejected: vec![0],
        };
        let b = ActivitySnapshot {
            cycle: 0,
            routers: vec![],
            nic_injected: vec![],
            nic_ejected: vec![],
        };
        let _ = a.delta_since(&b);
    }
}
