//! Deterministic routing algorithms and path enumeration.
//!
//! The paper's NoC uses deterministic dimension-order routing; XY routing on
//! a mesh is deadlock free, which keeps the phased migration of §2.2
//! congestion free and deterministic in time.

use crate::topology::{Coord, Direction, Mesh};
use serde::{Deserialize, Serialize};

/// A deterministic routing algorithm for 2-D meshes.
pub trait Routing {
    /// The output direction a head flit at `cur` destined for `dst` takes.
    /// Returns [`Direction::Local`] when `cur == dst`.
    fn next_hop(&self, cur: Coord, dst: Coord) -> Direction;

    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// Dimension-order X-then-Y routing (deadlock free on meshes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct XyRouting;

impl Routing for XyRouting {
    fn next_hop(&self, cur: Coord, dst: Coord) -> Direction {
        if cur.x < dst.x {
            Direction::East
        } else if cur.x > dst.x {
            Direction::West
        } else if cur.y < dst.y {
            Direction::North
        } else if cur.y > dst.y {
            Direction::South
        } else {
            Direction::Local
        }
    }

    fn name(&self) -> &'static str {
        "xy"
    }
}

/// Dimension-order Y-then-X routing (also deadlock free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct YxRouting;

impl Routing for YxRouting {
    fn next_hop(&self, cur: Coord, dst: Coord) -> Direction {
        if cur.y < dst.y {
            Direction::North
        } else if cur.y > dst.y {
            Direction::South
        } else if cur.x < dst.x {
            Direction::East
        } else if cur.x > dst.x {
            Direction::West
        } else {
            Direction::Local
        }
    }

    fn name(&self) -> &'static str {
        "yx"
    }
}

/// West-first turn-model routing (Glass & Ni): all westward hops are taken
/// first; the remaining (east/north/south) hops follow a deterministic
/// staircase keyed on the current coordinate's parity, which spreads load
/// over multiple minimal paths while honouring the west-first turn
/// restrictions — deadlock-free without virtual-channel escape paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WestFirstRouting;

impl Routing for WestFirstRouting {
    fn next_hop(&self, cur: Coord, dst: Coord) -> Direction {
        if cur.x > dst.x {
            return Direction::West;
        }
        let need_east = cur.x < dst.x;
        let need_north = cur.y < dst.y;
        let need_south = cur.y > dst.y;
        match (need_east, need_north || need_south) {
            (false, false) => Direction::Local,
            (true, false) => Direction::East,
            (false, true) => {
                if need_north {
                    Direction::North
                } else {
                    Direction::South
                }
            }
            (true, true) => {
                // Staircase: alternate X and Y progress by position parity.
                if (cur.x ^ cur.y) & 1 == 0 {
                    Direction::East
                } else if need_north {
                    Direction::North
                } else {
                    Direction::South
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "west-first"
    }
}

/// Enumerable routing algorithm choice (object-safe alternative to generics
/// for configuration files).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingKind {
    /// X-then-Y dimension order routing.
    #[default]
    Xy,
    /// Y-then-X dimension order routing.
    Yx,
    /// West-first turn-model routing with staircase path diversity.
    WestFirst,
}

impl RoutingKind {
    /// Resolves the enum to a routing implementation.
    pub fn algorithm(self) -> Box<dyn Routing + Send + Sync> {
        match self {
            RoutingKind::Xy => Box::new(XyRouting),
            RoutingKind::Yx => Box::new(YxRouting),
            RoutingKind::WestFirst => Box::new(WestFirstRouting),
        }
    }
}

impl Routing for RoutingKind {
    fn next_hop(&self, cur: Coord, dst: Coord) -> Direction {
        match self {
            RoutingKind::Xy => XyRouting.next_hop(cur, dst),
            RoutingKind::Yx => YxRouting.next_hop(cur, dst),
            RoutingKind::WestFirst => WestFirstRouting.next_hop(cur, dst),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            RoutingKind::Xy => "xy",
            RoutingKind::Yx => "yx",
            RoutingKind::WestFirst => "west-first",
        }
    }
}

/// The full sequence of router coordinates a packet visits from `src` to
/// `dst` (inclusive of both), under `algo`.
///
/// Used by the analytic activity model: deterministic routing means link and
/// router traversal counts can be computed without re-running the
/// cycle-accurate simulation for every migration state.
///
/// # Panics
///
/// Panics if `src`/`dst` are outside the mesh or the algorithm fails to make
/// progress (which would indicate a broken `Routing` impl).
pub fn route_path<R: Routing + ?Sized>(mesh: Mesh, algo: &R, src: Coord, dst: Coord) -> Vec<Coord> {
    assert!(mesh.contains(src), "src {src} outside {mesh}");
    assert!(mesh.contains(dst), "dst {dst} outside {mesh}");
    let mut path = vec![src];
    let mut cur = src;
    let budget = mesh.len() * 2 + 2;
    while cur != dst {
        let dir = algo.next_hop(cur, dst);
        let next = mesh
            .neighbor(cur, dir)
            .expect("routing algorithm stepped off the mesh");
        path.push(next);
        cur = next;
        assert!(path.len() <= budget, "routing algorithm failed to converge");
    }
    path
}

/// Number of link traversals between `src` and `dst` under any minimal
/// routing (the Manhattan distance).
pub fn hop_count(src: Coord, dst: Coord) -> u32 {
    src.manhattan(dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_goes_x_first() {
        let r = XyRouting;
        assert_eq!(
            r.next_hop(Coord::new(0, 0), Coord::new(2, 2)),
            Direction::East
        );
        assert_eq!(
            r.next_hop(Coord::new(2, 0), Coord::new(2, 2)),
            Direction::North
        );
        assert_eq!(
            r.next_hop(Coord::new(2, 2), Coord::new(2, 2)),
            Direction::Local
        );
    }

    #[test]
    fn yx_goes_y_first() {
        let r = YxRouting;
        assert_eq!(
            r.next_hop(Coord::new(0, 0), Coord::new(2, 2)),
            Direction::North
        );
        assert_eq!(
            r.next_hop(Coord::new(0, 2), Coord::new(2, 2)),
            Direction::East
        );
    }

    #[test]
    fn route_path_is_minimal() {
        let mesh = Mesh::square(5).unwrap();
        for src in mesh.iter_coords() {
            for dst in mesh.iter_coords() {
                let path = route_path(mesh, &XyRouting, src, dst);
                assert_eq!(path.len() as u32, src.manhattan(dst) + 1);
                assert_eq!(*path.first().unwrap(), src);
                assert_eq!(*path.last().unwrap(), dst);
                for w in path.windows(2) {
                    assert_eq!(w[0].manhattan(w[1]), 1);
                }
            }
        }
    }

    #[test]
    fn xy_and_yx_same_hops_different_paths() {
        let mesh = Mesh::square(4).unwrap();
        let src = Coord::new(0, 0);
        let dst = Coord::new(3, 3);
        let xy = route_path(mesh, &XyRouting, src, dst);
        let yx = route_path(mesh, &YxRouting, src, dst);
        assert_eq!(xy.len(), yx.len());
        assert_ne!(xy, yx);
    }

    #[test]
    fn routing_kind_dispatch() {
        assert_eq!(RoutingKind::Xy.name(), "xy");
        assert_eq!(RoutingKind::Yx.name(), "yx");
        assert_eq!(RoutingKind::WestFirst.name(), "west-first");
        let algo = RoutingKind::Yx.algorithm();
        assert_eq!(
            algo.next_hop(Coord::new(0, 0), Coord::new(1, 1)),
            Direction::North
        );
    }

    #[test]
    fn west_first_routes_west_as_a_prefix() {
        // Turn-model invariant: once a non-west hop is taken, no west hop
        // may follow.
        let mesh = Mesh::square(6).unwrap();
        for src in mesh.iter_coords() {
            for dst in mesh.iter_coords() {
                let path = route_path(mesh, &WestFirstRouting, src, dst);
                let mut seen_non_west = false;
                for w in path.windows(2) {
                    let went_west = w[1].x < w[0].x;
                    if went_west {
                        assert!(
                            !seen_non_west,
                            "west turn after non-west hop: {src} -> {dst}"
                        );
                    } else {
                        seen_non_west = true;
                    }
                }
            }
        }
    }

    #[test]
    fn west_first_is_minimal() {
        let mesh = Mesh::square(5).unwrap();
        for src in mesh.iter_coords() {
            for dst in mesh.iter_coords() {
                let path = route_path(mesh, &WestFirstRouting, src, dst);
                assert_eq!(path.len() as u32, src.manhattan(dst) + 1);
            }
        }
    }

    #[test]
    fn west_first_diversifies_paths() {
        // Two eastbound flows from adjacent sources should not share every
        // link (the point of the staircase).
        let mesh = Mesh::square(5).unwrap();
        let a = route_path(mesh, &WestFirstRouting, Coord::new(0, 0), Coord::new(4, 4));
        let b = route_path(mesh, &WestFirstRouting, Coord::new(0, 1), Coord::new(4, 4));
        let xy_a = route_path(mesh, &XyRouting, Coord::new(0, 0), Coord::new(4, 4));
        assert_ne!(a, xy_a, "staircase should differ from plain XY");
        assert_ne!(a[1..], b[1..], "adjacent sources should diverge");
    }

    #[test]
    fn west_first_delivers_under_traffic() {
        use crate::config::NocConfig;
        use crate::network::Network;
        use crate::traffic::{TrafficGenerator, TrafficPattern};
        let mesh = Mesh::square(4).unwrap();
        let mut net = Network::try_new(mesh, NocConfig::default(), RoutingKind::WestFirst).unwrap();
        let mut gen = TrafficGenerator::new(mesh, TrafficPattern::UniformRandom, 0.08, 4, 5);
        let (offered, drained) = gen.run(&mut net, 2_000, 200_000);
        assert!(drained, "west-first deadlocked or lost flits");
        assert_eq!(net.stats().packets_delivered, offered);
    }
}
