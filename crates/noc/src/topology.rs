//! Mesh topology: coordinates, directions and node identifiers.
//!
//! The paper evaluates 4x4 and 5x5 meshes; this module supports any
//! `width x height` mesh up to 64x64 (the migration unit of §2.3 addresses up
//! to 64 PEs with 3-bit-per-dimension operands, and we keep headroom).

use crate::error::NocError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum mesh side length supported by the simulator.
pub const MAX_DIM: usize = 64;

/// A tile coordinate in the mesh. `x` grows eastwards, `y` grows northwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column index (0 = west edge).
    pub x: u8,
    /// Row index (0 = south edge).
    pub y: u8,
}

impl Coord {
    /// Creates a coordinate. No bounds are applied here; bounds are checked
    /// against a concrete [`Mesh`].
    pub const fn new(x: u8, y: u8) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance between two coordinates.
    ///
    /// ```
    /// use hotnoc_noc::Coord;
    /// assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 2)), 5);
    /// ```
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// One of the five router ports: the four mesh directions plus the local
/// (PE-facing) port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards larger `y`.
    North,
    /// Towards larger `x`.
    East,
    /// Towards smaller `y`.
    South,
    /// Towards smaller `x`.
    West,
    /// The local processing-element port.
    Local,
}

impl Direction {
    /// All five port directions, in index order.
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::Local,
    ];

    /// The four mesh-facing directions (everything but `Local`).
    pub const MESH: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// A stable small index for array storage (North=0 .. Local=4).
    pub const fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The opposite mesh direction. `Local` is its own opposite.
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// Dense identifier of a mesh node (router + attached PE).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// The raw index, usable for `Vec` indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// A rectangular 2-D mesh.
///
/// `Mesh` is a lightweight value type (two bytes); it is freely copied into
/// routers, traffic generators and placement code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    width: u8,
    height: u8,
}

impl Mesh {
    /// Creates a `width x height` mesh.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidMeshDimension`] if either dimension is zero
    /// or larger than [`MAX_DIM`].
    pub fn new(width: usize, height: usize) -> Result<Self, NocError> {
        for dim in [width, height] {
            if dim == 0 || dim > MAX_DIM {
                return Err(NocError::InvalidMeshDimension { dim });
            }
        }
        Ok(Mesh {
            width: width as u8,
            height: height as u8,
        })
    }

    /// Creates a square `n x n` mesh (the paper's 4x4 and 5x5 chips).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidMeshDimension`] for `n == 0` or `n > 64`.
    pub fn square(n: usize) -> Result<Self, NocError> {
        Mesh::new(n, n)
    }

    /// Mesh width in tiles.
    pub const fn width(self) -> usize {
        self.width as usize
    }

    /// Mesh height in tiles.
    pub const fn height(self) -> usize {
        self.height as usize
    }

    /// Total number of nodes.
    pub const fn len(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// `true` for a degenerate zero-node mesh (cannot be constructed through
    /// the public API, but required by clippy's `len` convention).
    pub const fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// `true` if the mesh is square with odd side length (5x5 in the paper).
    /// Rotation and mirroring transforms leave the centre tile of such meshes
    /// in place, which §3 of the paper identifies as the cause of their poor
    /// behaviour on configurations C, D and E.
    pub const fn is_odd_square(self) -> bool {
        self.width == self.height && self.width % 2 == 1
    }

    /// Checks that a coordinate is inside the mesh.
    pub fn contains(self, c: Coord) -> bool {
        (c.x as usize) < self.width() && (c.y as usize) < self.height()
    }

    /// Converts a coordinate to its node id.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::CoordOutOfBounds`] if the coordinate lies outside
    /// the mesh.
    pub fn node_id(self, c: Coord) -> Result<NodeId, NocError> {
        if !self.contains(c) {
            return Err(NocError::CoordOutOfBounds {
                coord: c,
                width: self.width,
                height: self.height,
            });
        }
        Ok(NodeId((c.y as u16) * (self.width as u16) + c.x as u16))
    }

    /// Converts `(x, y)` to a node id.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::CoordOutOfBounds`] if outside the mesh.
    pub fn node_id_at(self, x: u8, y: u8) -> Result<NodeId, NocError> {
        self.node_id(Coord::new(x, y))
    }

    /// Converts a node id back to its coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this mesh (ids are created by
    /// [`Mesh::node_id`] so this indicates misuse across meshes).
    pub fn coord(self, id: NodeId) -> Coord {
        let idx = id.index();
        assert!(idx < self.len(), "node id {id} outside mesh");
        Coord::new((idx % self.width()) as u8, (idx / self.width()) as u8)
    }

    /// The neighbouring coordinate in `dir`, or `None` at the mesh edge or for
    /// [`Direction::Local`].
    pub fn neighbor(self, c: Coord, dir: Direction) -> Option<Coord> {
        let (x, y) = (c.x as i32, c.y as i32);
        let (nx, ny) = match dir {
            Direction::North => (x, y + 1),
            Direction::East => (x + 1, y),
            Direction::South => (x, y - 1),
            Direction::West => (x - 1, y),
            Direction::Local => return None,
        };
        if nx < 0 || ny < 0 {
            return None;
        }
        let n = Coord::new(nx as u8, ny as u8);
        self.contains(n).then_some(n)
    }

    /// Iterates over all coordinates in row-major (node-id) order.
    pub fn iter_coords(self) -> impl Iterator<Item = Coord> {
        let (w, h) = (self.width(), self.height());
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x as u8, y as u8)))
    }

    /// Iterates over all node ids.
    pub fn iter_nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.len()).map(|i| NodeId(i as u16))
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} mesh", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_construction_bounds() {
        assert!(Mesh::new(0, 4).is_err());
        assert!(Mesh::new(4, 0).is_err());
        assert!(Mesh::new(65, 4).is_err());
        assert!(Mesh::new(64, 64).is_ok());
        assert!(Mesh::square(5).is_ok());
    }

    #[test]
    fn node_id_roundtrip() {
        let mesh = Mesh::new(4, 5).unwrap();
        for c in mesh.iter_coords() {
            let id = mesh.node_id(c).unwrap();
            assert_eq!(mesh.coord(id), c);
        }
        assert_eq!(mesh.iter_coords().count(), 20);
    }

    #[test]
    fn node_ids_are_row_major_and_dense() {
        let mesh = Mesh::square(4).unwrap();
        let ids: Vec<usize> = mesh
            .iter_coords()
            .map(|c| mesh.node_id(c).unwrap().index())
            .collect();
        assert_eq!(ids, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mesh = Mesh::square(4).unwrap();
        let err = mesh.node_id(Coord::new(4, 0)).unwrap_err();
        assert!(matches!(err, NocError::CoordOutOfBounds { .. }));
    }

    #[test]
    fn neighbors_at_edges() {
        let mesh = Mesh::square(3).unwrap();
        let corner = Coord::new(0, 0);
        assert_eq!(mesh.neighbor(corner, Direction::West), None);
        assert_eq!(mesh.neighbor(corner, Direction::South), None);
        assert_eq!(
            mesh.neighbor(corner, Direction::North),
            Some(Coord::new(0, 1))
        );
        assert_eq!(
            mesh.neighbor(corner, Direction::East),
            Some(Coord::new(1, 0))
        );
        assert_eq!(mesh.neighbor(corner, Direction::Local), None);
    }

    #[test]
    fn neighbor_is_symmetric() {
        let mesh = Mesh::new(6, 3).unwrap();
        for c in mesh.iter_coords() {
            for dir in Direction::MESH {
                if let Some(n) = mesh.neighbor(c, dir) {
                    assert_eq!(mesh.neighbor(n, dir.opposite()), Some(c));
                }
            }
        }
    }

    #[test]
    fn direction_indices_unique_and_opposites_involutive() {
        let mut seen = [false; 5];
        for d in Direction::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn odd_square_detection() {
        assert!(Mesh::square(5).unwrap().is_odd_square());
        assert!(!Mesh::square(4).unwrap().is_odd_square());
        assert!(!Mesh::new(5, 3).unwrap().is_odd_square());
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(1, 1).manhattan(Coord::new(1, 1)), 0);
        assert_eq!(Coord::new(0, 3).manhattan(Coord::new(3, 0)), 6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Coord::new(2, 3).to_string(), "(2, 3)");
        assert_eq!(Direction::North.to_string(), "N");
        assert_eq!(NodeId::new(7).to_string(), "n7");
        assert_eq!(Mesh::square(4).unwrap().to_string(), "4x4 mesh");
    }
}
