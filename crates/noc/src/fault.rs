//! Runtime fault injection: scheduled router/link failure and repair, plus
//! the surround-routing detour tables used while the fabric is degraded.
//!
//! DyNoC (see PAPERS.md) routes packets around mesh regions whose routers
//! are dynamically disabled. This module reproduces that capability as a
//! first-class runtime event: a [`FaultPlan`] schedules router and link
//! enable/disable transitions at exact cycles, and [`FaultState`] tracks the
//! live/dead view of the fabric plus a per-epoch detour routing table.
//!
//! # Surround routing
//!
//! While any component is disabled, route computation switches from the
//! configured healthy algorithm (plain XY by default) to a detour table
//! rebuilt at every fault epoch. The table encodes up*/down* routing
//! (Autonet-style) over the live subgraph: a BFS spanning forest rooted at
//! the lowest live router id orients every live link "up" (towards the
//! root) or "down", and every route climbs zero or more up-links before
//! descending zero or more down-links. Paths under this discipline surround
//! arbitrary disabled regions, reach every destination the live fabric can
//! reach, and — because the channel-dependency graph of up*/down* paths is
//! acyclic — cannot deadlock, even though detours take non-minimal turns
//! that plain XY forbids. The one bit of per-packet routing state (has this
//! head flit started descending?) travels in the head flit itself and is
//! reset at every fault epoch so each packet re-plans against the current
//! fabric.
//!
//! When the last component is repaired the table is dropped and routing
//! falls back to the healthy algorithm, byte-identical to a network that
//! never had a fault plan installed.

use crate::error::NocError;
use crate::topology::{Coord, Direction, Mesh};

/// One scheduled fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Disable the router at a coordinate (and every flit through it).
    FailRouter(Coord),
    /// Re-enable a previously failed router (restored to power-on state).
    RepairRouter(Coord),
    /// Disable both directions of the link between two adjacent routers.
    FailLink(Coord, Coord),
    /// Re-enable a previously failed link.
    RepairLink(Coord, Coord),
}

/// A fault transition scheduled at an exact cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the transition applies (before any flit moves).
    pub at: u64,
    /// What fails or recovers.
    pub kind: FaultKind,
}

/// A schedule of router/link failures and repairs.
///
/// Events may be pushed in any order; [`crate::Network::install_fault_plan`]
/// sorts them by cycle (stably, so same-cycle events apply in push order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a router failure at `at`.
    pub fn fail_router(mut self, at: u64, router: Coord) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::FailRouter(router),
        });
        self
    }

    /// Schedules a router repair at `at`.
    pub fn repair_router(mut self, at: u64, router: Coord) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::RepairRouter(router),
        });
        self
    }

    /// Schedules a link failure (both directions) at `at`.
    pub fn fail_link(mut self, at: u64, a: Coord, b: Coord) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::FailLink(a, b),
        });
        self
    }

    /// Schedules a link repair at `at`.
    pub fn repair_link(mut self, at: u64, a: Coord, b: Coord) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::RepairLink(a, b),
        });
        self
    }

    /// Appends an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The scheduled events, in push order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every event against `mesh`: coordinates must be in bounds and
    /// link endpoints must be mesh neighbors.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidFaultPlan`] describing the first bad event.
    pub fn validate(&self, mesh: Mesh) -> Result<(), NocError> {
        let side = (mesh.width(), mesh.height());
        let check = |c: Coord| -> Result<(), NocError> {
            if mesh.contains(c) {
                Ok(())
            } else {
                Err(NocError::InvalidFaultPlan {
                    what: format!(
                        "fault plan references router {c} outside the {}x{} mesh",
                        side.0, side.1
                    ),
                })
            }
        };
        for ev in &self.events {
            match ev.kind {
                FaultKind::FailRouter(c) | FaultKind::RepairRouter(c) => check(c)?,
                FaultKind::FailLink(a, b) | FaultKind::RepairLink(a, b) => {
                    check(a)?;
                    check(b)?;
                    if a.manhattan(b) != 1 {
                        return Err(NocError::InvalidFaultPlan {
                            what: format!("fault plan link {a} -- {b} joins non-adjacent routers"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Detour-table entry marker: no legal path (masked out).
const UNREACHABLE: u8 = 0xFF;
/// Detour-table flag: taking this hop switches the packet to the descending
/// phase of its up*/down* route.
const SWITCH_DOWN: u8 = 0x80;
/// Detour-table direction encoding of [`Direction::Local`].
const LOCAL: u8 = 4;

/// The runtime live/dead view of the fabric plus the current detour tables.
///
/// Owned by [`crate::Network`]; rebuilt (serially, at a cycle boundary)
/// every time a fault event changes the fabric, so the parallel allocation
/// sweep only ever reads it immutably.
#[derive(Debug, Clone)]
pub struct FaultState {
    n: usize,
    router_ok: Vec<bool>,
    /// Per-router, per-mesh-direction link enable bits; both directed views
    /// of one link are kept in sync.
    link_ok: Vec<[bool; 4]>,
    disabled_routers: usize,
    disabled_links: usize,
    /// Phase-0 (may still climb) next-hop per `[dst * n + cur]`: low bits a
    /// direction index (4 = Local), [`SWITCH_DOWN`] flag when the hop starts
    /// the descending phase, [`UNREACHABLE`] when no legal path exists.
    table_up: Vec<u8>,
    /// Phase-1 (descending only) next-hop per `[dst * n + cur]`.
    table_down: Vec<u8>,
    /// BFS level of each live router in the current spanning forest
    /// (`u32::MAX` for dead routers); `(level, id)` is the up*/down* key.
    level: Vec<u32>,
}

impl FaultState {
    /// A fully healthy view of `mesh` (no tables allocated).
    pub fn healthy(mesh: Mesh) -> Self {
        let n = mesh.len();
        FaultState {
            n,
            router_ok: vec![true; n],
            link_ok: vec![[true; 4]; n],
            disabled_routers: 0,
            disabled_links: 0,
            table_up: Vec::new(),
            table_down: Vec::new(),
            level: Vec::new(),
        }
    }

    /// `true` while any router or link is disabled (detour tables live).
    pub fn active(&self) -> bool {
        self.disabled_routers + self.disabled_links > 0
    }

    /// Count of currently disabled routers.
    pub fn disabled_routers(&self) -> usize {
        self.disabled_routers
    }

    /// Count of currently disabled links.
    pub fn disabled_links(&self) -> usize {
        self.disabled_links
    }

    /// Whether the router with node index `r` is enabled.
    pub fn router_enabled(&self, r: usize) -> bool {
        self.router_ok[r]
    }

    /// Whether the directed link leaving router `r` towards mesh direction
    /// `dir` is enabled (the reverse direction always agrees).
    pub fn link_enabled(&self, r: usize, dir: Direction) -> bool {
        self.link_ok[r][dir.index()]
    }

    /// Flips a router's enable bit; returns `true` if the state changed.
    pub(crate) fn set_router(&mut self, r: usize, enabled: bool) -> bool {
        if self.router_ok[r] == enabled {
            return false;
        }
        self.router_ok[r] = enabled;
        if enabled {
            self.disabled_routers -= 1;
        } else {
            self.disabled_routers += 1;
        }
        true
    }

    /// Flips a link's enable bit (both directed views); returns `true` if
    /// the state changed. `r` and `dir` identify one directed view; the
    /// caller guarantees the neighbor exists.
    pub(crate) fn set_link(&mut self, mesh: Mesh, r: usize, dir: Direction, enabled: bool) -> bool {
        let d = dir.index();
        if self.link_ok[r][d] == enabled {
            return false;
        }
        let nb = mesh
            .neighbor(mesh.coord(crate::topology::NodeId::new(r as u16)), dir)
            .expect("link endpoints are mesh neighbors");
        let nb = mesh.node_id(nb).expect("neighbor inside mesh").index();
        self.link_ok[r][d] = enabled;
        self.link_ok[nb][dir.opposite().index()] = enabled;
        if enabled {
            self.disabled_links -= 1;
        } else {
            self.disabled_links += 1;
        }
        true
    }

    /// Whether a head flit at router `cur` may take `dir` under the current
    /// fabric (the downstream router and the link must both be live).
    pub fn move_allowed(&self, mesh: Mesh, cur: usize, dir: Direction) -> bool {
        if dir == Direction::Local {
            return self.router_ok[cur];
        }
        if !self.link_ok[cur][dir.index()] {
            return false;
        }
        let c = mesh.coord(crate::topology::NodeId::new(cur as u16));
        match mesh.neighbor(c, dir) {
            Some(nb) => {
                let nb = mesh.node_id(nb).expect("neighbor inside mesh").index();
                self.router_ok[nb]
            }
            None => false,
        }
    }

    /// Whether a legal detour path exists from `cur` to `dst`. Always true
    /// while the fabric is healthy.
    pub fn reachable(&self, cur: usize, dst: usize) -> bool {
        if !self.active() {
            return true;
        }
        self.table_up[dst * self.n + cur] != UNREACHABLE
    }

    /// Whether the live channel `from -> to` descends the current up*/down*
    /// orientation (the key `(level, id)` increases). Always false while the
    /// fabric is healthy or when either endpoint is dead. A packet resting
    /// in the downstream buffer of a descending channel must resume in the
    /// descending phase — that residency constraint is what keeps the
    /// channel-dependency graph acyclic across reconfiguration epochs.
    pub(crate) fn channel_descends(&self, from: usize, to: usize) -> bool {
        if !self.active() || !self.router_ok[from] || !self.router_ok[to] {
            return false;
        }
        (self.level[to], to) > (self.level[from], from)
    }

    /// Whether `dst` is reachable from `cur` by descending moves alone.
    pub(crate) fn down_reachable(&self, cur: usize, dst: usize) -> bool {
        if !self.active() {
            return true;
        }
        self.table_down[dst * self.n + cur] != UNREACHABLE
    }

    /// The detour next hop for a head flit at node `cur` bound for `dst`,
    /// given whether the packet has already started its descending phase.
    /// Returns the direction plus the updated phase, or `None` if `dst` is
    /// unreachable (such packets are purged at fault-application time, so
    /// the allocation sweep never observes this).
    pub fn next_hop(&self, cur: usize, dst: usize, down_phase: bool) -> Option<(Direction, bool)> {
        let entry = if down_phase {
            self.table_down[dst * self.n + cur]
        } else {
            self.table_up[dst * self.n + cur]
        };
        if entry == UNREACHABLE {
            return None;
        }
        let dir_bits = entry & !SWITCH_DOWN;
        let dir = if dir_bits == LOCAL {
            Direction::Local
        } else {
            Direction::MESH[dir_bits as usize]
        };
        Some((dir, down_phase || entry & SWITCH_DOWN != 0))
    }

    /// Walks the detour route from `src` to `dst` as the per-hop lookups
    /// would, returning the visited coordinates (inclusive) or `None` when
    /// unreachable. Exposed for the property-test battery.
    pub fn detour_path(&self, mesh: Mesh, src: Coord, dst: Coord) -> Option<Vec<Coord>> {
        let dst_id = mesh.node_id(dst).expect("dst inside mesh").index();
        let mut cur = src;
        let mut down = false;
        let mut path = vec![src];
        // An up*/down* path visits each (node, phase) state at most once.
        let budget = 2 * self.n + 2;
        loop {
            let cur_id = mesh.node_id(cur).expect("path stays inside mesh").index();
            let (dir, next_down) = self.next_hop(cur_id, dst_id, down)?;
            if dir == Direction::Local {
                return Some(path);
            }
            down = next_down;
            cur = mesh.neighbor(cur, dir).expect("detour stays on the mesh");
            path.push(cur);
            assert!(path.len() <= budget, "detour route failed to converge");
        }
    }

    /// Rebuilds the detour tables for the current fabric (dropping them when
    /// fully healthy). Called once per fault event batch, never during the
    /// allocation sweep.
    pub(crate) fn rebuild(&mut self, mesh: Mesh) {
        if !self.active() {
            self.table_up = Vec::new();
            self.table_down = Vec::new();
            self.level = Vec::new();
            return;
        }
        let n = self.n;
        // Live adjacency: nbr[v][d] = Some(u) iff the link and both routers
        // are enabled.
        let nbr: Vec<[Option<u32>; 4]> = (0..n)
            .map(|v| {
                let c = mesh.coord(crate::topology::NodeId::new(v as u16));
                std::array::from_fn(|d| {
                    if !self.router_ok[v] || !self.link_ok[v][d] {
                        return None;
                    }
                    let dir = Direction::MESH[d];
                    mesh.neighbor(c, dir).and_then(|nc| {
                        let u = mesh.node_id(nc).expect("neighbor inside mesh").index();
                        self.router_ok[u].then_some(u as u32)
                    })
                })
            })
            .collect();

        // BFS spanning forest: one root (the lowest live id) per connected
        // component; key(v) = (level, id) orients every live link.
        const NO_LEVEL: u32 = u32::MAX;
        let mut level = vec![NO_LEVEL; n];
        let mut queue = std::collections::VecDeque::new();
        for root in 0..n {
            if !self.router_ok[root] || level[root] != NO_LEVEL {
                continue;
            }
            level[root] = 0;
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                for u in nbr[v].iter().flatten() {
                    let u = *u as usize;
                    if level[u] == NO_LEVEL {
                        level[u] = level[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
        }
        let key = |v: usize| (level[v], v as u32);

        // Live node ids in ascending key order (the up-edge DAG order).
        let mut by_key: Vec<u32> = (0..n as u32)
            .filter(|&v| self.router_ok[v as usize])
            .collect();
        by_key.sort_unstable_by_key(|&v| key(v as usize));

        self.table_up = vec![UNREACHABLE; n * n];
        self.table_down = vec![UNREACHABLE; n * n];
        const INF: u32 = u32::MAX;
        let mut d_down = vec![INF; n];
        let mut d_any = vec![INF; n];
        for &dst in &by_key {
            let dst = dst as usize;
            // Down-only distances to dst: backward BFS along reversed
            // down-edges (u -> w is "down" iff key(w) > key(u)).
            for x in d_down.iter_mut() {
                *x = INF;
            }
            d_down[dst] = 0;
            queue.clear();
            queue.push_back(dst);
            while let Some(w) = queue.pop_front() {
                for u in nbr[w].iter().flatten() {
                    let u = *u as usize;
                    if key(w) > key(u) && d_down[u] == INF {
                        d_down[u] = d_down[w] + 1;
                        queue.push_back(u);
                    }
                }
            }
            // Full up*-then-down* distances: up-edges form a DAG under key
            // order, so one ascending pass relaxes them all.
            d_any.copy_from_slice(&d_down);
            for &v in &by_key {
                let v = v as usize;
                let mut best = d_any[v];
                for u in nbr[v].iter().flatten() {
                    let u = *u as usize;
                    if key(u) < key(v) && d_any[u] != INF {
                        best = best.min(1 + d_any[u]);
                    }
                }
                d_any[v] = best;
            }
            // Next-hop selection: the lowest direction index achieving the
            // remaining distance, switching phase when the chosen hop
            // descends.
            let row = dst * n;
            for &v in &by_key {
                let v = v as usize;
                if v == dst {
                    self.table_up[row + v] = LOCAL;
                    self.table_down[row + v] = LOCAL;
                    continue;
                }
                if d_any[v] != INF {
                    let want = d_any[v] - 1;
                    for (d, u) in nbr[v].iter().enumerate() {
                        let Some(u) = u else { continue };
                        let u = *u as usize;
                        let up = key(u) < key(v);
                        if up && d_any[u] == want {
                            self.table_up[row + v] = d as u8;
                            break;
                        }
                        if !up && d_down[u] == want {
                            self.table_up[row + v] = d as u8 | SWITCH_DOWN;
                            break;
                        }
                    }
                    debug_assert_ne!(self.table_up[row + v], UNREACHABLE);
                }
                if d_down[v] != INF && d_down[v] > 0 {
                    let want = d_down[v] - 1;
                    for (d, u) in nbr[v].iter().enumerate() {
                        let Some(u) = u else { continue };
                        let u = *u as usize;
                        if key(u) > key(v) && d_down[u] == want {
                            self.table_down[row + v] = d as u8;
                            break;
                        }
                    }
                    debug_assert_ne!(self.table_down[row + v], UNREACHABLE);
                }
            }
        }
        self.level = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_faults(
        mesh: Mesh,
        routers: &[Coord],
        links: &[(Coord, Direction)],
    ) -> FaultState {
        let mut s = FaultState::healthy(mesh);
        for &c in routers {
            let id = mesh.node_id(c).unwrap().index();
            assert!(s.set_router(id, false));
        }
        for &(c, dir) in links {
            let id = mesh.node_id(c).unwrap().index();
            assert!(s.set_link(mesh, id, dir, false));
        }
        s.rebuild(mesh);
        s
    }

    #[test]
    fn healthy_state_is_inactive_and_fully_reachable() {
        let mesh = Mesh::square(4).unwrap();
        let s = FaultState::healthy(mesh);
        assert!(!s.active());
        assert!(s.reachable(0, 15));
        assert!(s.router_enabled(7));
        assert!(s.link_enabled(0, Direction::East));
    }

    #[test]
    fn single_dead_router_is_surrounded() {
        let mesh = Mesh::square(5).unwrap();
        let dead = Coord::new(2, 2);
        let s = state_with_faults(mesh, &[dead], &[]);
        assert_eq!(s.disabled_routers(), 1);
        for src in mesh.iter_coords() {
            for dst in mesh.iter_coords() {
                if src == dead || dst == dead {
                    continue;
                }
                let path = s.detour_path(mesh, src, dst).expect("live pairs reachable");
                assert_eq!(path[0], src);
                assert_eq!(*path.last().unwrap(), dst);
                assert!(path.iter().all(|&c| c != dead), "{src}->{dst} crossed dead");
                for w in path.windows(2) {
                    assert_eq!(w[0].manhattan(w[1]), 1);
                }
            }
        }
    }

    #[test]
    fn detours_are_up_down_legal() {
        // Once a path starts descending (key increases) it never climbs
        // again — the invariant that makes the detours deadlock free.
        let mesh = Mesh::square(6).unwrap();
        let s = state_with_faults(
            mesh,
            &[Coord::new(2, 2), Coord::new(3, 2), Coord::new(2, 3)],
            &[(Coord::new(0, 4), Direction::East)],
        );
        for src in mesh.iter_coords() {
            for dst in mesh.iter_coords() {
                let (sid, did) = (
                    mesh.node_id(src).unwrap().index(),
                    mesh.node_id(dst).unwrap().index(),
                );
                if !s.router_enabled(sid) || !s.router_enabled(did) {
                    continue;
                }
                let path = s.detour_path(mesh, src, dst).expect("mesh stays connected");
                let mut cur = sid;
                let mut phase = false;
                for w in path.windows(2) {
                    let next = mesh.node_id(w[1]).unwrap().index();
                    let dir = Direction::MESH
                        .into_iter()
                        .find(|&d| mesh.neighbor(w[0], d) == Some(w[1]))
                        .unwrap();
                    let (got, next_phase) = s.next_hop(cur, did, phase).unwrap();
                    assert_eq!(got, dir);
                    phase = next_phase;
                    cur = next;
                }
                // Phase monotonicity is enforced by next_hop's signature;
                // reaching dst within the walk budget is the assertion.
                assert_eq!(*path.last().unwrap(), dst);
            }
        }
    }

    #[test]
    fn disconnected_corner_is_unreachable_and_masked() {
        // Killing (1,0) and (0,1) isolates corner (0,0).
        let mesh = Mesh::square(4).unwrap();
        let s = state_with_faults(mesh, &[Coord::new(1, 0), Coord::new(0, 1)], &[]);
        let corner = mesh.node_id(Coord::new(0, 0)).unwrap().index();
        let far = mesh.node_id(Coord::new(3, 3)).unwrap().index();
        assert!(!s.reachable(corner, far));
        assert!(!s.reachable(far, corner));
        assert!(s.reachable(corner, corner));
        assert!(s.next_hop(far, corner, false).is_none());
        // The rest of the mesh still routes.
        let a = mesh.node_id(Coord::new(2, 0)).unwrap().index();
        assert!(s.reachable(a, far));
    }

    #[test]
    fn dead_link_is_avoided() {
        let mesh = Mesh::square(4).unwrap();
        let a = Coord::new(1, 1);
        let s = state_with_faults(mesh, &[], &[(a, Direction::East)]);
        assert_eq!(s.disabled_links(), 1);
        assert!(!s.link_enabled(mesh.node_id(a).unwrap().index(), Direction::East));
        // The reverse view agrees.
        let b = mesh.node_id(Coord::new(2, 1)).unwrap().index();
        assert!(!s.link_enabled(b, Direction::West));
        for src in mesh.iter_coords() {
            for dst in mesh.iter_coords() {
                let path = s.detour_path(mesh, src, dst).expect("still connected");
                for w in path.windows(2) {
                    let crosses = (w[0] == a && w[1] == Coord::new(2, 1))
                        || (w[1] == a && w[0] == Coord::new(2, 1));
                    assert!(!crosses, "{src}->{dst} used the dead link");
                }
            }
        }
    }

    #[test]
    fn repair_restores_inactive_state() {
        let mesh = Mesh::square(4).unwrap();
        let mut s = FaultState::healthy(mesh);
        let id = mesh.node_id(Coord::new(1, 1)).unwrap().index();
        assert!(s.set_router(id, false));
        s.rebuild(mesh);
        assert!(s.active());
        assert!(s.set_router(id, true));
        s.rebuild(mesh);
        assert!(!s.active());
        assert!(s.table_up.is_empty(), "healthy state drops its tables");
        // Idempotent flips report no change.
        assert!(!s.set_router(id, true));
    }

    #[test]
    fn repair_before_any_fail_is_accepted_and_a_runtime_no_op() {
        // Pinned semantics: a repair scheduled before (or without) any
        // matching fail event is NOT a plan error. `validate` checks only
        // coordinates and adjacency, so such a plan is accepted, and
        // applying the repair to a live component reports "no change" —
        // the run is byte-identical to one without the event. This keeps
        // plan validation stateless (events may be pushed in any order and
        // are only sorted at install time).
        let mesh = Mesh::square(4).unwrap();
        let plan = FaultPlan::new()
            .repair_router(5, Coord::new(1, 1))
            .repair_link(7, Coord::new(0, 0), Coord::new(1, 0));
        assert!(plan.validate(mesh).is_ok());

        let mut s = FaultState::healthy(mesh);
        let id = mesh.node_id(Coord::new(1, 1)).unwrap().index();
        assert!(
            !s.set_router(id, true),
            "repairing a live router must report no state change"
        );
        let a = mesh.node_id(Coord::new(0, 0)).unwrap().index();
        assert!(
            !s.set_link(mesh, a, Direction::East, true),
            "repairing a live link must report no state change"
        );
        assert!(!s.active(), "no-op repairs must not activate detour tables");
        assert_eq!(s.disabled_routers(), 0);
        assert_eq!(s.disabled_links(), 0);

        // Out-of-bounds coordinates are still rejected, even on repairs.
        let oob = FaultPlan::new().repair_router(5, Coord::new(9, 9));
        assert!(oob.validate(mesh).is_err());
        let nonadj = FaultPlan::new().repair_link(5, Coord::new(0, 0), Coord::new(2, 0));
        assert!(nonadj.validate(mesh).is_err());
    }

    #[test]
    fn plan_validation_catches_bad_events() {
        let mesh = Mesh::square(4).unwrap();
        let ok = FaultPlan::new()
            .fail_router(10, Coord::new(1, 1))
            .fail_link(20, Coord::new(0, 0), Coord::new(1, 0))
            .repair_router(400, Coord::new(1, 1));
        assert!(ok.validate(mesh).is_ok());
        assert_eq!(ok.events().len(), 3);

        let oob = FaultPlan::new().fail_router(5, Coord::new(9, 0));
        let err = oob.validate(mesh).unwrap_err();
        assert!(err.to_string().contains("outside the 4x4 mesh"), "{err}");

        let nonadj = FaultPlan::new().fail_link(5, Coord::new(0, 0), Coord::new(2, 0));
        let err = nonadj.validate(mesh).unwrap_err();
        assert!(err.to_string().contains("non-adjacent"), "{err}");
    }
}
