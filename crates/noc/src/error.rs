//! Error types for the NoC simulator.

use crate::topology::Coord;
use std::error::Error;
use std::fmt;

/// Errors returned by the NoC simulator's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A coordinate lies outside the mesh.
    CoordOutOfBounds {
        /// The offending coordinate.
        coord: Coord,
        /// Mesh width in tiles.
        width: u8,
        /// Mesh height in tiles.
        height: u8,
    },
    /// A mesh dimension was zero or exceeded the supported maximum.
    InvalidMeshDimension {
        /// The offending dimension value.
        dim: usize,
    },
    /// A packet declared zero flits.
    EmptyPacket,
    /// The requested virtual-channel index does not exist.
    InvalidVirtualChannel {
        /// Requested VC index.
        vc: u8,
        /// Number of VCs configured.
        num_vcs: u8,
    },
    /// The simulation did not drain within the given cycle budget.
    Timeout {
        /// The cycle budget that was exhausted.
        budget: u64,
        /// Flits still in flight when the budget ran out.
        in_flight: u64,
    },
    /// A configuration value is out of its legal range.
    InvalidConfig {
        /// Human-readable description of the problem.
        what: &'static str,
    },
    /// A fault plan references components the mesh does not have.
    InvalidFaultPlan {
        /// Human-readable description of the problem.
        what: String,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::CoordOutOfBounds {
                coord,
                width,
                height,
            } => write!(f, "coordinate {coord} outside {width}x{height} mesh bounds"),
            NocError::InvalidMeshDimension { dim } => {
                write!(f, "invalid mesh dimension {dim} (must be 1..=64)")
            }
            NocError::EmptyPacket => write!(f, "packet must contain at least one flit"),
            NocError::InvalidVirtualChannel { vc, num_vcs } => {
                write!(
                    f,
                    "virtual channel {vc} out of range (configured {num_vcs})"
                )
            }
            NocError::Timeout { budget, in_flight } => write!(
                f,
                "network failed to drain within {budget} cycles ({in_flight} flits in flight)"
            ),
            NocError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            NocError::InvalidFaultPlan { what } => write!(f, "invalid fault plan: {what}"),
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let errors = [
            NocError::CoordOutOfBounds {
                coord: Coord::new(9, 9),
                width: 4,
                height: 4,
            },
            NocError::InvalidMeshDimension { dim: 0 },
            NocError::EmptyPacket,
            NocError::InvalidVirtualChannel { vc: 3, num_vcs: 2 },
            NocError::Timeout {
                budget: 100,
                in_flight: 7,
            },
            NocError::InvalidConfig {
                what: "buffer depth",
            },
            NocError::InvalidFaultPlan {
                what: "router (9, 9) outside mesh".to_string(),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NocError>();
    }
}
