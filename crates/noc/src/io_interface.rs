//! Chip I/O boundary with transparent address transformation.
//!
//! §2.3 of the paper: *"the simplicity and predictability of the migration
//! functions ... allows for a simplified I/O interface to the outside of the
//! chip, by transforming the destination address assigned to all incoming
//! packets and transforming the source address of all packets leaving the
//! chip. By including a migration unit at the I/O interface, the migration
//! operation is totally transparent to the outside world."*
//!
//! [`AddressMap`] is that migration unit's interface: the network applies
//! `logical_to_physical` to the destination of every externally injected
//! packet, and `physical_to_logical` to the source of every packet handed to
//! the outside. The `hotnoc-reconfig` crate provides the implementation that
//! tracks the cumulative migration state.

use crate::topology::Coord;
use std::fmt::Debug;

/// Bidirectional mapping between logical workload positions (what the outside
/// world addresses) and physical tile positions (where the workload currently
/// executes).
///
/// Implementations must be bijections on the mesh: every logical coordinate
/// maps to exactly one physical coordinate and back.
pub trait AddressMap: Debug + Send + Sync {
    /// Where the workload logically at `logical` currently physically lives.
    fn logical_to_physical(&self, logical: Coord) -> Coord;

    /// Which logical workload currently lives at physical tile `physical`.
    fn physical_to_logical(&self, physical: Coord) -> Coord;
}

/// The identity mapping: the chip has never migrated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityMap;

impl AddressMap for IdentityMap {
    fn logical_to_physical(&self, logical: Coord) -> Coord {
        logical
    }

    fn physical_to_logical(&self, physical: Coord) -> Coord {
        physical
    }
}

/// Checks the bijection property of an [`AddressMap`] over a mesh, returning
/// the first violating coordinate if any. Useful for validating custom maps
/// in tests and debug assertions.
pub fn check_bijection<M: AddressMap + ?Sized>(
    map: &M,
    mesh: crate::topology::Mesh,
) -> Option<Coord> {
    let mut seen = vec![false; mesh.len()];
    for c in mesh.iter_coords() {
        let p = map.logical_to_physical(c);
        if !mesh.contains(p) {
            return Some(c);
        }
        let idx = mesh.node_id(p).expect("checked contains").index();
        if seen[idx] {
            return Some(c);
        }
        seen[idx] = true;
        if map.physical_to_logical(p) != c {
            return Some(c);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh;

    #[test]
    fn identity_is_bijective() {
        let mesh = Mesh::square(5).unwrap();
        assert_eq!(check_bijection(&IdentityMap, mesh), None);
    }

    #[derive(Debug)]
    struct Broken;

    impl AddressMap for Broken {
        fn logical_to_physical(&self, _logical: Coord) -> Coord {
            Coord::new(0, 0)
        }
        fn physical_to_logical(&self, physical: Coord) -> Coord {
            physical
        }
    }

    #[test]
    fn broken_map_detected() {
        let mesh = Mesh::square(3).unwrap();
        assert!(check_bijection(&Broken, mesh).is_some());
    }

    #[derive(Debug)]
    struct OffMesh;

    impl AddressMap for OffMesh {
        fn logical_to_physical(&self, logical: Coord) -> Coord {
            Coord::new(logical.x + 100, logical.y)
        }
        fn physical_to_logical(&self, physical: Coord) -> Coord {
            physical
        }
    }

    #[test]
    fn off_mesh_map_detected() {
        let mesh = Mesh::square(3).unwrap();
        assert_eq!(check_bijection(&OffMesh, mesh), Some(Coord::new(0, 0)));
    }
}
