//! Packets and flits.
//!
//! Messages travel the network as packets that are serialized into flits
//! (flow-control digits). The head flit carries routing information; wormhole
//! switching lets the body follow the path the head reserves.

use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique packet identifier (unique within one [`crate::Network`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Traffic class of a packet. The class selects the virtual channel used,
/// keeping reconfiguration traffic (configuration and PE state, §2.1 of the
/// paper) separated from application data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketClass {
    /// Application data (LDPC messages in the paper's workload).
    Data,
    /// Configuration stream moved during a migration.
    Config,
    /// PE architectural state moved during a migration.
    State,
    /// Control messages (barriers, halt/resume).
    Control,
}

impl PacketClass {
    /// Virtual channel used by this class given `num_vcs` configured channels.
    ///
    /// With a single VC everything shares channel 0; with two or more, the
    /// migration traffic (`Config`/`State`/`Control`) uses channel 1 so that
    /// it cannot be blocked behind in-flight data.
    pub fn virtual_channel(self, num_vcs: u8) -> u8 {
        match self {
            PacketClass::Data => 0,
            _ => 1.min(num_vcs.saturating_sub(1)),
        }
    }
}

impl fmt::Display for PacketClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PacketClass::Data => "data",
            PacketClass::Config => "config",
            PacketClass::State => "state",
            PacketClass::Control => "control",
        };
        f.write_str(s)
    }
}

/// A network packet prior to serialization into flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id (assigned by the creator; the network checks uniqueness only
    /// in debug builds).
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Traffic class.
    pub class: PacketClass,
    /// Length in flits (>= 1).
    pub len_flits: u32,
    /// Payload seed; flit payloads are derived from it so that bit-level
    /// switching estimates are reproducible.
    pub payload: u64,
}

impl Packet {
    /// Creates a packet. Prefer this over struct literal syntax so the
    /// payload seed defaults deterministically from the id.
    pub fn new(id: u64, src: NodeId, dst: NodeId, class: PacketClass, len_flits: u32) -> Self {
        Packet {
            id: PacketId(id),
            src,
            dst,
            class,
            len_flits,
            payload: id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }
}

/// Position of a flit inside its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries the route.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases the wormhole.
    Tail,
    /// Only flit of a single-flit packet (head and tail at once).
    Single,
}

/// A flow-control digit: the unit moved per link per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Source node of the packet.
    pub src: NodeId,
    /// Destination node of the packet.
    pub dst: NodeId,
    /// Traffic class of the packet.
    pub class: PacketClass,
    /// Sequence number within the packet (0-based).
    pub seq: u32,
    /// Packet length in flits.
    pub len: u32,
    /// Virtual channel this flit travels on.
    pub vc: u8,
    /// Cycle at which the head flit was injected (for latency accounting).
    pub inject_cycle: u64,
    /// Payload word (used for bit-switching statistics, not interpreted).
    pub payload: u64,
    /// Surround-routing phase: `true` once the packet has entered the
    /// descending half of its up*/down* detour route. Always `false` on a
    /// healthy fabric, and reset network-wide at every fault epoch.
    pub down_phase: bool,
}

impl Flit {
    /// The kind of this flit, derived from its position in the packet.
    pub fn kind(&self) -> FlitKind {
        match (self.seq, self.len) {
            (0, 1) => FlitKind::Single,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        }
    }

    /// `true` for head or single flits (the ones that allocate a route).
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    /// `true` for tail or single flits (the ones that release the route).
    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.len
    }
}

/// Serializes a packet into its flits.
///
/// The per-flit payloads are produced with a splitmix-style generator from the
/// packet's payload seed, so two identical packets produce identical bit
/// streams (reproducible switching-activity estimates).
pub fn packetize(packet: &Packet, num_vcs: u8, inject_cycle: u64) -> Vec<Flit> {
    let vc = packet.class.virtual_channel(num_vcs);
    let mut state = packet.payload;
    (0..packet.len_flits)
        .map(|seq| {
            state = state
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            Flit {
                packet: packet.id,
                src: packet.src,
                dst: packet.dst,
                class: packet.class,
                seq,
                len: packet.len_flits,
                vc,
                inject_cycle,
                payload: state,
                down_phase: false,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_packet(len: u32) -> Packet {
        Packet::new(42, NodeId::new(0), NodeId::new(5), PacketClass::Data, len)
    }

    #[test]
    fn flit_kinds_single() {
        let flits = packetize(&mk_packet(1), 2, 0);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind(), FlitKind::Single);
        assert!(flits[0].is_head() && flits[0].is_tail());
    }

    #[test]
    fn flit_kinds_multi() {
        let flits = packetize(&mk_packet(4), 2, 7);
        let kinds: Vec<FlitKind> = flits.iter().map(Flit::kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlitKind::Head,
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Tail
            ]
        );
        assert!(flits.iter().all(|f| f.inject_cycle == 7));
        assert!(flits.iter().all(|f| f.len == 4));
    }

    #[test]
    fn packetize_is_deterministic() {
        let a = packetize(&mk_packet(8), 2, 0);
        let b = packetize(&mk_packet(8), 2, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn payloads_differ_between_flits() {
        let flits = packetize(&mk_packet(8), 2, 0);
        for w in flits.windows(2) {
            assert_ne!(w[0].payload, w[1].payload);
        }
    }

    #[test]
    fn class_vc_assignment() {
        assert_eq!(PacketClass::Data.virtual_channel(2), 0);
        assert_eq!(PacketClass::State.virtual_channel(2), 1);
        assert_eq!(PacketClass::Config.virtual_channel(1), 0);
        assert_eq!(PacketClass::Control.virtual_channel(4), 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(PacketId(3).to_string(), "p3");
        assert_eq!(PacketClass::State.to_string(), "state");
    }
}
