//! Synthetic traffic patterns for validation and benchmarking.
//!
//! The paper's workload is the LDPC decoder (crate `hotnoc-ldpc`); these
//! patterns exercise the simulator independently and drive the engineering
//! benchmarks (router saturation, latency/load curves).

use crate::flit::{Packet, PacketClass};
use crate::network::Network;
use crate::topology::{Coord, Mesh, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A classical synthetic destination pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Destination chosen uniformly at random (excluding the source).
    UniformRandom,
    /// `(x, y) -> (y, x)`.
    Transpose,
    /// `(x, y) -> (W-1-x, H-1-y)`.
    BitComplement,
    /// `(x, y) -> ((x + W/2) % W, y)`: worst case for ring-like traffic.
    Tornado,
    /// Nearest-neighbour: destination is the east neighbour (wrapping).
    Neighbor,
    /// A fraction of traffic targets a fixed set of hotspot nodes; the rest
    /// is uniform random.
    Hotspot {
        /// The oversubscribed destinations.
        nodes: Vec<Coord>,
        /// Probability that a packet targets a hotspot node (0..=1).
        fraction: f64,
    },
}

impl TrafficPattern {
    /// Picks a destination for a packet originating at `src`.
    pub fn destination(&self, mesh: Mesh, src: Coord, rng: &mut StdRng) -> Coord {
        let (w, h) = (mesh.width() as u8, mesh.height() as u8);
        match self {
            TrafficPattern::UniformRandom => loop {
                let d = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
                if d != src {
                    return d;
                }
            },
            TrafficPattern::Transpose => Coord::new(src.y.min(w - 1), src.x.min(h - 1)),
            TrafficPattern::BitComplement => Coord::new(w - 1 - src.x, h - 1 - src.y),
            TrafficPattern::Tornado => Coord::new((src.x + w / 2) % w, src.y),
            TrafficPattern::Neighbor => Coord::new((src.x + 1) % w, src.y),
            TrafficPattern::Hotspot { nodes, fraction } => {
                if !nodes.is_empty() && rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    nodes[rng.gen_range(0..nodes.len())]
                } else {
                    TrafficPattern::UniformRandom.destination(mesh, src, rng)
                }
            }
        }
    }
}

/// Open-loop Bernoulli traffic generator: every node independently injects a
/// packet with probability `rate` per cycle.
#[derive(Debug)]
pub struct TrafficGenerator {
    mesh: Mesh,
    pattern: TrafficPattern,
    /// Packets per node per cycle (0..=1).
    rate: f64,
    packet_len: u32,
    rng: StdRng,
    next_id: u64,
}

impl TrafficGenerator {
    /// Creates a generator with a fixed seed (reproducible).
    pub fn new(mesh: Mesh, pattern: TrafficPattern, rate: f64, packet_len: u32, seed: u64) -> Self {
        TrafficGenerator {
            mesh,
            pattern,
            rate: rate.clamp(0.0, 1.0),
            packet_len: packet_len.max(1),
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Number of packets generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// The offered load: packets per node per cycle (0..=1).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Re-targets the offered load mid-run (clamped to 0..=1). Load sweeps
    /// reuse one generator across operating points without re-seeding.
    pub fn set_rate(&mut self, rate: f64) {
        self.rate = rate.clamp(0.0, 1.0);
    }

    /// Injects this cycle's packets into `net`. Returns how many were
    /// injected.
    ///
    /// # Panics
    ///
    /// Panics if the generator's mesh differs from the network's.
    pub fn tick(&mut self, net: &mut Network) -> u64 {
        assert_eq!(self.mesh, net.mesh(), "generator/network mesh mismatch");
        let mut injected = 0;
        for src in self.mesh.iter_coords() {
            if !self.rng.gen_bool(self.rate) {
                continue;
            }
            let dst = self.pattern.destination(self.mesh, src, &mut self.rng);
            if dst == src {
                continue;
            }
            let src_id: NodeId = self.mesh.node_id(src).expect("src in mesh");
            let dst_id: NodeId = self.mesh.node_id(dst).expect("dst in mesh");
            let p = Packet::new(
                self.next_id,
                src_id,
                dst_id,
                PacketClass::Data,
                self.packet_len,
            );
            self.next_id += 1;
            net.inject(p).expect("generated packet is valid");
            injected += 1;
        }
        injected
    }

    /// Runs `cycles` of open-loop injection + simulation, then drains.
    ///
    /// Returns `(offered, drained_ok)`: the number of packets offered and
    /// whether the network drained within the post-run budget.
    pub fn run(&mut self, net: &mut Network, cycles: u64, drain_budget: u64) -> (u64, bool) {
        let mut offered = 0;
        for _ in 0..cycles {
            offered += self.tick(net);
            net.step();
        }
        let ok = net.run_until_idle(drain_budget).is_ok();
        (offered, ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;

    fn mesh() -> Mesh {
        Mesh::square(4).unwrap()
    }

    #[test]
    fn patterns_stay_in_mesh() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(7);
        let patterns = [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Tornado,
            TrafficPattern::Neighbor,
            TrafficPattern::Hotspot {
                nodes: vec![Coord::new(1, 1)],
                fraction: 0.8,
            },
        ];
        for p in &patterns {
            for src in m.iter_coords() {
                for _ in 0..16 {
                    let d = p.destination(m, src, &mut rng);
                    assert!(m.contains(d), "{p:?} produced {d} from {src}");
                }
            }
        }
    }

    #[test]
    fn uniform_never_self() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(3);
        for src in m.iter_coords() {
            for _ in 0..50 {
                assert_ne!(
                    TrafficPattern::UniformRandom.destination(m, src, &mut rng),
                    src
                );
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let m = mesh();
        let mut rng = StdRng::seed_from_u64(0);
        for src in m.iter_coords() {
            let d = TrafficPattern::Transpose.destination(m, src, &mut rng);
            let dd = TrafficPattern::Transpose.destination(m, d, &mut rng);
            assert_eq!(dd, src);
        }
    }

    #[test]
    fn low_load_uniform_delivers_everything() {
        let m = mesh();
        let mut net = Network::new(m, NocConfig::default());
        let mut gen = TrafficGenerator::new(m, TrafficPattern::UniformRandom, 0.05, 4, 42);
        let (offered, ok) = gen.run(&mut net, 2_000, 50_000);
        assert!(ok, "network failed to drain");
        assert!(offered > 0);
        assert_eq!(net.stats().packets_delivered, offered);
    }

    #[test]
    fn hotspot_pattern_concentrates() {
        let m = mesh();
        let hs = Coord::new(2, 2);
        let p = TrafficPattern::Hotspot {
            nodes: vec![hs],
            fraction: 0.9,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        let trials = 1000;
        for _ in 0..trials {
            if p.destination(m, Coord::new(0, 0), &mut rng) == hs {
                hits += 1;
            }
        }
        assert!(hits > trials / 2, "only {hits}/{trials} hotspot hits");
    }

    #[test]
    fn rate_accessors_clamp() {
        let m = mesh();
        let mut gen = TrafficGenerator::new(m, TrafficPattern::Neighbor, 0.1, 2, 0);
        assert_eq!(gen.rate(), 0.1);
        gen.set_rate(1.5);
        assert_eq!(gen.rate(), 1.0);
        gen.set_rate(0.25);
        assert_eq!(gen.rate(), 0.25);
    }

    #[test]
    fn generator_is_reproducible() {
        let m = mesh();
        let run = |seed| {
            let mut net = Network::new(m, NocConfig::default());
            let mut gen = TrafficGenerator::new(m, TrafficPattern::UniformRandom, 0.1, 2, seed);
            gen.run(&mut net, 500, 20_000);
            net.stats().clone()
        };
        assert_eq!(run(9), run(9));
    }
}
