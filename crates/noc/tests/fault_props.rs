//! Property tests for runtime fault injection: degraded-path avoidance,
//! flit conservation under arbitrary failure schedules, and byte-identical
//! return to healthy behaviour after disable-then-repair.

use hotnoc_noc::{
    Coord, Direction, FaultPlan, Mesh, Network, NocConfig, Packet, PacketClass, TrafficGenerator,
    TrafficPattern,
};
use proptest::prelude::*;

/// A random square mesh plus a random set of distinct router coordinates and
/// failed links (as a coordinate and an outgoing direction with a neighbor).
fn degraded_mesh() -> impl Strategy<Value = (Mesh, Vec<Coord>, Vec<(Coord, Coord)>)> {
    (4usize..8).prop_flat_map(|side| {
        let mesh = Mesh::square(side).unwrap();
        let coord = (0..side as u8, 0..side as u8).prop_map(|(x, y)| Coord::new(x, y));
        let link =
            (0..(side - 1) as u8, 0..(side - 1) as u8, 0u8..2).prop_map(|(x, y, vertical)| {
                let a = Coord::new(x, y);
                let b = if vertical == 1 {
                    Coord::new(x, y + 1)
                } else {
                    Coord::new(x + 1, y)
                };
                (a, b)
            });
        (
            Just(mesh),
            proptest::collection::vec(coord, 0..3),
            proptest::collection::vec(link, 0..3),
        )
    })
}

fn plan_at(cycle: u64, routers: &[Coord], links: &[(Coord, Coord)]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &c in routers {
        plan = plan.fail_router(cycle, c);
    }
    for &(a, b) in links {
        plan = plan.fail_link(cycle, a, b);
    }
    plan
}

proptest! {
    // Each case is a full (small) network simulation; sample fewer cases
    // than the cheap routing properties but still well beyond a smoke test.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (1) Every packet delivered on a degraded fabric travelled a path that
    /// avoids all disabled routers and links: disabled routers record zero
    /// switching activity, and no flit crosses a disabled link in either
    /// direction.
    #[test]
    fn delivered_paths_avoid_disabled_components(
        (mesh, dead_routers, dead_links) in degraded_mesh(),
        seed in 0u64..1000,
    ) {
        let mut net = Network::new(mesh, NocConfig::default());
        net.set_par_threshold(1);
        net.install_fault_plan(plan_at(0, &dead_routers, &dead_links)).unwrap();
        net.step(); // apply the faults before any traffic exists
        let mut gen = TrafficGenerator::new(
            mesh, TrafficPattern::UniformRandom, 0.1, 3, 0xFA17 + seed,
        );
        for _ in 0..200 {
            gen.tick(&mut net);
            net.step();
        }
        net.run_until_idle(200_000).expect("degraded mesh must still drain");

        for &c in &dead_routers {
            let a = net.router(mesh.node_id(c).unwrap()).activity();
            prop_assert!(a.is_idle(), "disabled router {c} saw traffic: {a:?}");
        }
        for &(a, b) in &dead_links {
            let dir = Direction::MESH
                .into_iter()
                .find(|&d| mesh.neighbor(a, d) == Some(b))
                .unwrap();
            let fwd = net.router(mesh.node_id(a).unwrap()).activity().link_flits[dir.index()];
            let rev = net.router(mesh.node_id(b).unwrap()).activity().link_flits
                [dir.opposite().index()];
            prop_assert_eq!(fwd, 0, "flits crossed dead link {} -> {}", a, b);
            prop_assert_eq!(rev, 0, "flits crossed dead link {} -> {}", b, a);
        }
    }

    /// (2) With failures (and repairs) landing at arbitrary cycles while
    /// traffic is in flight, the network still drains, and every injected
    /// flit is either ejected or counted dropped — flit conservation.
    #[test]
    fn flit_conservation_under_midflight_faults(
        (mesh, dead_routers, dead_links) in degraded_mesh(),
        seed in 0u64..1000,
        fail_at in 1u64..150,
        repair_after in 1u64..200,
    ) {
        let mut net = Network::new(mesh, NocConfig::default());
        net.set_par_threshold(1);
        let mut plan = plan_at(fail_at, &dead_routers, &dead_links);
        // Repair the first failed router mid-run so repair paths are
        // exercised under load too.
        if let Some(&c) = dead_routers.first() {
            plan = plan.repair_router(fail_at + repair_after, c);
        }
        net.install_fault_plan(plan).unwrap();
        let mut gen = TrafficGenerator::new(
            mesh, TrafficPattern::UniformRandom, 0.12, 4, 0xC0DE + seed,
        );
        for _ in 0..250 {
            gen.tick(&mut net);
            net.step();
        }
        net.run_until_idle(200_000).expect("faulty mesh must drain");
        net.run(repair_after + 300); // land repairs + trailing credits

        let s = net.stats();
        prop_assert_eq!(
            s.flits_injected, s.flits_ejected + s.flits_dropped,
            "flit conservation violated"
        );
        prop_assert_eq!(
            s.packets_injected, s.packets_delivered + s.packets_dropped,
            "packet conservation violated"
        );
        prop_assert_eq!(net.in_flight(), 0);
    }

    /// (3) Disable-then-repair during an idle window returns the fabric to
    /// byte-identical healthy behaviour: identical traffic afterwards yields
    /// identical delivery records and statistics, with zero drops/detours
    /// and minimal (XY) hop counts.
    #[test]
    fn repair_restores_byte_identical_healthy_behaviour(
        dead in (0u8..4, 0u8..4).prop_map(|(x, y)| Coord::new(x, y)),
        seed in 0u64..1000,
    ) {
        let mesh = Mesh::square(4).unwrap();
        let mut healthy = Network::new(mesh, NocConfig::default());
        let mut repaired = Network::new(mesh, NocConfig::default());
        healthy.set_par_threshold(1);
        repaired.set_par_threshold(1);
        repaired
            .install_fault_plan(
                FaultPlan::new().fail_router(0, dead).repair_router(10, dead),
            )
            .unwrap();
        // Idle across the fault window so nothing can be dropped, then an
        // identical traffic schedule into both networks.
        healthy.run(20);
        repaired.run(20);
        prop_assert!(!repaired.fault_state().unwrap().active());

        let mut gen_a = TrafficGenerator::new(
            mesh, TrafficPattern::UniformRandom, 0.15, 3, 0xBEEF + seed,
        );
        let mut gen_b = TrafficGenerator::new(
            mesh, TrafficPattern::UniformRandom, 0.15, 3, 0xBEEF + seed,
        );
        for _ in 0..150 {
            gen_a.tick(&mut healthy);
            gen_b.tick(&mut repaired);
            healthy.step();
            repaired.step();
            prop_assert_eq!(healthy.in_flight(), repaired.in_flight());
        }
        healthy.run_until_idle(100_000).unwrap();
        repaired.run_until_idle(100_000).unwrap();

        prop_assert_eq!(healthy.stats(), repaired.stats());
        prop_assert_eq!(repaired.stats().flits_dropped, 0);
        prop_assert_eq!(repaired.stats().detour_hops, 0);
        let a = healthy.drain_all_delivered();
        let b = repaired.drain_all_delivered();
        prop_assert_eq!(a, b, "delivery records diverged after repair");
    }
}

/// Deterministic (non-proptest) check that surround routing still delivers
/// everything on a mesh degraded into an L-shape, and that hop counts exceed
/// the healthy minimum only via counted detours.
#[test]
fn l_shaped_fabric_delivers_everything_with_detours() {
    let mesh = Mesh::square(5).unwrap();
    let mut net = Network::new(mesh, NocConfig::default());
    net.set_par_threshold(1);
    // Kill a 2x2 block in the north-east corner.
    let block = [
        Coord::new(3, 3),
        Coord::new(4, 3),
        Coord::new(3, 4),
        Coord::new(4, 4),
    ];
    let mut plan = FaultPlan::new();
    for &c in &block {
        plan = plan.fail_router(0, c);
    }
    net.install_fault_plan(plan).unwrap();
    net.step();

    let mut id = 0;
    let mut expected = 0u64;
    for src in mesh.iter_coords() {
        for dst in mesh.iter_coords() {
            if src == dst || block.contains(&src) || block.contains(&dst) {
                continue;
            }
            let p = Packet::new(
                id,
                mesh.node_id(src).unwrap(),
                mesh.node_id(dst).unwrap(),
                PacketClass::Data,
                2,
            );
            net.inject(p).unwrap();
            id += 1;
            expected += 1;
        }
    }
    net.run_until_idle(200_000).unwrap();
    let s = net.stats();
    assert_eq!(s.packets_delivered, expected);
    assert_eq!(s.packets_dropped, 0);
    assert_eq!(s.flits_injected, s.flits_ejected);
    // Pairs whose XY path crossed the block must have detoured around it.
    assert!(s.detour_hops > 0);
}
