//! Property tests for [`TrafficPattern::destination`]: containment on
//! arbitrary meshes, the uniform-random self-exclusion contract, and the
//! hotspot pattern's statistical rate.

use hotnoc_noc::{Coord, Mesh, TrafficPattern};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary (possibly non-square) mesh with one coordinate on it.
fn mesh_and_src() -> impl Strategy<Value = (Mesh, Coord)> {
    (2usize..12, 2usize..12).prop_flat_map(|(w, h)| {
        let mesh = Mesh::new(w, h).unwrap();
        (
            Just(mesh),
            (0..w as u8, 0..h as u8).prop_map(|(x, y)| Coord::new(x, y)),
        )
    })
}

/// Every pattern family, parameterized where applicable. Hotspot nodes are
/// derived from the mesh so they are always on it.
fn patterns_for(mesh: Mesh) -> Vec<TrafficPattern> {
    let w = mesh.width() as u8;
    let h = mesh.height() as u8;
    vec![
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::Tornado,
        TrafficPattern::Neighbor,
        TrafficPattern::Hotspot {
            nodes: vec![Coord::new(w / 2, h / 2), Coord::new(w - 1, 0)],
            fraction: 0.7,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Destinations stay on the mesh for every pattern, every source and
    /// arbitrary mesh shapes (including rectangles).
    #[test]
    fn destinations_always_in_bounds((mesh, src) in mesh_and_src(), seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        for pattern in patterns_for(mesh) {
            for _ in 0..32 {
                let d = pattern.destination(mesh, src, &mut rng);
                prop_assert!(mesh.contains(d), "{pattern:?} sent {src} -> {d} off {mesh}");
            }
        }
    }

    /// `UniformRandom` never picks the source itself.
    #[test]
    fn uniform_never_returns_the_source((mesh, src) in mesh_and_src(), seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..128 {
            let d = TrafficPattern::UniformRandom.destination(mesh, src, &mut rng);
            prop_assert_ne!(d, src);
        }
    }

    /// The hotspot pattern targets the hotspot set at the configured rate:
    /// a `fraction` direct hit plus uniform spillover, within statistical
    /// tolerance.
    #[test]
    fn hotspot_fraction_hits_at_the_configured_rate(
        (mesh, src) in mesh_and_src(),
        fraction in 0.2f64..0.9,
        seed in 0u64..1 << 32,
    ) {
        let w = mesh.width() as u8;
        let h = mesh.height() as u8;
        let nodes = vec![Coord::new(0, 0), Coord::new(w - 1, h - 1)];
        let pattern = TrafficPattern::Hotspot {
            nodes: nodes.clone(),
            fraction,
        };
        let trials = 3000u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0u32;
        for _ in 0..trials {
            if nodes.contains(&pattern.destination(mesh, src, &mut rng)) {
                hits += 1;
            }
        }
        // P(hit) = fraction + (1 - fraction) * |nodes \ {src}| / (N - 1):
        // the uniform fallback excludes only the source.
        let n = (mesh.len() - 1) as f64;
        let spill = nodes.iter().filter(|&&c| c != src).count() as f64 / n;
        let expected = fraction + (1.0 - fraction) * spill;
        let observed = f64::from(hits) / f64::from(trials);
        // ~5 sigma for p in [0.2, 1.0) at 3000 trials is under 0.046.
        prop_assert!(
            (observed - expected).abs() < 0.05,
            "hotspot rate {observed:.3} vs expected {expected:.3} \
             (fraction {fraction:.3}, mesh {mesh}, src {src})"
        );
    }
}
