//! Parallel/serial equivalence: the striped allocation sweep must be
//! bit-identical to the serial path on every cycle, not merely at the end.
//!
//! Random meshes, injection rates, packet lengths and seeds are stepped by
//! two networks fed identical traffic — one pinned to 1 thread, one striped
//! across several with the parallel threshold forced to 1 so even tiny
//! worklists take the parallel path. Per-cycle statistics, in-flight
//! occupancy, and the exact delivered-packet sequences must match.

use hotnoc_noc::{DeliveredPacket, Mesh, Network, NocConfig, TrafficGenerator, TrafficPattern};
use proptest::prelude::*;

/// Steps `net` under `gen` for `cycles`, collecting one observation per
/// cycle plus every delivery record in per-node drain order.
fn drive(
    mut net: Network,
    mut gen: TrafficGenerator,
    cycles: u64,
) -> (Vec<[u64; 6]>, Vec<DeliveredPacket>) {
    let mut trace = Vec::with_capacity(cycles as usize);
    for _ in 0..cycles {
        gen.tick(&mut net);
        net.step();
        let s = net.stats();
        trace.push([
            s.packets_injected,
            s.packets_delivered,
            s.flits_ejected,
            s.total_packet_latency,
            s.flit_hops,
            net.in_flight(),
        ]);
    }
    // Drain whatever is still in flight so the delivered sequences cover
    // every packet, then keep fingerprinting the drain cycles too.
    let mut budget = 200_000u64;
    while net.in_flight() > 0 && budget > 0 {
        net.step();
        trace.push([
            0,
            net.stats().packets_delivered,
            net.stats().flits_ejected,
            0,
            0,
            net.in_flight(),
        ]);
        budget -= 1;
    }
    assert_eq!(net.in_flight(), 0, "network failed to drain");
    (trace, net.drain_all_delivered())
}

#[derive(Debug, Clone)]
struct Scenario {
    side: usize,
    rate: f64,
    len_flits: u32,
    seed: u64,
    threads: usize,
    hotspot: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..9,
        1u32..30,
        1u32..7,
        0u64..1_000_000_000,
        2usize..6,
        0u8..2,
    )
        .prop_map(
            |(side, rate_pct, len_flits, seed, threads, hotspot)| Scenario {
                side,
                rate: rate_pct as f64 / 100.0,
                len_flits,
                seed,
                threads,
                hotspot: hotspot == 1,
            },
        )
}

fn pattern(s: &Scenario) -> TrafficPattern {
    if s.hotspot {
        TrafficPattern::Hotspot {
            nodes: vec![hotnoc_noc::Coord::new(
                (s.side / 2) as u8,
                (s.side / 2) as u8,
            )],
            fraction: 0.5,
        }
    } else {
        TrafficPattern::UniformRandom
    }
}

proptest! {
    // Each case simulates hundreds of cycles twice; 96 cases matches the
    // budget of the other whole-network delivery suites.
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn striped_sweep_matches_serial_cycle_for_cycle(s in scenario()) {
        let mesh = Mesh::square(s.side).unwrap();
        let mk_gen = || TrafficGenerator::new(mesh, pattern(&s), s.rate, s.len_flits, s.seed);

        let mut serial = Network::new(mesh, NocConfig::default());
        serial.set_threads(1);

        let mut striped = Network::new(mesh, NocConfig::default());
        striped.set_threads(s.threads);
        striped.set_par_threshold(1);

        let (trace_a, delivered_a) = drive(serial, mk_gen(), 400);
        let (trace_b, delivered_b) = drive(striped, mk_gen(), 400);

        prop_assert_eq!(trace_a.len(), trace_b.len(), "drain length diverged");
        for (cycle, (a, b)) in trace_a.iter().zip(&trace_b).enumerate() {
            prop_assert_eq!(a, b, "per-cycle stats diverged at cycle {}", cycle);
        }
        prop_assert_eq!(
            delivered_a.len(),
            delivered_b.len(),
            "delivered counts diverged"
        );
        for (a, b) in delivered_a.iter().zip(&delivered_b) {
            prop_assert_eq!(a, b, "delivered-packet sequence diverged");
        }
    }

    #[test]
    fn thread_count_changes_mid_run_preserve_semantics(
        side in 4usize..8,
        seed in 0u64..1_000_000_000,
        switch_at in 50u64..150,
    ) {
        // set_threads mid-simulation must not perturb semantics either:
        // compare an all-serial run against one that flips serial ->
        // striped -> serial at arbitrary points.
        let mesh = Mesh::square(side).unwrap();
        let mk_gen = || TrafficGenerator::new(
            mesh, TrafficPattern::UniformRandom, 0.15, 4, seed,
        );

        let mut reference = Network::new(mesh, NocConfig::default());
        reference.set_threads(1);
        let mut flipping = Network::new(mesh, NocConfig::default());
        flipping.set_threads(1);
        flipping.set_par_threshold(1);

        let mut gen_a = mk_gen();
        let mut gen_b = mk_gen();
        for cycle in 0..300u64 {
            if cycle == switch_at {
                flipping.set_threads(4);
            }
            if cycle == 2 * switch_at {
                flipping.set_threads(1);
            }
            gen_a.tick(&mut reference);
            reference.step();
            gen_b.tick(&mut flipping);
            flipping.step();
            prop_assert_eq!(reference.in_flight(), flipping.in_flight());
            prop_assert_eq!(reference.stats(), flipping.stats());
        }
    }
}

proptest! {
    // Saturating runs are expensive (two networks, heavy queues); fewer
    // cases keep the suite inside the battery's time budget.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn striped_pre_sweep_matches_serial_under_saturation(
        side in 4usize..9,
        seed in 0u64..1_000_000_000,
        threads in 2usize..6,
        switch_at in 40u64..120,
    ) {
        // Step phases 1–3 (credit landing, link arrivals, NIC injection)
        // stripe alongside the allocation sweep. Saturating injection keeps
        // every link queue and NIC backlog full, so arrivals constantly
        // cross stripe boundaries; the mid-run thread flips recut the
        // stripes while those flits are in flight.
        let mesh = Mesh::square(side).unwrap();
        let mk_gen = || TrafficGenerator::new(
            mesh, TrafficPattern::UniformRandom, 0.9, 5, seed,
        );

        let mut reference = Network::new(mesh, NocConfig::default());
        reference.set_threads(1);
        let mut striped = Network::new(mesh, NocConfig::default());
        striped.set_threads(threads);
        striped.set_par_threshold(1);

        let mut gen_a = mk_gen();
        let mut gen_b = mk_gen();
        for cycle in 0..400u64 {
            if cycle == switch_at {
                striped.set_threads(1);
            }
            if cycle == 2 * switch_at {
                striped.set_threads(threads);
            }
            gen_a.tick(&mut reference);
            reference.step();
            gen_b.tick(&mut striped);
            striped.step();
            prop_assert_eq!(
                reference.in_flight(),
                striped.in_flight(),
                "in-flight diverged at cycle {}",
                cycle
            );
            prop_assert_eq!(reference.stats(), striped.stats());
        }
        let delivered_a = reference.drain_all_delivered();
        let delivered_b = striped.drain_all_delivered();
        prop_assert_eq!(delivered_a, delivered_b, "delivered sequences diverged");
    }
}
