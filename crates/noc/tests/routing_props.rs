//! Property tests for the routing algorithms: minimality, mesh containment
//! and turn-model invariants under randomized meshes and endpoints.

use hotnoc_noc::routing::{route_path, RoutingKind, WestFirstRouting};
use hotnoc_noc::{Coord, Mesh, Routing};
use proptest::prelude::*;

fn mesh_and_pair() -> impl Strategy<Value = (Mesh, Coord, Coord)> {
    (2usize..10, 2usize..10).prop_flat_map(|(w, h)| {
        let mesh = Mesh::new(w, h).unwrap();
        (
            Just(mesh),
            (0..w as u8, 0..h as u8).prop_map(|(x, y)| Coord::new(x, y)),
            (0..w as u8, 0..h as u8).prop_map(|(x, y)| Coord::new(x, y)),
        )
    })
}

proptest! {
    // Routing checks are cheap; sample well beyond the vendored default of
    // 64 cases (ROADMAP open item, affordable since the perf refactor).
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn all_algorithms_are_minimal((mesh, src, dst) in mesh_and_pair()) {
        for kind in [RoutingKind::Xy, RoutingKind::Yx, RoutingKind::WestFirst] {
            let path = route_path(mesh, &kind, src, dst);
            prop_assert_eq!(path.len() as u32, src.manhattan(dst) + 1, "{:?}", kind);
            prop_assert!(path.iter().all(|&c| mesh.contains(c)));
            for w in path.windows(2) {
                prop_assert_eq!(w[0].manhattan(w[1]), 1, "non-unit hop");
            }
        }
    }

    #[test]
    fn west_first_turn_invariant((mesh, src, dst) in mesh_and_pair()) {
        let path = route_path(mesh, &WestFirstRouting, src, dst);
        let mut seen_non_west = false;
        for w in path.windows(2) {
            if w[1].x < w[0].x {
                prop_assert!(!seen_non_west, "westward turn after non-west hop");
            } else {
                seen_non_west = true;
            }
        }
    }

    #[test]
    fn local_only_at_destination((mesh, src, dst) in mesh_and_pair()) {
        for kind in [RoutingKind::Xy, RoutingKind::Yx, RoutingKind::WestFirst] {
            let mut cur = src;
            let mut steps = 0;
            loop {
                let dir = kind.next_hop(cur, dst);
                if dir == hotnoc_noc::Direction::Local {
                    prop_assert_eq!(cur, dst, "{:?} ejected early", kind);
                    break;
                }
                cur = mesh.neighbor(cur, dir).expect("stays on mesh");
                steps += 1;
                prop_assert!(steps <= mesh.len() * 2, "{:?} did not converge", kind);
            }
        }
    }
}
