//! Placement cost functions.

use hotnoc_noc::{Mesh, NodeId};
use hotnoc_thermal::RcNetwork;

/// A cost function over assignments (`assignment[cluster] = tile index`).
/// Lower is better.
pub trait PlacementCost {
    /// Evaluates one assignment.
    fn evaluate(&self, assignment: &[usize]) -> f64;
}

/// Communication cost: total flit-hops per iteration,
/// `sum t[i][j] * manhattan(tile_i, tile_j)`.
#[derive(Debug)]
pub struct CommCost<'a> {
    mesh: Mesh,
    traffic: &'a [Vec<u64>],
}

impl<'a> CommCost<'a> {
    /// Creates a communication cost over a cluster traffic matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or exceeds the mesh size.
    pub fn new(mesh: Mesh, traffic: &'a [Vec<u64>]) -> Self {
        let k = traffic.len();
        assert!(
            traffic.iter().all(|row| row.len() == k),
            "matrix not square"
        );
        assert!(k <= mesh.len(), "more clusters than tiles");
        CommCost { mesh, traffic }
    }
}

impl PlacementCost for CommCost<'_> {
    fn evaluate(&self, assignment: &[usize]) -> f64 {
        let mut cost = 0.0;
        for (i, row) in self.traffic.iter().enumerate() {
            let ci = self.mesh.coord(NodeId::new(assignment[i] as u16));
            for (j, &t) in row.iter().enumerate() {
                if t == 0 || i == j {
                    continue;
                }
                let cj = self.mesh.coord(NodeId::new(assignment[j] as u16));
                cost += t as f64 * ci.manhattan(cj) as f64;
            }
        }
        cost
    }
}

/// Thermal cost: the steady-state peak temperature of the chip when cluster
/// `i`'s power lands on its assigned tile.
#[derive(Debug)]
pub struct PeakTempCost<'a> {
    net: &'a RcNetwork,
    cluster_power: &'a [f64],
}

impl<'a> PeakTempCost<'a> {
    /// Creates a peak-temperature cost.
    ///
    /// # Panics
    ///
    /// Panics if there are more clusters than thermal blocks.
    pub fn new(net: &'a RcNetwork, cluster_power: &'a [f64]) -> Self {
        assert!(
            cluster_power.len() <= net.n_blocks(),
            "more clusters than blocks"
        );
        PeakTempCost { net, cluster_power }
    }
}

impl PlacementCost for PeakTempCost<'_> {
    fn evaluate(&self, assignment: &[usize]) -> f64 {
        let mut power = vec![0.0; self.net.n_blocks()];
        for (cluster, &tile) in assignment.iter().enumerate() {
            power[tile] = self.cluster_power[cluster];
        }
        let temps = self
            .net
            .steady_state(&power)
            .expect("power vector sized to model");
        temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Weighted blend of two cost functions (e.g. thermal-primary with a small
/// communication tie-breaker, which is how real thermally-aware flows avoid
/// pathological wire length).
pub struct BlendedCost<'a> {
    /// The primary cost and its weight.
    pub primary: (&'a dyn PlacementCost, f64),
    /// The secondary cost and its weight.
    pub secondary: (&'a dyn PlacementCost, f64),
}

impl PlacementCost for BlendedCost<'_> {
    fn evaluate(&self, assignment: &[usize]) -> f64 {
        self.primary.0.evaluate(assignment) * self.primary.1
            + self.secondary.0.evaluate(assignment) * self.secondary.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotnoc_thermal::{Floorplan, PackageConfig};

    #[test]
    fn comm_cost_counts_hops() {
        let mesh = Mesh::square(2).unwrap();
        let mut t = vec![vec![0u64; 4]; 4];
        t[0][3] = 10;
        let cost = CommCost::new(mesh, &t);
        // Identity: cluster 0 at tile 0 (0,0), cluster 3 at tile 3 (1,1): 2 hops.
        assert_eq!(cost.evaluate(&[0, 1, 2, 3]), 20.0);
        // Swap 3 next to 0: 1 hop.
        assert_eq!(cost.evaluate(&[0, 3, 2, 1]), 10.0);
    }

    #[test]
    fn peak_temp_prefers_separated_hotspots() {
        let plan = Floorplan::mesh_grid(3, 3, 4.36e-6).unwrap();
        let net = RcNetwork::build(&plan, &PackageConfig::date05_defaults()).unwrap();
        let mut power = vec![1.0; 9];
        power[0] = 5.0;
        power[1] = 5.0; // two hot clusters
        let cost = PeakTempCost::new(&net, &power);
        // Identity: hot clusters on adjacent tiles 0 and 1.
        let adjacent: Vec<usize> = (0..9).collect();
        // Separated: hot clusters on opposite corners (tiles 0 and 8).
        let separated: Vec<usize> = vec![0, 8, 2, 3, 4, 5, 6, 7, 1];
        assert!(
            cost.evaluate(&separated) < cost.evaluate(&adjacent),
            "separating hot clusters should lower the peak"
        );
    }

    #[test]
    fn lone_hotspot_prefers_center_spreading() {
        // With a cool background, the centre tile offers the most lateral
        // silicon to spread into — the physical reason rotation/mirroring
        // (which never move the centre of an odd mesh) fail on the paper's
        // configuration E, whose hotspots sit near the centre.
        let plan = Floorplan::mesh_grid(3, 3, 4.36e-6).unwrap();
        let net = RcNetwork::build(&plan, &PackageConfig::date05_defaults()).unwrap();
        let mut power = vec![1.0; 9];
        power[0] = 5.0;
        let cost = PeakTempCost::new(&net, &power);
        let corner: Vec<usize> = (0..9).collect();
        let center: Vec<usize> = vec![4, 1, 2, 3, 0, 5, 6, 7, 8];
        assert!(cost.evaluate(&center) < cost.evaluate(&corner));
    }

    #[test]
    fn blended_cost_is_weighted_sum() {
        let mesh = Mesh::square(2).unwrap();
        let mut t = vec![vec![0u64; 4]; 4];
        t[0][1] = 1;
        let a = CommCost::new(mesh, &t);
        let b = CommCost::new(mesh, &t);
        let blend = BlendedCost {
            primary: (&a, 2.0),
            secondary: (&b, 3.0),
        };
        let asg = [0, 1, 2, 3];
        assert!((blend.evaluate(&asg) - 5.0 * a.evaluate(&asg)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matrix not square")]
    fn ragged_matrix_rejected() {
        let mesh = Mesh::square(2).unwrap();
        let t = vec![vec![0u64; 3], vec![0u64; 4]];
        let _ = CommCost::new(mesh, &t);
    }
}
