//! Simulated annealing over cluster→tile assignments.

use crate::cost::PlacementCost;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Simulated-annealing parameters. The defaults anneal a 25-tile problem in
/// well under a second with the thermal objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Annealer {
    /// Total proposed moves.
    pub iters: usize,
    /// Initial temperature, in cost units.
    pub t0: f64,
    /// Final temperature.
    pub t_end: f64,
    /// RNG seed (placements are reproducible).
    pub seed: u64,
}

impl Default for Annealer {
    fn default() -> Self {
        Annealer {
            iters: 4_000,
            t0: 5.0,
            t_end: 0.01,
            seed: 0x00DA_7E05,
        }
    }
}

impl Annealer {
    /// Optimizes an assignment of `n` clusters to the first `n` tiles,
    /// returning the best assignment found and its cost.
    ///
    /// Moves are random pair swaps; the cooling schedule is geometric.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the annealer parameters are non-positive.
    pub fn optimize(&self, n: usize, cost: &dyn PlacementCost) -> (Vec<usize>, f64) {
        assert!(n > 0, "nothing to place");
        assert!(
            self.t0 > 0.0 && self.t_end > 0.0 && self.t_end <= self.t0,
            "invalid temperature schedule"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut current: Vec<usize> = (0..n).collect();
        let mut current_cost = cost.evaluate(&current);
        let mut best = current.clone();
        let mut best_cost = current_cost;
        if n == 1 {
            return (best, best_cost);
        }
        let alpha = (self.t_end / self.t0).powf(1.0 / self.iters.max(1) as f64);
        let mut temp = self.t0;
        for _ in 0..self.iters {
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n);
            while j == i {
                j = rng.gen_range(0..n);
            }
            current.swap(i, j);
            let new_cost = cost.evaluate(&current);
            let delta = new_cost - current_cost;
            if delta <= 0.0 || rng.gen_bool((-delta / temp).exp().min(1.0)) {
                current_cost = new_cost;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = current.clone();
                }
            } else {
                current.swap(i, j); // revert
            }
            temp *= alpha;
        }
        (best, best_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CommCost;
    use hotnoc_noc::Mesh;

    struct IdentityLover;
    impl PlacementCost for IdentityLover {
        fn evaluate(&self, a: &[usize]) -> f64 {
            // Cost = number of displaced clusters.
            a.iter().enumerate().filter(|(i, &t)| *i != t).count() as f64
        }
    }

    #[test]
    fn finds_trivial_optimum() {
        let annealer = Annealer {
            iters: 5_000,
            ..Annealer::default()
        };
        let (best, cost) = annealer.optimize(9, &IdentityLover);
        assert_eq!(cost, 0.0);
        assert_eq!(best, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn result_is_a_permutation() {
        let mesh = Mesh::square(4).unwrap();
        let mut traffic = vec![vec![0u64; 16]; 16];
        traffic[0][15] = 50;
        traffic[3][12] = 50;
        let cost = CommCost::new(mesh, &traffic);
        let (best, _) = Annealer::default().optimize(16, &cost);
        let mut sorted = best.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn improves_over_identity_for_comm() {
        let mesh = Mesh::square(4).unwrap();
        let mut traffic = vec![vec![0u64; 16]; 16];
        // Clusters at opposite corners talk heavily under identity.
        traffic[0][15] = 100;
        traffic[15][0] = 100;
        let cost = CommCost::new(mesh, &traffic);
        let identity: Vec<usize> = (0..16).collect();
        let (_, best_cost) = Annealer::default().optimize(16, &cost);
        assert!(best_cost < cost.evaluate(&identity));
        // Optimal: adjacent tiles -> 2 * 100 * 1.
        assert!(best_cost <= 200.0 + 1e-9, "best {best_cost}");
    }

    #[test]
    fn reproducible_per_seed() {
        let mesh = Mesh::square(3).unwrap();
        let mut traffic = vec![vec![0u64; 9]; 9];
        traffic[0][8] = 10;
        let cost = CommCost::new(mesh, &traffic);
        let a = Annealer::default().optimize(9, &cost);
        let b = Annealer::default().optimize(9, &cost);
        assert_eq!(a, b);
    }

    #[test]
    fn single_cluster_is_immediate() {
        let (best, _) = Annealer::default().optimize(1, &IdentityLover);
        assert_eq!(best, vec![0]);
    }
}
