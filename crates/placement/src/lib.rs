//! # hotnoc-placement — thermally-aware static placement
//!
//! The paper's baseline: "our workload was mapped onto PEs using a
//! thermally-aware placement algorithm that minimizes the peak temperature.
//! Using such a thermally-aware mapping puts our method in a worst-case
//! light" — runtime reconfiguration must improve on a placement that is
//! already thermally optimal.
//!
//! This crate provides that algorithm (simulated annealing over
//! cluster→tile assignments with a steady-state thermal objective,
//! [`thermal_aware::thermally_aware_placement`]), plus communication-aware
//! and random baselines.
//!
//! ```
//! use hotnoc_placement::{annealer::Annealer, cost::{CommCost, PlacementCost}, random::identity_assignment};
//! use hotnoc_noc::Mesh;
//!
//! let mesh = Mesh::square(3)?;
//! // Heavy traffic between clusters 0 and 8: the annealer should pull them
//! // together.
//! let mut traffic = vec![vec![0u64; 9]; 9];
//! traffic[0][8] = 100;
//! let cost = CommCost::new(mesh, &traffic);
//! let annealer = Annealer::default();
//! let (assignment, best) = annealer.optimize(9, &cost);
//! assert_eq!(assignment.len(), 9);
//! assert!(best <= cost.evaluate(&identity_assignment(9)));
//! # Ok::<(), hotnoc_noc::NocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealer;
pub mod cost;
pub mod random;
pub mod thermal_aware;

pub use annealer::Annealer;
pub use cost::{BlendedCost, CommCost, PeakTempCost, PlacementCost};
pub use thermal_aware::thermally_aware_placement;
