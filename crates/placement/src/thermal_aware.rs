//! The paper's baseline flow: thermally-aware placement minimizing peak
//! temperature.

use crate::annealer::Annealer;
use crate::cost::{PeakTempCost, PlacementCost};
use hotnoc_thermal::RcNetwork;

/// Result of a thermally-aware placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalPlacement {
    /// `assignment[cluster] = tile index`.
    pub assignment: Vec<usize>,
    /// Steady-state peak temperature of the optimized placement (°C).
    pub peak_celsius: f64,
    /// Steady-state peak of the identity placement, for reference (°C).
    pub identity_peak_celsius: f64,
}

/// Places `cluster_power` onto the thermal network's blocks, minimizing the
/// steady-state peak temperature by simulated annealing — the "thermally-
/// aware placement algorithm that minimizes the peak temperature" the paper
/// applies before any migration is considered.
///
/// # Panics
///
/// Panics if there are more clusters than thermal blocks.
pub fn thermally_aware_placement(
    net: &RcNetwork,
    cluster_power: &[f64],
    annealer: &Annealer,
) -> ThermalPlacement {
    let cost = PeakTempCost::new(net, cluster_power);
    let identity: Vec<usize> = (0..cluster_power.len()).collect();
    let identity_peak = cost.evaluate(&identity);
    let (assignment, peak) = annealer.optimize(cluster_power.len(), &cost);
    ThermalPlacement {
        assignment,
        peak_celsius: peak,
        identity_peak_celsius: identity_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotnoc_thermal::{Floorplan, PackageConfig};

    fn net(n: usize) -> RcNetwork {
        let plan = Floorplan::mesh_grid(n, n, 4.36e-6).unwrap();
        RcNetwork::build(&plan, &PackageConfig::date05_defaults()).unwrap()
    }

    #[test]
    fn never_worse_than_identity() {
        let net = net(4);
        // Clustered hot region under identity.
        let mut power = vec![0.8; 16];
        power[5] = 3.0;
        power[6] = 3.0;
        power[9] = 2.5;
        power[10] = 2.5;
        let result = thermally_aware_placement(&net, &power, &Annealer::default());
        assert!(result.peak_celsius <= result.identity_peak_celsius + 1e-9);
    }

    #[test]
    fn spreads_clustered_hotspots() {
        let net = net(4);
        let mut power = vec![0.5; 16];
        power[5] = 4.0;
        power[6] = 4.0;
        let result = thermally_aware_placement(&net, &power, &Annealer::default());
        // The two hot clusters must not stay adjacent in the optimum.
        let t0 = result.assignment[5];
        let t1 = result.assignment[6];
        let c0 = ((t0 % 4) as i32, (t0 / 4) as i32);
        let c1 = ((t1 % 4) as i32, (t1 / 4) as i32);
        let dist = (c0.0 - c1.0).abs() + (c0.1 - c1.1).abs();
        assert!(dist >= 2, "hot clusters still adjacent (dist {dist})");
        assert!(result.peak_celsius < result.identity_peak_celsius - 0.2);
    }

    #[test]
    fn uniform_power_is_already_optimal() {
        let net = net(3);
        let power = vec![1.5; 9];
        let result = thermally_aware_placement(&net, &power, &Annealer::default());
        // All placements equivalent under uniform power.
        assert!((result.peak_celsius - result.identity_peak_celsius).abs() < 1e-9);
    }
}
