//! Trivial placement baselines.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The identity assignment: cluster `i` on tile `i`.
pub fn identity_assignment(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// A uniformly random assignment (seeded, reproducible).
pub fn random_assignment(n: usize, seed: u64) -> Vec<usize> {
    let mut v = identity_assignment(n);
    v.shuffle(&mut StdRng::seed_from_u64(seed));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        assert_eq!(identity_assignment(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_is_permutation_and_reproducible() {
        let a = random_assignment(25, 7);
        let b = random_assignment(25, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity_assignment(25));
        assert_ne!(a, identity_assignment(25), "seed 7 should shuffle");
    }
}
