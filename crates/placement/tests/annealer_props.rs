//! Property tests for the placement optimizer: outputs are permutations,
//! optimization never loses to the identity start, determinism per seed.

use hotnoc_noc::Mesh;
use hotnoc_placement::cost::{CommCost, PlacementCost};
use hotnoc_placement::random::identity_assignment;
use hotnoc_placement::Annealer;
use proptest::prelude::*;

fn traffic_strategy(k: usize) -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..50, k), k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn annealed_assignment_is_permutation(traffic in traffic_strategy(9), seed in 0u64..100) {
        let mesh = Mesh::square(3).unwrap();
        let cost = CommCost::new(mesh, &traffic);
        let annealer = Annealer {
            iters: 500,
            seed,
            ..Annealer::default()
        };
        let (best, _) = annealer.optimize(9, &cost);
        let mut sorted = best;
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn never_worse_than_identity(traffic in traffic_strategy(9), seed in 0u64..100) {
        let mesh = Mesh::square(3).unwrap();
        let cost = CommCost::new(mesh, &traffic);
        let annealer = Annealer {
            iters: 800,
            seed,
            ..Annealer::default()
        };
        let (_, best_cost) = annealer.optimize(9, &cost);
        let id_cost = cost.evaluate(&identity_assignment(9));
        prop_assert!(best_cost <= id_cost + 1e-9);
    }

    #[test]
    fn deterministic_per_seed(traffic in traffic_strategy(4), seed in 0u64..100) {
        let mesh = Mesh::square(2).unwrap();
        let cost = CommCost::new(mesh, &traffic);
        let annealer = Annealer {
            iters: 300,
            seed,
            ..Annealer::default()
        };
        let a = annealer.optimize(4, &cost);
        let b = annealer.optimize(4, &cost);
        prop_assert_eq!(a, b);
    }
}
