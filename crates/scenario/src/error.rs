//! Error type of the scenario subsystem.

use std::error::Error;
use std::fmt;

/// Anything that can go wrong while parsing, expanding or running a
/// scenario or campaign.
#[derive(Debug)]
pub enum ScenarioError {
    /// A spec document failed to parse or validate.
    Spec(String),
    /// A co-simulation substrate failed.
    Core(hotnoc_core::CoreError),
    /// The NoC simulator failed (traffic scenarios).
    Noc(hotnoc_noc::NocError),
    /// Filesystem trouble (manifest, campaign artifacts).
    Io {
        /// What was being accessed.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// One campaign job failed.
    Job {
        /// Job index within the campaign.
        index: usize,
        /// Scenario name of the failing job.
        name: String,
        /// The failure, rendered.
        cause: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Spec(msg) => write!(f, "spec: {msg}"),
            ScenarioError::Core(e) => write!(f, "core: {e}"),
            ScenarioError::Noc(e) => write!(f, "noc: {e}"),
            ScenarioError::Io { path, source } => write!(f, "io: {path}: {source}"),
            ScenarioError::Job { index, name, cause } => {
                write!(f, "job {index} ({name}) failed: {cause}")
            }
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Core(e) => Some(e),
            ScenarioError::Noc(e) => Some(e),
            ScenarioError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<hotnoc_core::CoreError> for ScenarioError {
    fn from(e: hotnoc_core::CoreError) -> Self {
        ScenarioError::Core(e)
    }
}

impl From<hotnoc_noc::NocError> for ScenarioError {
    fn from(e: hotnoc_noc::NocError) -> Self {
        ScenarioError::Noc(e)
    }
}

impl ScenarioError {
    /// Wraps an IO error with the path it concerned.
    pub fn io(path: &std::path::Path, source: std::io::Error) -> Self {
        ScenarioError::Io {
            path: path.display().to_string(),
            source,
        }
    }
}
