//! Built-in named campaigns: the paper's exhibits and engineering sweeps,
//! expressed as [`CampaignSpec`]s so the report binaries (and the CLI) are
//! thin wrappers over the engine.

use crate::campaign::{CampaignSpec, PolicyAxis};
use crate::spec::{ChipKind, Mode, Workload};
use hotnoc_core::configs::{ChipConfigId, Fidelity};
use hotnoc_noc::{Coord, TrafficPattern};
use hotnoc_reconfig::MigrationScheme;

/// The built-in campaign names with one-line descriptions.
pub const BUILTINS: &[(&str, &str)] = &[
    (
        "fig1",
        "Figure 1: peak-temperature reduction, configs A-E x all five schemes",
    ),
    (
        "period-sweep",
        "Sec. 3 period sweep: config A, X-Y shift, periods 1/4/8 blocks",
    ),
    (
        "migration-cost",
        "Sec. 2.1-2.2 migration cost: phases/stall/flit-hops/energy per scheme",
    ),
    (
        "adaptive-compare",
        "Adaptive scheme selection vs every fixed scheme, configs A-E",
    ),
    (
        "sweep",
        "Engineering sweep: configs A-E x schemes x 2 periods (50 jobs)",
    ),
    (
        "latency-load",
        "Latency-vs-load saturation curve: uniform traffic on config A across the offered-load axis",
    ),
    (
        "degraded-mesh",
        "Degraded fabrics: uniform traffic on config A with 0/1/2 routers failed at cycle 0",
    ),
    (
        "smoke",
        "Seconds-fast mixed campaign (quick ldpc + traffic) for CI",
    ),
];

fn all_configs() -> Vec<ChipKind> {
    ChipConfigId::ALL
        .iter()
        .map(|&c| ChipKind::Config(c))
        .collect()
}

/// The migration period (blocks) matching each fidelity's default cosim
/// parameters: full-fidelity blocks are the paper's ~109 µs, quick blocks
/// are much shorter so the period is raised to land near the same ~100 µs
/// operating point (mirrors `CosimParams::quick`).
fn default_period(fidelity: Fidelity) -> u64 {
    match fidelity {
        Fidelity::Full => 1,
        Fidelity::Quick => 24,
    }
}

/// Resolves a built-in campaign by name at the given fidelity. `smoke` is
/// always quick-fidelity; every other campaign honours `fidelity`.
pub fn builtin(name: &str, fidelity: Fidelity) -> Option<CampaignSpec> {
    let base = CampaignSpec {
        name: name.to_string(),
        seed: 0xDA7E,
        fidelity,
        mode: Mode::Cosim,
        sim_time_ms: None,
        configs: all_configs(),
        workloads: vec![Workload::Ldpc],
        policies: vec![PolicyAxis::Periodic],
        schemes: MigrationScheme::FIGURE1.to_vec(),
        periods: vec![default_period(fidelity)],
        offered_loads: vec![],
        failed_routers: vec![],
        failed_links: vec![],
        seeds: vec![0],
    };
    let spec = match name {
        "fig1" => base,
        "period-sweep" => CampaignSpec {
            configs: vec![ChipKind::Config(ChipConfigId::A)],
            schemes: vec![MigrationScheme::XYShift],
            periods: vec![1, 4, 8],
            ..base
        },
        "migration-cost" => CampaignSpec {
            configs: vec![
                ChipKind::Config(ChipConfigId::A),
                ChipKind::Config(ChipConfigId::E),
            ],
            mode: Mode::PlanCost,
            ..base
        },
        "adaptive-compare" => CampaignSpec {
            policies: vec![PolicyAxis::Periodic, PolicyAxis::Adaptive],
            ..base
        },
        "sweep" => CampaignSpec {
            periods: match fidelity {
                Fidelity::Full => vec![1, 4],
                Fidelity::Quick => vec![8, 32],
            },
            ..base
        },
        "latency-load" => CampaignSpec {
            configs: vec![ChipKind::Config(ChipConfigId::A)],
            workloads: vec![Workload::Traffic {
                pattern: TrafficPattern::UniformRandom,
                // The rate is a placeholder: the offered-load axis replaces
                // it per job.
                rate: 0.05,
                packet_len: 4,
                cycles: match fidelity {
                    Fidelity::Full => 2000,
                    Fidelity::Quick => 300,
                },
            }],
            policies: vec![PolicyAxis::Baseline],
            schemes: vec![],
            periods: vec![],
            offered_loads: match fidelity {
                Fidelity::Full => vec![0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.2, 0.24],
                Fidelity::Quick => vec![0.02, 0.06, 0.1, 0.14],
            },
            seeds: (0..4).collect(),
            ..base
        },
        "degraded-mesh" => CampaignSpec {
            configs: vec![ChipKind::Config(ChipConfigId::A)],
            workloads: vec![Workload::Traffic {
                pattern: TrafficPattern::UniformRandom,
                rate: 0.05,
                packet_len: 4,
                cycles: match fidelity {
                    Fidelity::Full => 2000,
                    Fidelity::Quick => 300,
                },
            }],
            policies: vec![PolicyAxis::Baseline],
            schemes: vec![],
            periods: vec![],
            // 0 is the healthy reference point of the axis.
            failed_routers: vec![0, 1, 2],
            seeds: (0..4).collect(),
            ..base
        },
        "smoke" => CampaignSpec {
            fidelity: Fidelity::Quick,
            configs: vec![ChipKind::Config(ChipConfigId::A)],
            workloads: vec![
                Workload::Ldpc,
                Workload::Traffic {
                    pattern: TrafficPattern::UniformRandom,
                    rate: 0.05,
                    packet_len: 4,
                    cycles: 400,
                },
                Workload::Traffic {
                    pattern: TrafficPattern::Hotspot {
                        nodes: vec![Coord::new(1, 1)],
                        fraction: 0.5,
                    },
                    rate: 0.05,
                    packet_len: 4,
                    cycles: 400,
                },
            ],
            policies: vec![
                PolicyAxis::Baseline,
                PolicyAxis::Periodic,
                PolicyAxis::Adaptive,
            ],
            schemes: vec![MigrationScheme::XYShift, MigrationScheme::Rotation],
            periods: vec![24],
            ..base
        },
        _ => return None,
    };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_validates_at_both_fidelities() {
        for (name, _) in BUILTINS {
            for fidelity in [Fidelity::Full, Fidelity::Quick] {
                let spec = builtin(name, fidelity).expect("known builtin");
                spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(!spec.expand().is_empty(), "{name} expands to no jobs");
            }
        }
        assert!(builtin("nope", Fidelity::Quick).is_none());
    }

    #[test]
    fn sweep_meets_the_48_job_floor() {
        let jobs = builtin("sweep", Fidelity::Quick).unwrap().expand();
        assert!(jobs.len() >= 48, "sweep has only {} jobs", jobs.len());
    }

    #[test]
    fn fig1_covers_every_config_and_scheme() {
        let jobs = builtin("fig1", Fidelity::Full).unwrap().expand();
        assert_eq!(jobs.len(), 5 * 5);
    }

    #[test]
    fn latency_load_sweeps_the_offered_load_axis() {
        let spec = builtin("latency-load", Fidelity::Quick).unwrap();
        let jobs = spec.expand();
        assert_eq!(jobs.len(), spec.offered_loads.len() * spec.seeds.len());
        // One group (seed axis collapsed) per operating point.
        let loads: std::collections::BTreeSet<String> = jobs
            .iter()
            .map(|j| match &j.workload {
                Workload::Traffic { rate, .. } => format!("{rate}"),
                Workload::Ldpc => unreachable!("latency-load is traffic-only"),
            })
            .collect();
        assert_eq!(loads.len(), spec.offered_loads.len());
        assert!(jobs[0].name.contains("@l0.02"), "{}", jobs[0].name);
    }

    #[test]
    fn degraded_mesh_sweeps_the_failure_axis() {
        let spec = builtin("degraded-mesh", Fidelity::Quick).unwrap();
        let jobs = spec.expand();
        assert_eq!(jobs.len(), spec.failed_routers.len() * spec.seeds.len());
        // The healthy point carries no fault plan; the others do.
        assert!(jobs[0].name.contains("/fr0/"), "{}", jobs[0].name);
        assert!(jobs[0].faults.is_empty());
        let degraded: Vec<_> = jobs.iter().filter(|j| j.name.contains("/fr2/")).collect();
        assert_eq!(degraded.len(), spec.seeds.len());
        assert!(degraded.iter().all(|j| j.faults.len() == 2));
    }

    #[test]
    fn smoke_is_small_and_mixed() {
        let jobs = builtin("smoke", Fidelity::Full).unwrap().expand();
        assert!(jobs.len() <= 12, "smoke too big for CI: {}", jobs.len());
        assert!(jobs
            .iter()
            .any(|j| matches!(j.workload, Workload::Traffic { .. })));
        assert!(jobs.iter().any(|j| matches!(j.workload, Workload::Ldpc)));
    }
}
