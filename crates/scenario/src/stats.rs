//! Mergeable summary statistics over the campaign seed axis.
//!
//! A campaign's seed axis re-runs the same scenario under different RNG
//! seeds; the analytics layer collapses those repeats into per-group
//! summaries (mean, spread, order statistics, a t-based 95% confidence
//! interval) so the paper's comparative claims — "scheme X beats baseline
//! by Y% at load Z" — can be stated with uncertainty attached.
//!
//! # Determinism
//!
//! [`SummaryStats`] is a deterministic function of the sample **multiset**:
//! samples are kept in a sorted buffer and every derived quantity (mean,
//! standard deviation, quantiles) is computed by walking that buffer in
//! ascending order. Recording the same samples in any order, or merging
//! partial summaries in any grouping, therefore yields bit-identical
//! results — `merge(a, b) == merge(b, a)` and chunked accumulation equals
//! whole accumulation, exactly. That exactness is what lets the aggregate
//! artifact stay byte-identical at any thread count, and it is pinned by
//! the property suite in `tests/stats_props.rs`.

use crate::campaign::CampaignSpec;
use crate::json::Json;
use crate::outcome::ScenarioOutcome;
use crate::runner::JobRecord;

/// Schema tag of the `CAMPAIGN_<name>.aggregate.json` artifact.
pub const AGGREGATE_SCHEMA: &str = "hotnoc-campaign-aggregate-v1";

/// Streaming, mergeable summary statistics over `f64` samples.
///
/// Samples live in a sorted order-statistic buffer (campaign groups span
/// the seed axis, so they stay small); non-finite samples are ignored.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SummaryStats {
    /// The samples, sorted ascending by `f64::total_cmp`.
    samples: Vec<f64>,
}

impl SummaryStats {
    /// An empty summary.
    pub fn new() -> SummaryStats {
        SummaryStats::default()
    }

    /// A summary of the given samples.
    pub fn of(samples: &[f64]) -> SummaryStats {
        let mut s = SummaryStats::new();
        for &x in samples {
            s.record(x);
        }
        s
    }

    /// Records one sample. Non-finite values are ignored (they would poison
    /// every derived statistic).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let at = self.samples.partition_point(|s| s.total_cmp(&x).is_lt());
        self.samples.insert(at, x);
    }

    /// Folds another summary into this one. Exactly commutative and
    /// associative: the result depends only on the combined sample
    /// multiset.
    pub fn merge(&mut self, other: &SummaryStats) {
        self.samples.extend_from_slice(&other.samples);
        self.samples.sort_by(f64::total_cmp);
    }

    /// Number of (finite) samples recorded.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.first().copied()
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.last().copied()
    }

    /// Arithmetic mean (summed in ascending order, so the value is a pure
    /// function of the sample multiset), or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Sample standard deviation (the `n - 1` estimator), or `None` with
    /// fewer than two samples.
    pub fn std_dev(&self) -> Option<f64> {
        let n = self.samples.len();
        if n < 2 {
            return None;
        }
        let mean = self.mean().expect("non-empty");
        let ss: f64 = self.samples.iter().map(|&x| (x - mean) * (x - mean)).sum();
        Some((ss / (n - 1) as f64).sqrt())
    }

    /// The `q`-quantile (0 <= q <= 1) by linear interpolation between
    /// adjacent order statistics, or `None` when empty. `quantile(0.5)` of
    /// an even-sized sample is the midpoint of the two central values,
    /// matching the `bench_regress` median.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let h = q * (self.samples.len() - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        Some(self.samples[lo] + frac * (self.samples[hi] - self.samples[lo]))
    }

    /// The median (`quantile(0.5)`).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The 95th percentile (`quantile(0.95)`).
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Half-width of the two-sided 95% confidence interval of the mean
    /// (`t_{0.975, n-1} * s / sqrt(n)`), or `None` with fewer than two
    /// samples.
    pub fn ci95_half_width(&self) -> Option<f64> {
        let n = self.count();
        let s = self.std_dev()?;
        Some(t_critical_95(n - 1) * s / (n as f64).sqrt())
    }

    /// The two-sided 95% confidence interval of the mean as `(lo, hi)`, or
    /// `None` with fewer than two samples.
    pub fn ci95(&self) -> Option<(f64, f64)> {
        let mean = self.mean()?;
        let hw = self.ci95_half_width()?;
        Some((mean - hw, mean + hw))
    }
}

/// Two-sided 95% critical value of Student's t distribution for `df`
/// degrees of freedom. Exact table through df = 30, then the standard
/// table rows at 40 / 60 / 120; in between, `df` rounds **down** to the
/// nearest tabulated row, so the returned value is always >= the true
/// critical value (conservative: intervals over-cover rather than
/// under-cover) and non-increasing in `df`.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=39 => 2.042,
        40..=59 => 2.021,
        60..=119 => 2.000,
        _ => 1.980,
    }
}

/// Identifies one campaign group: every job that differs only in its
/// seed-axis value. Derived from the job name by stripping the trailing
/// `/s<seed>` segment the expansion appends.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupKey(String);

impl GroupKey {
    /// The group of one expanded job name.
    pub fn of_name(name: &str) -> GroupKey {
        if let Some((head, tail)) = name.rsplit_once("/s") {
            if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) {
                return GroupKey(head.to_string());
            }
        }
        GroupKey(name.to_string())
    }

    /// The group key as text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for GroupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Whether smaller or larger values of a metric are preferable — the
/// orientation the diff engine uses to call a change an improvement or a
/// regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latency, peak temperature, stall, energy).
    LowerIsBetter,
    /// Larger is better (reduction, delivered packets).
    HigherIsBetter,
}

/// The preferred direction of a named metric. Defaults to lower-is-better;
/// the exceptions are the "more is good" counters.
pub fn metric_direction(name: &str) -> Direction {
    match name {
        "reduction" | "delivered" | "offered" | "phases" => Direction::HigherIsBetter,
        _ => Direction::LowerIsBetter,
    }
}

/// The headline metric of each outcome kind — the single number the
/// summary table and the diff verdict key on.
pub fn headline_metric(kind: &str) -> &'static str {
    match kind {
        "traffic" => "mean_latency_cycles",
        "plan-cost" => "stall_us",
        // cosim and adaptive compare on the achieved peak temperature.
        _ => "peak",
    }
}

/// Flattens an outcome into `(metric name, value)` pairs in a fixed,
/// kind-specific order (the order the aggregate artifact serializes in).
pub fn outcome_metrics(outcome: &ScenarioOutcome) -> Vec<(&'static str, f64)> {
    match outcome {
        ScenarioOutcome::Cosim(m) => vec![
            ("peak", m.peak),
            ("reduction", m.reduction),
            ("base_peak", m.base_peak),
            ("mean_temp", m.mean_temp),
            ("throughput_penalty", m.throughput_penalty),
            ("stall_seconds", m.stall_seconds),
            ("migration_energy_j", m.migration_energy_j),
            ("migrations", m.migrations as f64),
        ],
        ScenarioOutcome::Adaptive(m) => vec![
            ("peak", m.peak),
            ("reduction", m.reduction),
            ("base_peak", m.base_peak),
            ("throughput_penalty", m.throughput_penalty),
            ("migrations", m.schedule.len() as f64),
        ],
        ScenarioOutcome::PlanCost(m) => vec![
            ("stall_us", m.stall_us),
            ("phases", m.phases as f64),
            ("flit_hops", m.flit_hops as f64),
            ("energy_uj", m.energy_uj),
            ("moves", m.moves as f64),
        ],
        ScenarioOutcome::Traffic(m) => {
            // The latency fields use 0 as their "nothing was delivered"
            // sentinel; a fully-dropped degraded run has no latency
            // *samples*, and letting its sentinels into a group would drag
            // the medians towards a 0-cycle latency that never happened.
            // NaN keeps the metric slot (and its serialized position) while
            // [`SummaryStats::record`] drops the non-sample.
            let latency = |x: f64| if m.delivered > 0 { x } else { f64::NAN };
            vec![
                ("mean_latency_cycles", latency(m.mean_latency_cycles)),
                ("p50_latency_cycles", latency(m.p50_latency_cycles as f64)),
                ("p95_latency_cycles", latency(m.p95_latency_cycles as f64)),
                ("max_latency_cycles", latency(m.max_latency_cycles as f64)),
                ("offered", m.offered as f64),
                ("delivered", m.delivered as f64),
                ("flit_hops", m.flit_hops as f64),
            ]
        }
    }
}

/// Summary statistics of one campaign group across the seed axis.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAggregate {
    /// The group.
    pub key: GroupKey,
    /// Outcome kind tag shared by the group's records.
    pub kind: &'static str,
    /// Jobs collapsed into this group.
    pub n: u64,
    /// Per-metric summaries, in [`outcome_metrics`] order.
    pub metrics: Vec<(&'static str, SummaryStats)>,
}

impl GroupAggregate {
    /// The summary of one metric by name.
    pub fn metric(&self, name: &str) -> Option<&SummaryStats> {
        self.metrics
            .iter()
            .find(|(m, _)| *m == name)
            .map(|(_, s)| s)
    }

    /// The summary of this group's headline metric.
    pub fn headline(&self) -> Option<&SummaryStats> {
        self.metric(headline_metric(self.kind))
    }
}

/// Collapses campaign records across the seed axis: one [`GroupAggregate`]
/// per group, in first-appearance (job-index) order. Records whose group
/// mixes outcome kinds keep the first kind and skip mismatching records
/// (cannot happen for engine-expanded campaigns, where a group differs
/// only by seed).
pub fn aggregate(records: &[JobRecord]) -> Vec<GroupAggregate> {
    let mut groups: Vec<GroupAggregate> = Vec::new();
    for rec in records {
        let key = GroupKey::of_name(&rec.spec.name);
        let kind = rec.outcome.kind();
        let metrics = outcome_metrics(&rec.outcome);
        match groups.iter_mut().find(|g| g.key == key) {
            None => {
                groups.push(GroupAggregate {
                    key,
                    kind,
                    n: 1,
                    metrics: metrics
                        .into_iter()
                        .map(|(name, v)| (name, SummaryStats::of(&[v])))
                        .collect(),
                });
            }
            Some(g) => {
                if g.kind != kind {
                    continue;
                }
                g.n += 1;
                for (name, v) in metrics {
                    if let Some((_, s)) = g.metrics.iter_mut().find(|(m, _)| *m == name) {
                        s.record(v);
                    }
                }
            }
        }
    }
    groups
}

/// Serializes group aggregates to the canonical
/// `hotnoc-campaign-aggregate-v1` document. Groups appear in job-index
/// order and every statistic is a deterministic function of the sample
/// multiset, so the artifact is byte-identical at any thread count.
pub fn aggregate_json(spec: &CampaignSpec, groups: &[GroupAggregate]) -> String {
    let stat_json = |s: &SummaryStats| {
        let mut fields = vec![("n", Json::int(s.count()))];
        if let Some(mean) = s.mean() {
            fields.push(("mean", Json::Num(mean)));
            fields.push(("min", Json::Num(s.min().expect("non-empty"))));
            fields.push(("max", Json::Num(s.max().expect("non-empty"))));
            fields.push(("median", Json::Num(s.median().expect("non-empty"))));
            fields.push(("p95", Json::Num(s.p95().expect("non-empty"))));
        }
        if let Some(sd) = s.std_dev() {
            fields.push(("std_dev", Json::Num(sd)));
            let (lo, hi) = s.ci95().expect("n >= 2");
            fields.push(("ci95", Json::Array(vec![Json::Num(lo), Json::Num(hi)])));
        }
        Json::object(fields)
    };
    let doc = Json::object(vec![
        ("schema", Json::str(AGGREGATE_SCHEMA)),
        ("name", Json::Str(spec.name.clone())),
        ("fingerprint", Json::Str(spec.fingerprint())),
        ("groups", Json::int(groups.len() as u64)),
        (
            "results",
            Json::Array(
                groups
                    .iter()
                    .map(|g| {
                        Json::object(vec![
                            ("group", Json::str(g.key.as_str())),
                            ("kind", Json::str(g.kind)),
                            ("n", Json::int(g.n)),
                            (
                                "metrics",
                                Json::Object(
                                    g.metrics
                                        .iter()
                                        .map(|(name, s)| (name.to_string(), stat_json(s)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_has_no_statistics() {
        let s = SummaryStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.ci95(), None);
    }

    #[test]
    fn single_sample_statistics() {
        let s = SummaryStats::of(&[4.5]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), Some(4.5));
        assert_eq!(s.min(), Some(4.5));
        assert_eq!(s.max(), Some(4.5));
        assert_eq!(s.median(), Some(4.5));
        assert_eq!(s.std_dev(), None, "no spread estimate from one sample");
        assert_eq!(s.ci95(), None);
    }

    #[test]
    fn known_values() {
        // {1, 2, 3, 4, 5}: mean 3, sample std sqrt(2.5), median 3.
        let s = SummaryStats::of(&[3.0, 1.0, 5.0, 2.0, 4.0]);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.median(), Some(3.0));
        assert!((s.std_dev().unwrap() - 2.5f64.sqrt()).abs() < 1e-12);
        // CI: 3 +/- 2.776 * sqrt(2.5)/sqrt(5).
        let hw = s.ci95_half_width().unwrap();
        assert!((hw - 2.776 * (2.5f64 / 5.0).sqrt()).abs() < 1e-12);
        let (lo, hi) = s.ci95().unwrap();
        assert!((lo - (3.0 - hw)).abs() < 1e-12);
        assert!((hi - (3.0 + hw)).abs() < 1e-12);
    }

    #[test]
    fn even_sample_median_is_the_midpoint() {
        let s = SummaryStats::of(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(s.median(), Some(2.5));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(10.0));
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let s = SummaryStats::of(&[1.0, f64::NAN, f64::INFINITY, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn merge_matches_whole_recording_exactly() {
        let xs = [0.1, 7.3, 2.2, 9.9, 0.30000000000000004, 5.5, 1e-9];
        let whole = SummaryStats::of(&xs);
        let mut a = SummaryStats::of(&xs[..3]);
        let b = SummaryStats::of(&xs[3..]);
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.mean(), whole.mean());
        assert_eq!(a.std_dev(), whole.std_dev());
    }

    #[test]
    fn t_table_is_non_increasing() {
        let mut last = f64::INFINITY;
        for df in 0..200 {
            let t = t_critical_95(df);
            assert!(t <= last, "t({df}) = {t} rose above {last}");
            last = t;
        }
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(1_000_000), 1.980);
        // Rounding down keeps brackets conservative: df 31 must not borrow
        // the *smaller* critical value of df 40 (true t(31) ~ 2.040).
        assert_eq!(t_critical_95(31), 2.042);
        assert_eq!(t_critical_95(40), 2.021);
        assert_eq!(t_critical_95(60), 2.000);
        assert_eq!(t_critical_95(120), 1.980);
    }

    #[test]
    fn group_key_strips_only_the_seed_suffix() {
        assert_eq!(
            GroupKey::of_name("A/w0:traffic:uniform/baseline/s17").as_str(),
            "A/w0:traffic:uniform/baseline"
        );
        assert_eq!(
            GroupKey::of_name("A/w0:ldpc/xy-shift/p8/s0").as_str(),
            "A/w0:ldpc/xy-shift/p8"
        );
        // No seed suffix: the whole name is the group.
        assert_eq!(GroupKey::of_name("plain-name").as_str(), "plain-name");
        assert_eq!(GroupKey::of_name("a/sX").as_str(), "a/sX");
    }

    #[test]
    fn empty_histogram_records_do_not_drag_latency_aggregates() {
        use crate::outcome::TrafficMetrics;
        use crate::spec::ScenarioSpec;
        let spec = |seed: u64| {
            ScenarioSpec::parse(&format!(
                r#"{{"name": "A/w0:traffic:uniform/baseline/s{seed}",
                     "chip": {{"config": "A"}},
                     "workload": {{"kind": "traffic", "pattern": "uniform", "rate": 0.05, "packet_len": 2, "cycles": 100}},
                     "policy": {{"kind": "baseline"}},
                     "mode": "cosim", "fidelity": "quick", "seed": {seed}}}"#
            ))
            .expect("spec parses")
        };
        let healthy = |latency: f64| {
            ScenarioOutcome::Traffic(TrafficMetrics {
                offered: 20,
                delivered: 18,
                drained: true,
                mean_latency_cycles: latency,
                p50_latency_cycles: latency as u64,
                p95_latency_cycles: latency as u64 + 2,
                max_latency_cycles: latency as u64 + 5,
                flit_hops: 100,
                packets_dropped: 0,
                flits_dropped: 0,
                detour_hops: 0,
            })
        };
        // A fully-dropped degraded run: the latency fields are the 0
        // "nothing delivered" sentinel, not real samples.
        let dropped = ScenarioOutcome::Traffic(TrafficMetrics {
            offered: 20,
            delivered: 0,
            drained: true,
            mean_latency_cycles: 0.0,
            p50_latency_cycles: 0,
            p95_latency_cycles: 0,
            max_latency_cycles: 0,
            flit_hops: 0,
            packets_dropped: 20,
            flits_dropped: 40,
            detour_hops: 0,
        });
        // The degraded record comes FIRST, so the fix must still create
        // the latency slots in canonical order for the later samples.
        let records = vec![
            JobRecord {
                index: 0,
                spec: spec(1),
                outcome: dropped,
            },
            JobRecord {
                index: 1,
                spec: spec(2),
                outcome: healthy(8.0),
            },
            JobRecord {
                index: 2,
                spec: spec(3),
                outcome: healthy(10.0),
            },
        ];
        let groups = aggregate(&records);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.n, 3, "the degraded record still belongs to the group");
        let names: Vec<&str> = g.metrics.iter().map(|(m, _)| *m).collect();
        assert_eq!(
            names,
            [
                "mean_latency_cycles",
                "p50_latency_cycles",
                "p95_latency_cycles",
                "max_latency_cycles",
                "offered",
                "delivered",
                "flit_hops"
            ],
            "slot order must stay canonical"
        );
        let mean = g.metric("mean_latency_cycles").unwrap();
        assert_eq!(mean.count(), 2, "the sentinel must not be a sample");
        assert_eq!(mean.median(), Some(9.0), "sentinel dragged the median");
        assert_eq!(mean.min(), Some(8.0));
        // The throughput counters still see all three records.
        assert_eq!(g.metric("offered").unwrap().count(), 3);
        assert_eq!(g.metric("delivered").unwrap().median(), Some(18.0));
        assert_eq!(g.metric("delivered").unwrap().min(), Some(0.0));
    }

    #[test]
    fn directions_and_headlines() {
        assert_eq!(
            metric_direction("mean_latency_cycles"),
            Direction::LowerIsBetter
        );
        assert_eq!(metric_direction("reduction"), Direction::HigherIsBetter);
        assert_eq!(headline_metric("traffic"), "mean_latency_cycles");
        assert_eq!(headline_metric("cosim"), "peak");
        assert_eq!(headline_metric("plan-cost"), "stall_us");
    }
}
