//! Distributed campaign sharding: run a deterministic stripe of a
//! campaign's expanded job list on one host, then merge the shard
//! artifacts back into the exact single-host campaign artifact.
//!
//! A shard `i/n` owns every job whose index is congruent to `i` modulo
//! `n` over the stably-ordered expansion — so the stripes partition the
//! job list exactly (disjoint, complete, order-preserving) and every job
//! keeps the per-job seed the unsharded run would derive
//! ([`crate::campaign::derive_job_seed`] depends only on the campaign
//! seed, the axis seed, and the job index, none of which sharding
//! changes). Each shard journals to its own
//! `CAMPAIGN_<name>.shard-i-of-n.manifest.jsonl` (same kill/resume
//! guarantees as a whole run; the header additionally binds the shard
//! coordinates) and emits a `hotnoc-campaign-shard-v1` artifact on
//! completion.
//!
//! [`merge_shards`] validates a shard set — same campaign fingerprint,
//! complete `0..n` cover, no duplicates — and reassembles the records in
//! canonical job order. Because [`crate::runner::campaign_json`] and
//! [`crate::stats::aggregate_json`] are pure functions of the spec plus
//! the index-ordered records, the merged `CAMPAIGN_<name>.json` and
//! `.aggregate.json` are byte-identical to a single-host whole run.

use crate::campaign::CampaignSpec;
use crate::error::ScenarioError;
use crate::json::Json;
use crate::outcome::ScenarioOutcome;
use crate::runner::{
    execute_journaled, remove_stale, JobRecord, JournalSlice, RunnerOptions, MANIFEST_SCHEMA,
};
use crate::spec::ScenarioSpec;
use std::fmt;
use std::path::PathBuf;

/// Schema tag of the `CAMPAIGN_<name>.shard-i-of-n.json` artifact.
pub const SHARD_SCHEMA: &str = "hotnoc-campaign-shard-v1";

/// Shard coordinates: this run owns stripe `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Which stripe (0-based, `< count`).
    pub index: usize,
    /// Total number of stripes (>= 1).
    pub count: usize,
}

impl Shard {
    /// Builds validated shard coordinates.
    ///
    /// # Errors
    ///
    /// Rejects `count == 0` and `index >= count`.
    pub fn new(index: usize, count: usize) -> Result<Shard, String> {
        if count == 0 {
            return Err("shard count must be >= 1".into());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range (count {count})"));
        }
        Ok(Shard { index, count })
    }

    /// Parses the CLI form `i/n` (e.g. `0/3`).
    ///
    /// # Errors
    ///
    /// Rejects anything that is not two decimal integers separated by one
    /// `/`, or coordinates [`Shard::new`] rejects.
    pub fn parse(text: &str) -> Result<Shard, String> {
        let bad = || format!("bad shard {text:?} (want i/n, e.g. 0/3)");
        let (i, n) = text.split_once('/').ok_or_else(bad)?;
        let index: usize = i.parse().map_err(|_| bad())?;
        let count: usize = n.parse().map_err(|_| bad())?;
        Shard::new(index, count)
    }

    /// The artifact/manifest filename tag, e.g. `shard-0-of-3`.
    pub fn file_tag(&self) -> String {
        format!("shard-{}-of-{}", self.index, self.count)
    }

    /// The job indices this shard owns out of a `total`-job expansion:
    /// every index congruent to `self.index` modulo `self.count`, in
    /// ascending order. Stripes over the same `total` partition
    /// `0..total` exactly; a stripe may be empty when `count > total`.
    pub fn stripe(&self, total: usize) -> Vec<usize> {
        (self.index..total).step_by(self.count).collect()
    }

    /// The `{"index": i, "count": n}` JSON form embedded in manifests and
    /// shard artifacts.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("index", Json::int(self.index as u64)),
            ("count", Json::int(self.count as u64)),
        ])
    }

    /// Decodes [`Shard::to_json`].
    ///
    /// # Errors
    ///
    /// Rejects missing/non-integer fields and invalid coordinates.
    pub fn from_json(j: &Json) -> Result<Shard, String> {
        Shard::new(j.req_u64("index")? as usize, j.req_u64("count")? as usize)
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The state of a shard after one [`run_campaign_shard`] invocation.
#[derive(Debug)]
pub struct ShardRun {
    /// The campaign the shard belongs to.
    pub spec: CampaignSpec,
    /// Which stripe ran.
    pub shard: Shard,
    /// Completed jobs of this stripe in (global) index order — all of
    /// them when the shard is complete.
    pub completed: Vec<JobRecord>,
    /// Jobs in this stripe.
    pub shard_jobs: usize,
    /// Jobs in the whole campaign expansion.
    pub total_jobs: usize,
    /// Jobs recovered from the shard manifest instead of recomputed.
    pub resumed_jobs: usize,
    /// Jobs executed by this invocation.
    pub executed_jobs: usize,
    /// Path of the shard's manifest journal.
    pub manifest_path: PathBuf,
    /// Path of the emitted shard artifact; `None` while the shard is
    /// still partial.
    pub json_path: Option<PathBuf>,
}

impl ShardRun {
    /// `true` once every job of the stripe has a journaled outcome.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.shard_jobs
    }
}

/// Runs (or resumes) one shard of a campaign. Same engine and guarantees
/// as [`crate::runner::run_campaign`], restricted to the shard's stripe:
/// kill-safe journaling to `CAMPAIGN_<name>.shard-i-of-n.manifest.jsonl`,
/// byte-identical artifacts at any thread count and across kill/resume.
///
/// # Errors
///
/// Propagates spec validation failures, filesystem trouble and the first
/// failing job (already-journaled sibling results survive for the next
/// attempt).
pub fn run_campaign_shard(
    spec: &CampaignSpec,
    shard: Shard,
    opts: &RunnerOptions,
) -> Result<ShardRun, ScenarioError> {
    spec.validate().map_err(ScenarioError::Spec)?;
    let jobs = spec.expand();
    let fingerprint = spec.fingerprint();
    std::fs::create_dir_all(&opts.out_dir).map_err(|e| ScenarioError::io(&opts.out_dir, e))?;
    let tag = shard.file_tag();
    let manifest_path = opts
        .out_dir
        .join(format!("CAMPAIGN_{}.{tag}.manifest.jsonl", spec.name));
    let json_path = opts
        .out_dir
        .join(format!("CAMPAIGN_{}.{tag}.json", spec.name));
    remove_stale(&json_path)?;

    let slice = JournalSlice {
        jobs: &jobs,
        work: shard.stripe(jobs.len()),
        manifest_path,
        // The whole-run header plus the shard coordinates: a whole-run
        // journal can never satisfy a shard resume (or vice versa), and a
        // shard journal from different coordinates restarts cleanly.
        header: Json::object(vec![
            ("schema", Json::str(MANIFEST_SCHEMA)),
            ("name", Json::Str(spec.name.clone())),
            ("fingerprint", Json::Str(fingerprint)),
            ("jobs", Json::int(jobs.len() as u64)),
            ("shard", shard.to_json()),
        ]),
        shard: Some((shard.index as u64, shard.count as u64)),
    };
    let shard_jobs = slice.work.len();
    let sliced = execute_journaled(&slice, opts)?;

    let completed: Vec<JobRecord> = sliced
        .outcomes
        .into_iter()
        .map(|(index, outcome)| JobRecord {
            index,
            spec: jobs[index].clone(),
            outcome,
        })
        .collect();

    let mut run = ShardRun {
        spec: spec.clone(),
        shard,
        completed,
        shard_jobs,
        total_jobs: jobs.len(),
        resumed_jobs: sliced.resumed_jobs,
        executed_jobs: sliced.executed_jobs,
        manifest_path: slice.manifest_path,
        json_path: None,
    };
    if run.is_complete() {
        std::fs::write(
            &json_path,
            shard_json(spec, shard, run.total_jobs, &run.completed),
        )
        .map_err(|e| ScenarioError::io(&json_path, e))?;
        run.json_path = Some(json_path);
    }
    Ok(run)
}

/// Serializes a completed shard to the `hotnoc-campaign-shard-v1`
/// document. Records carry their *global* job indices and the same
/// `{job, scenario, spec, outcome}` shape as the campaign artifact, so a
/// merge is pure reassembly.
pub fn shard_json(
    spec: &CampaignSpec,
    shard: Shard,
    total_jobs: usize,
    records: &[JobRecord],
) -> String {
    let doc = Json::object(vec![
        ("schema", Json::str(SHARD_SCHEMA)),
        ("name", Json::Str(spec.name.clone())),
        ("seed", Json::int(spec.seed)),
        ("fingerprint", Json::Str(spec.fingerprint())),
        ("shard", shard.to_json()),
        ("spec", spec.to_json()),
        ("total_jobs", Json::int(total_jobs as u64)),
        ("jobs", Json::int(records.len() as u64)),
        (
            "results",
            Json::Array(
                records
                    .iter()
                    .map(|r| {
                        Json::object(vec![
                            ("job", Json::int(r.index as u64)),
                            ("scenario", Json::Str(r.spec.name.clone())),
                            ("spec", r.spec.to_json()),
                            ("outcome", r.outcome.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

/// A parsed-and-validated shard artifact.
#[derive(Debug)]
pub struct ShardDoc {
    /// The embedded campaign spec.
    pub spec: CampaignSpec,
    /// Which stripe this artifact covers.
    pub shard: Shard,
    /// Jobs in the whole campaign expansion.
    pub total_jobs: usize,
    /// The stripe's completed jobs, in (global) index order.
    pub records: Vec<JobRecord>,
}

/// Strictly parses and cross-validates a shard artifact: schema tag,
/// fingerprint consistency with the embedded spec, shard coordinates,
/// and that the results cover the shard's stripe exactly, in order, with
/// each record's spec matching the campaign expansion.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn parse_shard_document(text: &str) -> Result<ShardDoc, String> {
    validate_shard_json(&Json::parse(text)?)
}

/// [`parse_shard_document`] over an already-parsed document.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_shard_json(j: &Json) -> Result<ShardDoc, String> {
    let schema = j.req_str("schema")?;
    if schema != SHARD_SCHEMA {
        return Err(format!("unknown schema {schema:?} (want {SHARD_SCHEMA:?})"));
    }
    let spec = CampaignSpec::from_json(j.req("spec")?)?;
    if j.req_str("name")? != spec.name {
        return Err("top-level name differs from the embedded spec".into());
    }
    if j.req_u64("seed")? != spec.seed {
        return Err("top-level seed differs from the embedded spec".into());
    }
    if j.req_str("fingerprint")? != spec.fingerprint() {
        return Err("fingerprint does not match the embedded spec".into());
    }
    let shard = Shard::from_json(j.req("shard")?)?;
    let jobs = spec.expand();
    if j.req_u64("total_jobs")? as usize != jobs.len() {
        return Err(format!(
            "total_jobs field says {} but the campaign expands to {} jobs",
            j.req_u64("total_jobs")?,
            jobs.len()
        ));
    }
    let stripe = shard.stripe(jobs.len());
    let declared = j.req_u64("jobs")? as usize;
    let results = j.req_array("results")?;
    if declared != results.len() {
        return Err(format!(
            "jobs field says {declared} but results has {} entries",
            results.len()
        ));
    }
    if results.len() != stripe.len() {
        return Err(format!(
            "shard {shard} of {} jobs owns {} but the document records {}",
            jobs.len(),
            stripe.len(),
            results.len()
        ));
    }
    let mut records = Vec::with_capacity(results.len());
    for (i, rec) in results.iter().enumerate() {
        let ctx = |e: String| format!("results[{i}]: {e}");
        let index = rec.req_u64("job").map_err(ctx)? as usize;
        if index != stripe[i] {
            return Err(format!(
                "results[{i}] is job {index} but shard {shard} expects job {} there",
                stripe[i]
            ));
        }
        let spec_i = ScenarioSpec::from_json(rec.req("spec").map_err(ctx)?).map_err(ctx)?;
        if spec_i != jobs[index] {
            return Err(format!(
                "results[{i}] spec does not match the campaign expansion ({})",
                jobs[index].name
            ));
        }
        if rec.req_str("scenario").map_err(ctx)? != jobs[index].name {
            return Err(format!("results[{i}] scenario name mismatch"));
        }
        let outcome = ScenarioOutcome::from_json(rec.req("outcome").map_err(ctx)?).map_err(ctx)?;
        records.push(JobRecord {
            index,
            spec: spec_i,
            outcome,
        });
    }
    Ok(ShardDoc {
        spec,
        shard,
        total_jobs: jobs.len(),
        records,
    })
}

/// A complete campaign reassembled from a validated shard set. Feed
/// `records` to [`crate::runner::campaign_json`] and
/// [`crate::stats::aggregate`] — the outputs are byte-identical to a
/// single-host whole run.
#[derive(Debug)]
pub struct MergedCampaign {
    /// The campaign spec (identical across the shard set).
    pub spec: CampaignSpec,
    /// All job records in canonical (index) order.
    pub records: Vec<JobRecord>,
}

/// Validates a shard set and reassembles the whole campaign: every shard
/// must name the same campaign with the same fingerprint and shard
/// count, and together they must cover stripes `0..n` exactly once.
///
/// # Errors
///
/// Returns a human-readable description of the first violation — a
/// duplicate stripe, a missing stripe, or a campaign/fingerprint/count
/// mismatch.
pub fn merge_shards(docs: Vec<ShardDoc>) -> Result<MergedCampaign, String> {
    let Some(first) = docs.first() else {
        return Err("no shards to merge".into());
    };
    let spec = first.spec.clone();
    let name = spec.name.clone();
    let fingerprint = spec.fingerprint();
    let count = first.shard.count;
    for d in &docs {
        if d.spec.name != name {
            return Err(format!(
                "shard set mixes campaigns {name:?} and {:?}",
                d.spec.name
            ));
        }
        if d.spec.fingerprint() != fingerprint {
            return Err(format!(
                "fingerprint mismatch: shard {} was run against a different {name:?} spec \
                 ({} vs {fingerprint})",
                d.shard,
                d.spec.fingerprint()
            ));
        }
        if d.shard.count != count {
            return Err(format!(
                "shard count mismatch: {} vs {}/{count}",
                d.shard, d.shard.index
            ));
        }
    }
    let mut seen: Vec<Option<&ShardDoc>> = vec![None; count];
    for d in &docs {
        if seen[d.shard.index].is_some() {
            return Err(format!("duplicate shard {}", d.shard));
        }
        seen[d.shard.index] = Some(d);
    }
    if let Some(missing) = seen.iter().position(Option::is_none) {
        return Err(format!("missing shard {missing}/{count}"));
    }

    let total = first.total_jobs;
    let mut slots: Vec<Option<JobRecord>> = vec![None; total];
    for d in docs {
        for r in d.records {
            let index = r.index;
            slots[index] = Some(r);
        }
    }
    // Validated shards cover disjoint stripes that partition 0..total,
    // so every slot is filled.
    let records: Vec<JobRecord> = slots
        .into_iter()
        .map(|s| s.expect("stripe partition covers every job"))
        .collect();
    Ok(MergedCampaign { spec, records })
}

/// Renders the human summary line-set of a shard run.
pub fn shard_summary(run: &ShardRun) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "campaign {} shard {} — {}/{} jobs ({} resumed, {} executed; campaign total {})\n",
        run.spec.name,
        run.shard,
        run.completed.len(),
        run.shard_jobs,
        run.resumed_jobs,
        run.executed_jobs,
        run.total_jobs,
    ));
    let name_w = run
        .completed
        .iter()
        .map(|r| r.spec.name.len())
        .max()
        .unwrap_or(8)
        .max(8);
    s.push_str(&format!("{:>5}  {:<name_w$}  outcome\n", "job", "scenario"));
    for r in &run.completed {
        s.push_str(&format!(
            "{:>5}  {:<name_w$}  {}\n",
            r.index,
            r.spec.name,
            r.outcome.summary()
        ));
    }
    if !run.is_complete() {
        s.push_str(&format!(
            "(partial: {} jobs still pending — re-run to resume from the manifest)\n",
            run.shard_jobs - run.completed.len()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::PolicyAxis;
    use crate::runner::{campaign_json, run_campaign};
    use crate::spec::{ChipKind, Mode, Workload};
    use crate::stats::{aggregate, aggregate_json};
    use hotnoc_core::configs::{ChipConfigId, Fidelity};
    use hotnoc_noc::TrafficPattern;

    fn tiny_campaign(name: &str) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            seed: 7,
            fidelity: Fidelity::Quick,
            mode: Mode::Cosim,
            sim_time_ms: None,
            configs: vec![ChipKind::Config(ChipConfigId::A)],
            workloads: vec![
                Workload::Traffic {
                    pattern: TrafficPattern::UniformRandom,
                    rate: 0.05,
                    packet_len: 2,
                    cycles: 200,
                },
                Workload::Traffic {
                    pattern: TrafficPattern::Transpose,
                    rate: 0.05,
                    packet_len: 2,
                    cycles: 200,
                },
            ],
            policies: vec![PolicyAxis::Baseline],
            schemes: vec![],
            periods: vec![],
            offered_loads: vec![],
            failed_routers: vec![],
            failed_links: vec![],
            seeds: vec![1, 2, 3],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hotnoc-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_parse_accepts_valid_rejects_invalid() {
        assert_eq!(Shard::parse("0/3").unwrap(), Shard { index: 0, count: 3 });
        assert_eq!(Shard::parse("2/3").unwrap(), Shard { index: 2, count: 3 });
        assert_eq!(Shard::parse("0/1").unwrap(), Shard { index: 0, count: 1 });
        for bad in ["3/3", "0/0", "banana", "1", "1/2/3", "-1/3", "a/b", ""] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert_eq!(Shard::parse("1/4").unwrap().to_string(), "1/4");
        assert_eq!(Shard::parse("1/4").unwrap().file_tag(), "shard-1-of-4");
    }

    #[test]
    fn stripes_partition_and_survive_json_roundtrip() {
        for total in [0usize, 1, 5, 6, 7, 12] {
            for count in 1usize..=8 {
                let mut cover = vec![false; total];
                for index in 0..count {
                    let shard = Shard::new(index, count).unwrap();
                    let stripe = shard.stripe(total);
                    assert!(stripe.windows(2).all(|w| w[0] < w[1]), "ascending");
                    for &i in &stripe {
                        assert_eq!(i % count, index);
                        assert!(!cover[i], "job {i} claimed twice");
                        cover[i] = true;
                    }
                    let back = Shard::from_json(&shard.to_json()).unwrap();
                    assert_eq!(back, shard);
                }
                assert!(cover.iter().all(|&c| c), "total {total} count {count}");
            }
        }
    }

    #[test]
    fn merged_shards_reproduce_whole_run_bytes() {
        // Whole run: the reference bytes.
        let spec = tiny_campaign("unit-shard-merge");
        let whole_dir = tmp_dir("whole");
        let whole = run_campaign(
            &spec,
            &RunnerOptions {
                threads: 2,
                out_dir: whole_dir.clone(),
                ..RunnerOptions::default()
            },
        )
        .expect("whole run");
        let whole_campaign =
            std::fs::read_to_string(whole.json_path.as_ref().expect("complete")).unwrap();
        let whole_aggregate =
            std::fs::read_to_string(whole.aggregate_path.as_ref().expect("complete")).unwrap();

        // Three shards: shard 1 is interrupted after one job, resumed at a
        // different thread count; shard 2 runs single-threaded.
        let shard_dir = tmp_dir("stripes");
        let mut docs = Vec::new();
        for index in 0..3 {
            let shard = Shard::new(index, 3).unwrap();
            let mut opts = RunnerOptions {
                threads: if index == 2 { 1 } else { 4 },
                out_dir: shard_dir.clone(),
                ..RunnerOptions::default()
            };
            if index == 1 {
                opts.max_jobs = Some(1);
                let partial = run_campaign_shard(&spec, shard, &opts).expect("partial shard");
                assert!(!partial.is_complete());
                assert!(partial.json_path.is_none());
                opts.max_jobs = None;
                opts.threads = 2;
            }
            let run = run_campaign_shard(&spec, shard, &opts).expect("shard run");
            assert!(run.is_complete());
            if index == 1 {
                assert_eq!(run.resumed_jobs, 1);
            }
            let text = std::fs::read_to_string(run.json_path.as_ref().expect("artifact")).unwrap();
            docs.push(parse_shard_document(&text).expect("validates"));
        }

        let merged = merge_shards(docs).expect("merges");
        assert_eq!(campaign_json(&merged.spec, &merged.records), whole_campaign);
        assert_eq!(
            aggregate_json(&merged.spec, &aggregate(&merged.records)),
            whole_aggregate
        );
        let _ = std::fs::remove_dir_all(&whole_dir);
        let _ = std::fs::remove_dir_all(&shard_dir);
    }

    #[test]
    fn empty_stripe_shard_completes_with_zero_jobs() {
        // 6 jobs, 8 shards: shards 6/8 and 7/8 own nothing but are still
        // legal (and required for merge cover).
        let spec = tiny_campaign("unit-shard-empty");
        let dir = tmp_dir("empty");
        let run = run_campaign_shard(
            &spec,
            Shard::new(7, 8).unwrap(),
            &RunnerOptions {
                threads: 1,
                out_dir: dir.clone(),
                ..RunnerOptions::default()
            },
        )
        .expect("runs");
        assert!(run.is_complete());
        assert_eq!(run.shard_jobs, 0);
        let text = std::fs::read_to_string(run.json_path.as_ref().expect("artifact")).unwrap();
        let doc = parse_shard_document(&text).expect("validates");
        assert!(doc.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_bad_shard_sets() {
        let spec = tiny_campaign("unit-shard-reject");
        let dir = tmp_dir("reject");
        let mut docs = Vec::new();
        for index in 0..2 {
            let run = run_campaign_shard(
                &spec,
                Shard::new(index, 2).unwrap(),
                &RunnerOptions {
                    threads: 1,
                    out_dir: dir.clone(),
                    ..RunnerOptions::default()
                },
            )
            .expect("runs");
            docs.push(std::fs::read_to_string(run.json_path.as_ref().expect("artifact")).unwrap());
        }
        let parse = |t: &String| parse_shard_document(t).expect("validates");

        let err = merge_shards(vec![]).unwrap_err();
        assert!(err.contains("no shards"), "{err}");

        let err = merge_shards(vec![parse(&docs[0])]).unwrap_err();
        assert!(err.contains("missing shard 1/2"), "{err}");

        let err = merge_shards(vec![parse(&docs[0]), parse(&docs[0])]).unwrap_err();
        assert!(err.contains("duplicate shard 0/2"), "{err}");

        // A same-name spec with different axes: fingerprint mismatch.
        let mut other = tiny_campaign("unit-shard-reject");
        other.seeds = vec![1, 2];
        let other_dir = tmp_dir("reject-other");
        let other_run = run_campaign_shard(
            &other,
            Shard::new(1, 2).unwrap(),
            &RunnerOptions {
                threads: 1,
                out_dir: other_dir.clone(),
                ..RunnerOptions::default()
            },
        )
        .expect("runs");
        let other_text =
            std::fs::read_to_string(other_run.json_path.as_ref().expect("artifact")).unwrap();
        let err = merge_shards(vec![parse(&docs[0]), parse(&other_text)]).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");

        let ok = merge_shards(vec![parse(&docs[1]), parse(&docs[0])]).expect("order-insensitive");
        assert_eq!(ok.records.len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&other_dir);
    }

    #[test]
    fn shard_and_whole_manifests_do_not_cross_resume() {
        // A whole-run journal must not satisfy a shard resume: the header
        // includes the shard coordinates, so the shard starts fresh.
        let spec = tiny_campaign("unit-shard-isolate");
        let dir = tmp_dir("isolate");
        let opts = RunnerOptions {
            threads: 1,
            out_dir: dir.clone(),
            ..RunnerOptions::default()
        };
        run_campaign(&spec, &opts).expect("whole run");
        // Copy the whole-run journal over the shard journal path.
        let whole_manifest = dir.join("CAMPAIGN_unit-shard-isolate.manifest.jsonl");
        let shard_manifest = dir.join("CAMPAIGN_unit-shard-isolate.shard-0-of-2.manifest.jsonl");
        std::fs::copy(&whole_manifest, &shard_manifest).unwrap();
        let run = run_campaign_shard(&spec, Shard::new(0, 2).unwrap(), &opts).expect("shard run");
        assert_eq!(run.resumed_jobs, 0, "whole-run journal must be ignored");
        assert_eq!(run.executed_jobs, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
