//! The campaign runner: executes an expanded job list in parallel on
//! `minipool`, journals every completed job to an on-disk manifest, resumes
//! a killed campaign from that manifest without recomputing, and emits the
//! machine-readable `CAMPAIGN_<name>.json` artifact plus a human summary
//! table.
//!
//! # Determinism
//!
//! Jobs are independent and each is internally deterministic (see
//! [`crate::run`]); workers pull job indices from a shared counter, so
//! *completion* order varies with the thread count, but results are stored
//! by job index and the artifact is serialized in index order — the emitted
//! `CAMPAIGN_<name>.json` is byte-identical at any `--threads`, and a
//! resumed campaign (outcomes read back from the manifest) produces the
//! same bytes as an uninterrupted one.
//!
//! # Manifest format (`CAMPAIGN_<name>.manifest.jsonl`)
//!
//! Line 1 is a header binding the journal to one campaign fingerprint;
//! every further line is one completed job. A truncated trailing line
//! (killed mid-write) is ignored on resume; a header that does not match
//! the campaign being run restarts the journal from scratch.
//!
//! ```text
//! {"schema": "hotnoc-campaign-manifest-v1", "name": ..., "fingerprint": ..., "jobs": N}
//! {"job": 3, "scenario": "A/w0:ldpc/rotation/p8/s0", "outcome": {...}}
//! ```

use crate::campaign::CampaignSpec;
use crate::error::ScenarioError;
use crate::json::Json;
use crate::outcome::ScenarioOutcome;
use crate::run::{run_scenario, run_scenario_traced_as_job};
use crate::spec::ScenarioSpec;
use crate::stats::{aggregate, aggregate_json, headline_metric};
use crate::tracefile::TraceDoc;
use hotnoc_obs::TraceEvent;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema tag of the `CAMPAIGN_<name>.json` artifact.
pub const CAMPAIGN_SCHEMA: &str = "hotnoc-campaign-v1";

/// Schema tag of the manifest journal header.
pub const MANIFEST_SCHEMA: &str = "hotnoc-campaign-manifest-v1";

/// How the runner executes a campaign.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads (>= 1). Defaults to `HOTNOC_THREADS` / available
    /// parallelism via [`minipool::configured_threads`].
    pub threads: usize,
    /// Directory receiving the manifest and the campaign artifact.
    pub out_dir: PathBuf,
    /// Cap on how many *new* jobs this invocation executes; `None` runs to
    /// completion. Used to exercise (and test) interrupt/resume.
    pub max_jobs: Option<usize>,
    /// Discard any existing manifest instead of resuming from it.
    pub fresh: bool,
    /// Print one progress line per completed job to stderr.
    pub progress: bool,
    /// Write each job's deterministic `hotnoc-trace-v1` event trace to
    /// `TRACE_<campaign>.job<index>.jsonl` in this directory.
    pub trace_dir: Option<PathBuf>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            threads: minipool::configured_threads(),
            out_dir: PathBuf::from("."),
            max_jobs: None,
            fresh: false,
            progress: false,
            trace_dir: None,
        }
    }
}

/// Heartbeat cadence: a progress/ETA line every this many completed jobs…
const HEARTBEAT_JOBS: usize = 25;

/// …or whenever this much wall time has passed since the last one.
const HEARTBEAT_SECS: u64 = 10;

/// One completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Index in the expanded job list.
    pub index: usize,
    /// The job's scenario.
    pub spec: ScenarioSpec,
    /// Its result.
    pub outcome: ScenarioOutcome,
}

/// The state of a campaign after one `run_campaign` invocation.
#[derive(Debug)]
pub struct CampaignRun {
    /// The campaign that ran.
    pub spec: CampaignSpec,
    /// Completed jobs in index order (all of them when the run is
    /// complete).
    pub completed: Vec<JobRecord>,
    /// Total jobs in the expanded list.
    pub total_jobs: usize,
    /// Jobs recovered from the manifest instead of recomputed.
    pub resumed_jobs: usize,
    /// Jobs executed by this invocation.
    pub executed_jobs: usize,
    /// Path of the manifest journal.
    pub manifest_path: PathBuf,
    /// Path of the emitted `CAMPAIGN_<name>.json`; `None` while the
    /// campaign is still partial.
    pub json_path: Option<PathBuf>,
    /// Path of the emitted `CAMPAIGN_<name>.aggregate.json` (seed-axis
    /// statistics, `hotnoc-campaign-aggregate-v1`); `None` while the
    /// campaign is still partial.
    pub aggregate_path: Option<PathBuf>,
    /// Seed-axis group aggregates over `completed`, in first-appearance
    /// order (computed once; the summary table and the aggregate artifact
    /// both read from here).
    pub groups: Vec<crate::stats::GroupAggregate>,
}

impl CampaignRun {
    /// `true` once every job has a journaled outcome.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.total_jobs
    }
}

/// Runs (or resumes) a campaign.
///
/// # Errors
///
/// Propagates spec validation failures, filesystem trouble and the first
/// failing job (already-journaled sibling results survive for the next
/// attempt).
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &RunnerOptions,
) -> Result<CampaignRun, ScenarioError> {
    run_campaign_on(spec, opts, &minipool::ThreadPool::new())
}

/// [`run_campaign`] on a caller-owned pool. A resident process (the serve
/// daemon) keeps one warm pool across submissions instead of spinning up
/// threads per campaign; `opts.threads` still bounds how many workers this
/// run asks the pool to provide. Artifact bytes are identical either way.
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_on(
    spec: &CampaignSpec,
    opts: &RunnerOptions,
    pool: &minipool::ThreadPool,
) -> Result<CampaignRun, ScenarioError> {
    spec.validate().map_err(ScenarioError::Spec)?;
    let jobs = spec.expand();
    let fingerprint = spec.fingerprint();
    std::fs::create_dir_all(&opts.out_dir).map_err(|e| ScenarioError::io(&opts.out_dir, e))?;
    let manifest_path = opts
        .out_dir
        .join(format!("CAMPAIGN_{}.manifest.jsonl", spec.name));
    let json_path = opts.out_dir.join(format!("CAMPAIGN_{}.json", spec.name));
    let aggregate_path = opts
        .out_dir
        .join(format!("CAMPAIGN_{}.aggregate.json", spec.name));

    // Any pre-existing artifact is unproven from here on: the spec may have
    // changed under the same name, and this run may stop partway. Remove it
    // now and re-emit on completion, so artifact presence reliably signals
    // "this campaign, complete".
    for stale in [&json_path, &aggregate_path] {
        remove_stale(stale)?;
    }

    let slice = JournalSlice {
        jobs: &jobs,
        work: (0..jobs.len()).collect(),
        manifest_path,
        header: Json::object(vec![
            ("schema", Json::str(MANIFEST_SCHEMA)),
            ("name", Json::Str(spec.name.clone())),
            ("fingerprint", Json::Str(fingerprint)),
            ("jobs", Json::int(jobs.len() as u64)),
        ]),
        shard: None,
    };
    let sliced = execute_journaled_on(&slice, opts, pool)?;

    let completed: Vec<JobRecord> = sliced
        .outcomes
        .into_iter()
        .map(|(index, outcome)| JobRecord {
            index,
            spec: jobs[index].clone(),
            outcome,
        })
        .collect();

    let groups = aggregate(&completed);
    let mut run = CampaignRun {
        spec: spec.clone(),
        completed,
        total_jobs: jobs.len(),
        resumed_jobs: sliced.resumed_jobs,
        executed_jobs: sliced.executed_jobs,
        manifest_path: slice.manifest_path,
        json_path: None,
        aggregate_path: None,
        groups,
    };
    if run.is_complete() {
        std::fs::write(&json_path, campaign_json(spec, &run.completed))
            .map_err(|e| ScenarioError::io(&json_path, e))?;
        run.json_path = Some(json_path);
        std::fs::write(&aggregate_path, aggregate_json(spec, &run.groups))
            .map_err(|e| ScenarioError::io(&aggregate_path, e))?;
        run.aggregate_path = Some(aggregate_path);
    }
    Ok(run)
}

/// Removes a possibly-present stale artifact.
pub(crate) fn remove_stale(path: &Path) -> Result<(), ScenarioError> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(ScenarioError::io(path, e)),
    }
}

/// One journaled execution slice: the subset of a campaign's expanded job
/// list that an invocation owns, the journal it persists to, and the exact
/// header line binding that journal to this (campaign, slice) pair. The
/// whole-campaign runner and the shard runner ([`crate::shard`]) drive the
/// same engine — a shard is "the same run, smaller work list, its own
/// journal".
pub(crate) struct JournalSlice<'a> {
    /// The campaign's full expanded job list; `work` indices refer into it.
    pub jobs: &'a [ScenarioSpec],
    /// The job indices this run owns, strictly ascending (the modulo
    /// stripe for shards, `0..jobs.len()` for a whole run).
    pub work: Vec<usize>,
    /// Path of the journal.
    pub manifest_path: PathBuf,
    /// The journal's header line. A resume recovers outcomes only from a
    /// journal whose first line parses back to exactly this value, so any
    /// drift — an edited spec (fingerprint), a different job count,
    /// different shard coordinates — restarts the journal instead of
    /// mixing results.
    pub header: Json,
    /// `(shard, shard_count)` when this slice is a shard stripe; traced
    /// jobs then carry a [`TraceEvent::ShardProgress`] record keyed by
    /// stripe position (never completion order).
    pub shard: Option<(u64, u64)>,
}

/// What [`execute_journaled`] produced for its slice.
pub(crate) struct SliceOutcome {
    /// Completed outcomes by job index (journaled + freshly computed).
    pub outcomes: BTreeMap<usize, ScenarioOutcome>,
    /// Jobs recovered from the manifest instead of recomputed.
    pub resumed_jobs: usize,
    /// Jobs executed by this invocation.
    pub executed_jobs: usize,
}

/// Runs (or resumes) one journaled slice of a campaign: recovers
/// already-journaled outcomes from a matching manifest, executes the
/// remaining work in parallel on `minipool`, and journals every completed
/// job immediately (kill-safe).
pub(crate) fn execute_journaled(
    slice: &JournalSlice<'_>,
    opts: &RunnerOptions,
) -> Result<SliceOutcome, ScenarioError> {
    execute_journaled_on(slice, opts, &minipool::ThreadPool::new())
}

/// [`execute_journaled`] on a caller-owned pool (see [`run_campaign_on`]).
pub(crate) fn execute_journaled_on(
    slice: &JournalSlice<'_>,
    opts: &RunnerOptions,
    pool: &minipool::ThreadPool,
) -> Result<SliceOutcome, ScenarioError> {
    let jobs = slice.jobs;
    let manifest_path = &slice.manifest_path;

    // Recover completed jobs from a matching manifest.
    let mut recovered = Recovered::default();
    if !opts.fresh {
        recovered = read_manifest(slice);
    }
    let mut done = recovered.outcomes;
    let resumed_jobs = done.len();

    // (Re)open the journal: append to a matching one, start a fresh one
    // otherwise (fresh run, fingerprint mismatch, or no manifest yet).
    let mut file = if resumed_jobs > 0 {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(manifest_path)
            .map_err(|e| ScenarioError::io(manifest_path, e))?;
        if recovered.torn_tail {
            // A kill mid-write left a partial final line. Terminate it so
            // the first record this run appends starts on its own line
            // instead of being fused onto the fragment (which would make
            // that record unreadable to the *next* resume).
            writeln!(f).map_err(|e| ScenarioError::io(manifest_path, e))?;
        }
        f
    } else {
        let mut f = std::fs::File::create(manifest_path)
            .map_err(|e| ScenarioError::io(manifest_path, e))?;
        writeln!(f, "{}", slice.header).map_err(|e| ScenarioError::io(manifest_path, e))?;
        f
    };
    file.flush()
        .map_err(|e| ScenarioError::io(manifest_path, e))?;

    if let Some(dir) = &opts.trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| ScenarioError::io(dir, e))?;
    }

    // The work list: every owned job without a journaled outcome,
    // optionally truncated to simulate an interrupt.
    let mut pending: Vec<usize> = slice
        .work
        .iter()
        .copied()
        .filter(|i| !done.contains_key(i))
        .collect();
    if let Some(cap) = opts.max_jobs {
        pending.truncate(cap);
    }
    let executed_jobs = pending.len();

    // Parallel execution: workers pull indices from a shared counter and
    // journal each completed job immediately (kill-safe), storing results
    // by job index for deterministic assembly.
    let results: Mutex<Vec<Option<Result<ScenarioOutcome, String>>>> =
        Mutex::new(vec![None; jobs.len()]);
    let manifest = Mutex::new(&mut file);
    let next = AtomicUsize::new(0);
    let finished = AtomicUsize::new(done.len());
    let started = Instant::now();
    let last_beat = Mutex::new(started);
    let threads = opts.threads.clamp(1, minipool::MAX_WORKERS);
    pool.ensure_workers(threads.saturating_sub(1));
    pool.scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                let Some(&index) = pending.get(slot) else {
                    return;
                };
                if opts.progress {
                    // Time-based check at the poll point: one long job past
                    // the cadence must not silence the heartbeat just
                    // because nothing *completed*.
                    poll_heartbeat(
                        &started,
                        &last_beat,
                        finished.load(Ordering::Relaxed),
                        slice.work.len(),
                        resumed_jobs,
                    );
                }
                let job = &jobs[index];
                match run_job(job, index, slice, opts.trace_dir.as_deref()) {
                    Ok(outcome) => {
                        let line = Json::object(vec![
                            ("job", Json::int(index as u64)),
                            ("scenario", Json::Str(job.name.clone())),
                            ("outcome", outcome.to_json()),
                        ]);
                        {
                            let mut f = manifest.lock().expect("manifest lock");
                            // Journal failures are reported as job failures
                            // below rather than killing the worker.
                            let io = writeln!(f, "{line}").and_then(|()| f.flush());
                            if let Err(e) = io {
                                results.lock().expect("results lock")[index] =
                                    Some(Err(format!("manifest write failed: {e}")));
                                continue;
                            }
                        }
                        let n = finished.fetch_add(1, Ordering::Relaxed) + 1;
                        if opts.progress {
                            eprintln!(
                                "[{n}/{}] {}: {}",
                                slice.work.len(),
                                job.name,
                                outcome.summary()
                            );
                            heartbeat(&started, &last_beat, n, slice.work.len(), resumed_jobs);
                        }
                        results.lock().expect("results lock")[index] = Some(Ok(outcome));
                    }
                    Err(cause) => {
                        results.lock().expect("results lock")[index] = Some(Err(cause));
                    }
                }
            });
        }
    });

    // Merge journaled and freshly computed outcomes; the first failure (by
    // job index) aborts, but everything journaled stays resumable.
    let results = results.into_inner().expect("results lock");
    for (index, slot) in results.into_iter().enumerate() {
        match slot {
            None => {}
            Some(Ok(outcome)) => {
                done.insert(index, outcome);
            }
            Some(Err(cause)) => {
                return Err(ScenarioError::Job {
                    index,
                    name: jobs[index].name.clone(),
                    cause,
                });
            }
        }
    }

    Ok(SliceOutcome {
        outcomes: done,
        resumed_jobs,
        executed_jobs,
    })
}

/// Executes one job, writing its deterministic event trace to
/// `TRACE_<campaign>.job<index>.jsonl` when a trace directory is
/// configured. The trace lands on disk *before* the job is journaled, so a
/// journaled (resumable) job always has its trace; a kill in between
/// re-runs the job and rewrites the identical bytes.
fn run_job(
    job: &ScenarioSpec,
    index: usize,
    slice: &JournalSlice<'_>,
    trace_dir: Option<&Path>,
) -> Result<ScenarioOutcome, String> {
    let Some(dir) = trace_dir else {
        return run_scenario(job).map_err(|e| e.to_string());
    };
    let (outcome, mut events) =
        run_scenario_traced_as_job(job, index as u64).map_err(|e| e.to_string())?;
    if let Some((shard, shard_count)) = slice.shard {
        // Keyed by stripe position, not completion order, so sharded
        // traces stay byte-deterministic at any thread count.
        let position = slice.work.binary_search(&index).unwrap_or(0) as u64;
        events.insert(
            1,
            TraceEvent::ShardProgress {
                cycle: 0,
                shard,
                shard_count,
                position,
                stripe_len: slice.work.len() as u64,
            },
        );
    }
    let campaign = slice
        .header
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("campaign");
    let path = dir.join(format!("TRACE_{campaign}.job{index}.jsonl"));
    std::fs::write(&path, TraceDoc::new(&job.name, events).to_jsonl())
        .map_err(|e| format!("trace write failed: {e}"))?;
    Ok(outcome)
}

/// Emits the periodic progress/ETA heartbeat to stderr: due every
/// [`HEARTBEAT_JOBS`] completions or [`HEARTBEAT_SECS`] of wall time,
/// whichever comes first, and never on the final job (which has its own
/// line). Wall-clock only — artifact bytes are untouched.
fn heartbeat(
    started: &Instant,
    last_beat: &Mutex<Instant>,
    done: usize,
    total: usize,
    resumed: usize,
) {
    let mut last = last_beat.lock().unwrap_or_else(|p| p.into_inner());
    let due = done.is_multiple_of(HEARTBEAT_JOBS)
        || last.elapsed() >= Duration::from_secs(HEARTBEAT_SECS);
    if !due || done >= total {
        return;
    }
    *last = Instant::now();
    drop(last);
    emit_progress(started, done, total, resumed);
}

/// The time-only heartbeat checked where workers pull their next job: a
/// single long-running job can keep every completion-boundary beat away for
/// far longer than [`HEARTBEAT_SECS`], so the poll point beats on wall time
/// alone.
fn poll_heartbeat(
    started: &Instant,
    last_beat: &Mutex<Instant>,
    done: usize,
    total: usize,
    resumed: usize,
) {
    let mut last = last_beat.lock().unwrap_or_else(|p| p.into_inner());
    if last.elapsed() < Duration::from_secs(HEARTBEAT_SECS) || done >= total {
        return;
    }
    *last = Instant::now();
    drop(last);
    emit_progress(started, done, total, resumed);
}

/// Prints one `progress:` line to stderr.
fn emit_progress(started: &Instant, done: usize, total: usize, resumed: usize) {
    let fresh = done.saturating_sub(resumed);
    let elapsed = started.elapsed().as_secs_f64();
    let eta = eta_text(fresh, elapsed, total - done);
    eprintln!("progress: {done}/{total} jobs, elapsed {elapsed:.0}s, eta {eta}");
}

/// Renders the heartbeat's ETA column. Until at least one *fresh* job has
/// finished — an all-resumed run, or a poll-point beat before the first
/// completion — there is no rate to extrapolate from and the placeholder is
/// printed (never a division by zero).
fn eta_text(fresh: usize, elapsed_secs: f64, remaining: usize) -> String {
    if fresh == 0 {
        return "?".to_string();
    }
    format!("{:.0}s", elapsed_secs / fresh as f64 * remaining as f64)
}

/// What [`read_manifest`] recovered from a journal.
#[derive(Debug, Default)]
struct Recovered {
    /// The journaled outcomes (empty when the header did not match).
    outcomes: BTreeMap<usize, ScenarioOutcome>,
    /// The file ends mid-line (killed during a write): the appender must
    /// terminate the fragment before journaling anything new.
    torn_tail: bool,
}

/// Reads a manifest journal, returning the outcomes whose header matches
/// the slice's header exactly and whose job lines are well-formed,
/// consistent with the expanded jobs, and owned by the slice. Malformed
/// lines — including a truncated final line from a killed run — are
/// skipped.
fn read_manifest(slice: &JournalSlice<'_>) -> Recovered {
    let mut out = Recovered::default();
    let Ok(text) = std::fs::read_to_string(&slice.manifest_path) else {
        return out;
    };
    let mut lines = text.lines();
    // The header must parse back to *exactly* the header this run would
    // write — schema, campaign name, fingerprint, job count, and (for
    // shard journals) the shard coordinates. Any drift means the journal
    // belongs to a different run and is restarted from scratch.
    let header_ok = lines
        .next()
        .and_then(|h| Json::parse(h).ok())
        .is_some_and(|h| h == slice.header);
    if !header_ok {
        return out;
    }
    out.torn_tail = !text.ends_with('\n');
    for line in lines {
        let Ok(j) = Json::parse(line) else {
            continue;
        };
        let Some(index) = j.get("job").and_then(Json::as_u64).map(|i| i as usize) else {
            continue;
        };
        // `work` is strictly ascending, so membership is a binary search;
        // a journaled index outside the slice (tampering, or a stray file)
        // is ignored rather than trusted.
        if slice.work.binary_search(&index).is_err()
            || j.get("scenario").and_then(Json::as_str) != Some(&slice.jobs[index].name)
        {
            continue;
        }
        let Some(raw) = j.get("outcome") else {
            continue;
        };
        let Ok(outcome) = ScenarioOutcome::from_json(raw) else {
            continue;
        };
        // Recover only records that re-serialize to exactly what was
        // journaled. A record written by an older binary may decode
        // leniently (e.g. traffic quantile fields defaulting to 0), and
        // silently resuming it would break the "resumed artifact ==
        // uninterrupted artifact" byte-identity guarantee — recompute the
        // job instead.
        if outcome.to_json() != *raw {
            continue;
        }
        out.outcomes.insert(index, outcome);
    }
    out
}

/// Serializes a completed campaign to the `hotnoc-campaign-v1` document.
/// Records embed both the scenario spec and the outcome, so the artifact is
/// self-describing and reproducible.
pub fn campaign_json(spec: &CampaignSpec, records: &[JobRecord]) -> String {
    let doc = Json::object(vec![
        ("schema", Json::str(CAMPAIGN_SCHEMA)),
        ("name", Json::Str(spec.name.clone())),
        ("seed", Json::int(spec.seed)),
        ("fingerprint", Json::Str(spec.fingerprint())),
        ("spec", spec.to_json()),
        ("jobs", Json::int(records.len() as u64)),
        (
            "results",
            Json::Array(
                records
                    .iter()
                    .map(|r| {
                        Json::object(vec![
                            ("job", Json::int(r.index as u64)),
                            ("scenario", Json::Str(r.spec.name.clone())),
                            ("spec", r.spec.to_json()),
                            ("outcome", r.outcome.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut text = doc.to_string();
    text.push('\n');
    text
}

/// A parsed-and-validated `CAMPAIGN_<name>.json` document.
#[derive(Debug)]
pub struct CampaignDoc {
    /// The embedded campaign spec.
    pub spec: CampaignSpec,
    /// The completed jobs, in index order.
    pub records: Vec<JobRecord>,
}

/// Strictly parses and cross-validates a campaign artifact: schema tag,
/// fingerprint consistency with the embedded spec, job count and order,
/// and that every record's scenario matches what the spec expands to.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn parse_campaign_document(text: &str) -> Result<CampaignDoc, String> {
    validate_campaign_json(&Json::parse(text)?)
}

/// [`parse_campaign_document`] over an already-parsed document (callers
/// that sniffed the JSON first — like the CLI's input classification —
/// avoid a second parse).
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_campaign_json(j: &Json) -> Result<CampaignDoc, String> {
    let schema = j.req_str("schema")?;
    if schema != CAMPAIGN_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (want {CAMPAIGN_SCHEMA:?})"
        ));
    }
    let spec = CampaignSpec::from_json(j.req("spec")?)?;
    if j.req_str("name")? != spec.name {
        return Err("top-level name differs from the embedded spec".into());
    }
    if j.req_u64("seed")? != spec.seed {
        return Err("top-level seed differs from the embedded spec".into());
    }
    if j.req_str("fingerprint")? != spec.fingerprint() {
        return Err("fingerprint does not match the embedded spec".into());
    }
    let jobs = spec.expand();
    let declared = j.req_u64("jobs")? as usize;
    let results = j.req_array("results")?;
    if declared != results.len() {
        return Err(format!(
            "jobs field says {declared} but results has {} entries",
            results.len()
        ));
    }
    if results.len() != jobs.len() {
        return Err(format!(
            "campaign expands to {} jobs but the document records {}",
            jobs.len(),
            results.len()
        ));
    }
    let mut records = Vec::with_capacity(results.len());
    for (i, rec) in results.iter().enumerate() {
        let ctx = |e: String| format!("results[{i}]: {e}");
        let index = rec.req_u64("job").map_err(ctx)? as usize;
        if index != i {
            return Err(format!("results[{i}] is job {index} (order broken)"));
        }
        let spec_i = ScenarioSpec::from_json(rec.req("spec").map_err(ctx)?).map_err(ctx)?;
        if spec_i != jobs[i] {
            return Err(format!(
                "results[{i}] spec does not match the campaign expansion ({})",
                jobs[i].name
            ));
        }
        if rec.req_str("scenario").map_err(ctx)? != jobs[i].name {
            return Err(format!("results[{i}] scenario name mismatch"));
        }
        let outcome = ScenarioOutcome::from_json(rec.req("outcome").map_err(ctx)?).map_err(ctx)?;
        records.push(JobRecord {
            index,
            spec: spec_i,
            outcome,
        });
    }
    Ok(CampaignDoc { spec, records })
}

/// Renders the human summary table of a campaign run.
pub fn summary_table(run: &CampaignRun) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "campaign {} — {}/{} jobs ({} resumed, {} executed)\n",
        run.spec.name,
        run.completed.len(),
        run.total_jobs,
        run.resumed_jobs,
        run.executed_jobs,
    ));
    let name_w = run
        .completed
        .iter()
        .map(|r| r.spec.name.len())
        .max()
        .unwrap_or(8)
        .max(8);
    s.push_str(&format!("{:>5}  {:<name_w$}  outcome\n", "job", "scenario"));
    for r in &run.completed {
        s.push_str(&format!(
            "{:>5}  {:<name_w$}  {}\n",
            r.index,
            r.spec.name,
            r.outcome.summary()
        ));
    }
    if !run.is_complete() {
        s.push_str(&format!(
            "(partial: {} jobs still pending — re-run to resume from the manifest)\n",
            run.total_jobs - run.completed.len()
        ));
    }
    let groups = &run.groups;
    if !groups.is_empty() {
        s.push_str("\ngroups (seed-axis aggregates of the headline metric):\n");
        let key_w = groups
            .iter()
            .map(|g| g.key.as_str().len())
            .max()
            .unwrap_or(5)
            .max(5);
        s.push_str(&format!("{:<key_w$}  {:>3}  headline\n", "group", "n"));
        for g in groups {
            let metric = headline_metric(g.kind);
            let line = match g.headline() {
                None => "(no samples)".to_string(),
                Some(stat) => {
                    let mean = stat.mean().expect("non-empty group");
                    let ci = match stat.ci95_half_width() {
                        Some(hw) => format!(" ± {hw:.4}"),
                        None => String::new(),
                    };
                    format!(
                        "{metric} mean {mean:.4}{ci}  median {:.4}  [{:.4}, {:.4}]",
                        stat.median().expect("non-empty group"),
                        stat.min().expect("non-empty group"),
                        stat.max().expect("non-empty group"),
                    )
                }
            };
            s.push_str(&format!("{:<key_w$}  {:>3}  {line}\n", g.key.as_str(), g.n));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::PolicyAxis;
    use crate::spec::{ChipKind, Mode, Workload};
    use hotnoc_core::configs::{ChipConfigId, Fidelity};
    use hotnoc_noc::TrafficPattern;

    fn tiny_campaign(name: &str) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            seed: 7,
            fidelity: Fidelity::Quick,
            mode: Mode::Cosim,
            sim_time_ms: None,
            configs: vec![ChipKind::Config(ChipConfigId::A)],
            workloads: vec![
                Workload::Traffic {
                    pattern: TrafficPattern::UniformRandom,
                    rate: 0.05,
                    packet_len: 2,
                    cycles: 200,
                },
                Workload::Traffic {
                    pattern: TrafficPattern::Transpose,
                    rate: 0.05,
                    packet_len: 2,
                    cycles: 200,
                },
            ],
            policies: vec![PolicyAxis::Baseline],
            schemes: vec![],
            periods: vec![],
            offered_loads: vec![],
            failed_routers: vec![],
            failed_links: vec![],
            seeds: vec![1, 2, 3],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hotnoc-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn complete_run_emits_validating_artifact() {
        let dir = tmp_dir("complete");
        let spec = tiny_campaign("unit-complete");
        let run = run_campaign(
            &spec,
            &RunnerOptions {
                threads: 2,
                out_dir: dir.clone(),
                ..RunnerOptions::default()
            },
        )
        .expect("runs");
        assert!(run.is_complete());
        assert_eq!(run.total_jobs, 6);
        assert_eq!(run.executed_jobs, 6);
        assert_eq!(run.resumed_jobs, 0);
        let text = std::fs::read_to_string(run.json_path.as_ref().expect("artifact")).unwrap();
        let doc = parse_campaign_document(&text).expect("validates");
        assert_eq!(doc.records.len(), 6);
        let table = summary_table(&run);
        assert!(table.contains("6/6 jobs"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_dir_traces_are_thread_and_resume_invariant() {
        let spec = tiny_campaign("unit-trace");
        let read_traces = |dir: &Path| -> Vec<(String, String)> {
            let mut out: Vec<(String, String)> = std::fs::read_dir(dir)
                .expect("trace dir")
                .map(|e| e.unwrap())
                .filter(|e| e.file_name().to_string_lossy().starts_with("TRACE_"))
                .map(|e| {
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read_to_string(e.path()).unwrap(),
                    )
                })
                .collect();
            out.sort();
            out
        };
        let run_with = |tag: &str, threads: usize, max_jobs: Option<usize>| -> PathBuf {
            let dir = tmp_dir(tag);
            let opts = RunnerOptions {
                threads,
                out_dir: dir.clone(),
                max_jobs,
                trace_dir: Some(dir.join("traces")),
                ..RunnerOptions::default()
            };
            run_campaign(&spec, &opts).expect("runs");
            if max_jobs.is_some() {
                // Resume to completion at a different thread count.
                run_campaign(
                    &spec,
                    &RunnerOptions {
                        threads: 4,
                        max_jobs: None,
                        ..opts
                    },
                )
                .expect("resumes");
            }
            dir
        };
        let d1 = run_with("trace-t1", 1, None);
        let d4 = run_with("trace-t4", 4, None);
        let dk = run_with("trace-kill", 1, Some(2));
        let t1 = read_traces(&d1.join("traces"));
        assert_eq!(t1.len(), 6, "one trace per job");
        assert_eq!(t1, read_traces(&d4.join("traces")), "thread-count variant");
        assert_eq!(t1, read_traces(&dk.join("traces")), "kill/resume variant");
        for (name, text) in &t1 {
            let doc = TraceDoc::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(matches!(
                doc.events.first(),
                Some(TraceEvent::JobStart { .. })
            ));
            assert!(matches!(
                doc.events.last(),
                Some(TraceEvent::JobFinish { .. })
            ));
        }
        for d in [d1, d4, dk] {
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn partial_run_resumes_without_recomputation() {
        let dir = tmp_dir("resume");
        let spec = tiny_campaign("unit-resume");
        let opts = RunnerOptions {
            threads: 1,
            out_dir: dir.clone(),
            ..RunnerOptions::default()
        };
        // Straight-through reference run in a sibling directory.
        let ref_dir = tmp_dir("resume-ref");
        let full = run_campaign(
            &spec,
            &RunnerOptions {
                out_dir: ref_dir.clone(),
                ..opts.clone()
            },
        )
        .expect("reference run");
        let reference = std::fs::read(full.json_path.as_ref().unwrap()).unwrap();

        // Interrupted run: 2 jobs, then resume to completion.
        let partial = run_campaign(
            &spec,
            &RunnerOptions {
                max_jobs: Some(2),
                ..opts.clone()
            },
        )
        .expect("partial run");
        assert!(!partial.is_complete());
        assert_eq!(partial.completed.len(), 2);
        assert!(partial.json_path.is_none());

        let resumed = run_campaign(&spec, &opts).expect("resume");
        assert!(resumed.is_complete());
        assert_eq!(resumed.resumed_jobs, 2);
        assert_eq!(resumed.executed_jobs, 4);
        let resumed_bytes = std::fs::read(resumed.json_path.as_ref().unwrap()).unwrap();
        assert_eq!(
            resumed_bytes, reference,
            "resumed artifact differs from uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
    }

    #[test]
    fn resume_after_torn_tail_keeps_its_own_journal_readable() {
        // A kill mid-write leaves a partial final line; the next run must
        // terminate that fragment before appending, or the record it
        // journals right after would fuse onto the fragment and be lost to
        // the *second* resume.
        let dir = tmp_dir("torn");
        let spec = tiny_campaign("unit-torn");
        let base = RunnerOptions {
            threads: 1,
            out_dir: dir.clone(),
            ..RunnerOptions::default()
        };
        let first = run_campaign(
            &spec,
            &RunnerOptions {
                max_jobs: Some(2),
                ..base.clone()
            },
        )
        .expect("partial run");
        // Tear the journal: append half a record with no newline.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&first.manifest_path)
            .unwrap();
        write!(f, "{{\"job\": 5, \"scenario\": \"half-writ").unwrap();
        drop(f);

        // One more job journaled on top of the torn tail...
        let second = run_campaign(
            &spec,
            &RunnerOptions {
                max_jobs: Some(1),
                ..base.clone()
            },
        )
        .expect("resume over torn tail");
        assert_eq!(second.resumed_jobs, 2);
        // ...must still be recoverable by the next resume.
        let third = run_campaign(&spec, &base).expect("final resume");
        assert_eq!(
            third.resumed_jobs, 3,
            "the job journaled after the torn tail was lost"
        );
        assert!(third.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lossy_legacy_manifest_records_are_recomputed_not_resumed() {
        // A record journaled by an older binary can decode leniently (the
        // traffic quantile fields default to 0 when absent). Resuming it
        // would bake those zeros into the artifact; the runner must notice
        // the record does not re-serialize canonically and recompute it.
        let dir = tmp_dir("legacy");
        let spec = tiny_campaign("unit-legacy");
        let opts = RunnerOptions {
            threads: 1,
            out_dir: dir.clone(),
            ..RunnerOptions::default()
        };
        let reference = run_campaign(&spec, &opts).expect("reference run");
        let reference_bytes = std::fs::read(reference.json_path.as_ref().unwrap()).unwrap();

        // Strip the quantile fields from one journaled record, as a
        // pre-analytics binary would have written it.
        let manifest = std::fs::read_to_string(&reference.manifest_path).unwrap();
        let legacy: String = manifest
            .lines()
            .enumerate()
            .map(|(i, line)| {
                let line = if i == 2 {
                    let stripped = regex_free_strip(line);
                    assert_ne!(stripped, line, "fields not found to strip");
                    stripped
                } else {
                    line.to_string()
                };
                format!("{line}\n")
            })
            .collect();
        std::fs::write(&reference.manifest_path, legacy).unwrap();
        let _ = std::fs::remove_file(dir.join("CAMPAIGN_unit-legacy.json"));

        let resumed = run_campaign(&spec, &opts).expect("resume over legacy record");
        assert_eq!(resumed.resumed_jobs, 5, "the lossy record must not resume");
        assert_eq!(resumed.executed_jobs, 1);
        assert_eq!(
            std::fs::read(resumed.json_path.as_ref().unwrap()).unwrap(),
            reference_bytes,
            "legacy-manifest resume diverged from the uninterrupted artifact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Removes the traffic quantile fields from one manifest line (plain
    /// string surgery; the canonical writer's field order is stable).
    fn regex_free_strip(line: &str) -> String {
        let mut out = line.to_string();
        for key in ["p50_latency_cycles", "p95_latency_cycles"] {
            let Some(start) = out.find(&format!(", \"{key}\"")) else {
                continue;
            };
            let tail = &out[start + 2..];
            let end = tail.find(", ").map(|e| start + 2 + e).unwrap_or(out.len());
            out.replace_range(start..end, "");
        }
        out
    }

    #[test]
    fn edited_campaign_invalidates_the_manifest() {
        let dir = tmp_dir("edited");
        let mut spec = tiny_campaign("unit-edited");
        let opts = RunnerOptions {
            threads: 1,
            out_dir: dir.clone(),
            max_jobs: Some(3),
            ..RunnerOptions::default()
        };
        run_campaign(&spec, &opts).expect("partial");
        // Editing the campaign changes the fingerprint: nothing resumes.
        spec.seeds.push(4);
        let rerun = run_campaign(
            &spec,
            &RunnerOptions {
                max_jobs: None,
                ..opts
            },
        )
        .expect("fresh restart");
        assert_eq!(rerun.resumed_jobs, 0);
        assert!(rerun.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_artifact_is_removed_when_the_campaign_changes_or_stops_partway() {
        let dir = tmp_dir("stale");
        let mut spec = tiny_campaign("unit-stale");
        let opts = RunnerOptions {
            threads: 1,
            out_dir: dir.clone(),
            ..RunnerOptions::default()
        };
        let full = run_campaign(&spec, &opts).expect("complete run");
        let artifact = full.json_path.expect("artifact written");
        assert!(artifact.exists());

        // Same name, different spec, interrupted: the old artifact must not
        // survive to masquerade as this campaign's result.
        spec.seeds.push(9);
        let partial = run_campaign(
            &spec,
            &RunnerOptions {
                max_jobs: Some(1),
                ..opts
            },
        )
        .expect("partial run of the edited campaign");
        assert!(!partial.is_complete());
        assert!(
            !artifact.exists(),
            "stale CAMPAIGN json from the old spec still present"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eta_is_a_placeholder_until_a_fresh_job_finishes() {
        // fresh == 0 (all-resumed run, or a poll-point beat before the
        // first completion): placeholder, never a division by zero.
        assert_eq!(eta_text(0, 5.0, 3), "?");
        assert_eq!(eta_text(0, 0.0, 0), "?");
        assert_eq!(eta_text(2, 10.0, 4), "20s");
    }

    #[test]
    fn poll_heartbeat_beats_on_wall_time_and_resets_the_cadence_clock() {
        let started = Instant::now();
        let backdated = Instant::now() - Duration::from_secs(HEARTBEAT_SECS + 1);
        let last = Mutex::new(backdated);
        // Due, with fresh == 0 (done == resumed): must print the "?" ETA
        // path without panicking and reset the cadence clock.
        poll_heartbeat(&started, &last, 3, 10, 3);
        assert!(
            last.lock().unwrap().elapsed() < Duration::from_secs(HEARTBEAT_SECS),
            "a due beat must reset the cadence clock"
        );
        // Not due again immediately afterwards.
        let before = *last.lock().unwrap();
        poll_heartbeat(&started, &last, 3, 10, 3);
        assert_eq!(*last.lock().unwrap(), before);
        // Never beats once the slice is finished (the final job has its
        // own completion line).
        *last.lock().unwrap() = backdated;
        poll_heartbeat(&started, &last, 10, 10, 0);
        assert_eq!(*last.lock().unwrap(), backdated);
    }

    #[test]
    fn resident_pool_run_matches_private_pool_bytes() {
        let spec = tiny_campaign("unit-resident");
        let pool = minipool::ThreadPool::new();
        let d1 = tmp_dir("resident-a");
        let d2 = tmp_dir("resident-b");
        let on = run_campaign_on(
            &spec,
            &RunnerOptions {
                threads: 2,
                out_dir: d1.clone(),
                ..RunnerOptions::default()
            },
            &pool,
        )
        .expect("resident pool run");
        // Second run on the *same* warm pool, different directory.
        let again = run_campaign_on(
            &spec,
            &RunnerOptions {
                threads: 2,
                out_dir: d2.clone(),
                ..RunnerOptions::default()
            },
            &pool,
        )
        .expect("warm pool re-run");
        let a = std::fs::read(on.json_path.as_ref().unwrap()).unwrap();
        let b = std::fs::read(again.json_path.as_ref().unwrap()).unwrap();
        assert_eq!(a, b, "warm-pool re-run changed artifact bytes");
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d2);
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let dir = tmp_dir("tamper");
        let spec = tiny_campaign("unit-tamper");
        let run = run_campaign(
            &spec,
            &RunnerOptions {
                threads: 1,
                out_dir: dir.clone(),
                ..RunnerOptions::default()
            },
        )
        .expect("runs");
        let text = std::fs::read_to_string(run.json_path.as_ref().unwrap()).unwrap();
        assert!(parse_campaign_document(&text).is_ok());
        let tampered = text.replace("\"seed\": 7", "\"seed\": 8");
        assert!(parse_campaign_document(&tampered).is_err());
        let truncated = text.replace("\"jobs\": 6", "\"jobs\": 5");
        assert!(parse_campaign_document(&truncated).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
