//! `hotnoc-trace-v1` serialization, validation, summarisation and Chrome
//! trace-event export, plus the `hotnoc-profile-v1` sidecar writer.
//!
//! A trace file is JSONL: a header line
//! `{"schema": "hotnoc-trace-v1", "name": ..., "events": N}` followed by
//! one canonical-JSON object per event, ordered by non-descending sim
//! cycle. Traces are part of the byte-determinism guarantee — the same
//! scenario produces identical trace bytes at any `HOTNOC_THREADS` and
//! across kill/resume. Profiles are the opposite: wall-clock timing
//! snapshots, explicitly non-deterministic, and kept in a separate file so
//! the two planes can never be confused. See `docs/OBSERVABILITY.md`.

use crate::json::Json;
use hotnoc_obs::prof::ProfileReport;
use hotnoc_obs::TraceEvent;

/// Schema tag of the deterministic event-trace JSONL artifact.
pub const TRACE_SCHEMA: &str = "hotnoc-trace-v1";

/// Schema tag of the non-deterministic timing sidecar.
pub const PROFILE_SCHEMA: &str = "hotnoc-profile-v1";

/// A parsed (or about-to-be-written) trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDoc {
    /// Scenario / job name from the header line.
    pub name: String,
    /// The events, in file order (non-descending cycle).
    pub events: Vec<TraceEvent>,
}

impl TraceDoc {
    /// Wraps a finished event list under `name`.
    pub fn new(name: &str, events: Vec<TraceEvent>) -> TraceDoc {
        TraceDoc {
            name: name.to_string(),
            events,
        }
    }

    /// Serializes to `hotnoc-trace-v1` JSONL (trailing newline included).
    pub fn to_jsonl(&self) -> String {
        let mut out = Json::object(vec![
            ("schema", Json::str(TRACE_SCHEMA)),
            ("name", Json::str(&self.name)),
            ("events", Json::int(self.events.len() as u64)),
        ])
        .to_string();
        out.push('\n');
        for ev in &self.events {
            out.push_str(&event_to_json(ev).to_string());
            out.push('\n');
        }
        out
    }

    /// Parses and validates a `hotnoc-trace-v1` document: header schema and
    /// name, per-line event decode, event-count match, and non-descending
    /// cycle order.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn parse(text: &str) -> Result<TraceDoc, String> {
        let mut lines = text.lines();
        let header_line = lines.next().ok_or("empty trace file")?;
        let header = Json::parse(header_line).map_err(|e| format!("header: {e}"))?;
        let schema = header.req_str("schema")?;
        if schema != TRACE_SCHEMA {
            return Err(format!("schema {schema:?} is not {TRACE_SCHEMA:?}"));
        }
        let name = header.req_str("name")?.to_string();
        let declared = header.req_u64("events")?;
        let mut events = Vec::new();
        let mut last_cycle = 0u64;
        for (i, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
            let ev = event_from_json(&v).map_err(|e| format!("line {}: {e}", i + 2))?;
            if ev.cycle() < last_cycle {
                return Err(format!(
                    "line {}: cycle {} after cycle {} — trace not in sim-time order",
                    i + 2,
                    ev.cycle(),
                    last_cycle
                ));
            }
            last_cycle = ev.cycle();
            events.push(ev);
        }
        if events.len() as u64 != declared {
            return Err(format!(
                "header declares {declared} events but file holds {}",
                events.len()
            ));
        }
        Ok(TraceDoc { name, events })
    }

    /// Final sim cycle covered by the trace (0 when empty).
    pub fn last_cycle(&self) -> u64 {
        self.events.iter().map(TraceEvent::cycle).max().unwrap_or(0)
    }

    /// Human summary: totals, cycle span, per-kind counts and the top-N
    /// congestion windows by peak occupancy.
    pub fn summary(&self, top_n: usize) -> String {
        let first = self.events.first().map_or(0, TraceEvent::cycle);
        let mut out = format!(
            "trace {}: {} events, cycles {}..{}\n",
            self.name,
            self.events.len(),
            first,
            self.last_cycle()
        );
        for kind in TraceEvent::KINDS {
            let n = self.events.iter().filter(|e| e.kind() == kind).count();
            if n > 0 {
                out.push_str(&format!("  {kind:<16} {n}\n"));
            }
        }
        let mut windows: Vec<(u64, u64, u64, u64, u8, u8)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::Congestion {
                    cycle,
                    window_start,
                    peak,
                    peak_cycle,
                    x,
                    y,
                } => Some((peak, window_start, cycle, peak_cycle, x, y)),
                _ => None,
            })
            .collect();
        windows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        if !windows.is_empty() {
            out.push_str("top congestion windows:\n");
            for (peak, start, end, peak_cycle, x, y) in windows.into_iter().take(top_n) {
                out.push_str(&format!(
                    "  peak {peak} flits at router ({x},{y}), window {start}..{end} (peak at cycle {peak_cycle})\n"
                ));
            }
        }
        out
    }

    /// Renders the trace as Chrome trace-event JSON (the Perfetto / legacy
    /// `chrome://tracing` format): one process, one named track per
    /// subsystem, 1 sim cycle = 1 µs. Fault fail/repair pairs fold into
    /// duration events; unrepaired faults extend to the end of the trace.
    pub fn chrome_trace_json(&self) -> String {
        const RUNNER: u64 = 1;
        const NOC: u64 = 2;
        const THERMAL: u64 = 3;
        const RECONFIG: u64 = 4;
        let mut events: Vec<Json> = [
            (RUNNER, "runner"),
            (NOC, "noc"),
            (THERMAL, "thermal"),
            (RECONFIG, "reconfig"),
        ]
        .into_iter()
        .map(|(tid, label)| {
            Json::object(vec![
                ("ph", Json::str("M")),
                ("pid", Json::int(0)),
                ("tid", Json::int(tid)),
                ("name", Json::str("thread_name")),
                ("args", Json::object(vec![("name", Json::str(label))])),
            ])
        })
        .collect();
        let end = self.last_cycle();
        let instant = |tid: u64, ts: u64, name: String, args: Vec<(&str, Json)>| {
            Json::object(vec![
                ("ph", Json::str("i")),
                ("pid", Json::int(0)),
                ("tid", Json::int(tid)),
                ("ts", Json::int(ts)),
                ("s", Json::str("t")),
                ("name", Json::Str(name)),
                ("args", Json::object(args)),
            ])
        };
        let span = |tid: u64, ts: u64, dur: u64, name: String, args: Vec<(&str, Json)>| {
            Json::object(vec![
                ("ph", Json::str("X")),
                ("pid", Json::int(0)),
                ("tid", Json::int(tid)),
                ("ts", Json::int(ts)),
                ("dur", Json::int(dur)),
                ("name", Json::Str(name)),
                ("args", Json::object(args)),
            ])
        };
        let counter = |ts: u64, name: &str, key: &str, value: u64| {
            Json::object(vec![
                ("ph", Json::str("C")),
                ("pid", Json::int(0)),
                ("ts", Json::int(ts)),
                ("name", Json::str(name)),
                ("args", Json::object(vec![(key, Json::int(value))])),
            ])
        };
        // Open fail spans awaiting their repair: (key, start cycle, label).
        let mut open: Vec<(String, u64, String)> = Vec::new();
        let close =
            |open: &mut Vec<(String, u64, String)>, events: &mut Vec<Json>, key: &str, now: u64| {
                if let Some(i) = open.iter().position(|(k, _, _)| k == key) {
                    let (_, start, label) = open.remove(i);
                    events.push(span(NOC, start, now - start, label, vec![]));
                }
            };
        let mut job_starts: Vec<(u64, u64)> = Vec::new();
        for ev in &self.events {
            match ev {
                TraceEvent::JobStart { cycle, job, .. } => job_starts.push((*job, *cycle)),
                TraceEvent::JobFinish { cycle, job, name } => {
                    let start = job_starts
                        .iter()
                        .find(|(j, _)| j == job)
                        .map_or(0, |(_, c)| *c);
                    events.push(span(
                        RUNNER,
                        start,
                        cycle - start,
                        format!("job {job}: {name}"),
                        vec![("job", Json::int(*job))],
                    ));
                }
                TraceEvent::ShardProgress {
                    cycle,
                    shard,
                    shard_count,
                    position,
                    stripe_len,
                } => events.push(instant(
                    RUNNER,
                    *cycle,
                    format!("shard {shard}/{shard_count} job {position}/{stripe_len}"),
                    vec![
                        ("shard", Json::int(*shard)),
                        ("position", Json::int(*position)),
                    ],
                )),
                TraceEvent::RouterFailed { cycle, x, y } => open.push((
                    format!("r{x},{y}"),
                    *cycle,
                    format!("router ({x},{y}) down"),
                )),
                TraceEvent::RouterRepaired { cycle, x, y } => {
                    close(&mut open, &mut events, &format!("r{x},{y}"), *cycle);
                }
                TraceEvent::LinkFailed {
                    cycle,
                    ax,
                    ay,
                    bx,
                    by,
                } => open.push((
                    format!("l{ax},{ay},{bx},{by}"),
                    *cycle,
                    format!("link ({ax},{ay})-({bx},{by}) down"),
                )),
                TraceEvent::LinkRepaired {
                    cycle,
                    ax,
                    ay,
                    bx,
                    by,
                } => {
                    close(
                        &mut open,
                        &mut events,
                        &format!("l{ax},{ay},{bx},{by}"),
                        *cycle,
                    );
                }
                TraceEvent::FaultEpoch {
                    cycle,
                    epoch,
                    routers_down,
                    links_down,
                    packets_dropped,
                    flits_dropped,
                } => events.push(instant(
                    NOC,
                    *cycle,
                    format!("fault epoch {epoch}"),
                    vec![
                        ("routers_down", Json::int(*routers_down)),
                        ("links_down", Json::int(*links_down)),
                        ("packets_dropped", Json::int(*packets_dropped)),
                        ("flits_dropped", Json::int(*flits_dropped)),
                    ],
                )),
                TraceEvent::PacketDrop { cycle, x, y, flits } => events.push(instant(
                    NOC,
                    *cycle,
                    format!("packet drop at ({x},{y})"),
                    vec![("flits", Json::int(*flits))],
                )),
                TraceEvent::DetourBurst { cycle, hops } => {
                    events.push(counter(*cycle, "detour_hops", "hops", *hops));
                }
                TraceEvent::Congestion { cycle, peak, .. } => {
                    events.push(counter(*cycle, "congestion_peak", "flits", *peak));
                }
                TraceEvent::TempCrossing {
                    cycle,
                    node,
                    temp_c,
                    rising,
                    ..
                } => events.push(instant(
                    THERMAL,
                    *cycle,
                    format!(
                        "node {node} {} threshold",
                        if *rising { "above" } else { "below" }
                    ),
                    vec![("temp_c", Json::Num(*temp_c))],
                )),
                TraceEvent::PolicyDecision {
                    cycle,
                    decision,
                    scheme,
                } => events.push(instant(
                    RECONFIG,
                    *cycle,
                    format!("decision {decision}: {scheme}"),
                    vec![],
                )),
                TraceEvent::CacheHit {
                    cycle,
                    fingerprint,
                    name,
                } => events.push(instant(
                    RUNNER,
                    *cycle,
                    format!("cache hit: {name}"),
                    vec![("fingerprint", Json::str(fingerprint))],
                )),
                TraceEvent::Migration {
                    cycle,
                    scheme,
                    phases,
                    flit_hops,
                    stall_cycles,
                    energy_j,
                } => events.push(span(
                    RECONFIG,
                    *cycle,
                    *stall_cycles,
                    format!("migration: {scheme}"),
                    vec![
                        ("phases", Json::int(*phases)),
                        ("flit_hops", Json::int(*flit_hops)),
                        ("energy_j", Json::Num(*energy_j)),
                    ],
                )),
            }
        }
        for (_, start, label) in open {
            events.push(span(NOC, start, end.saturating_sub(start), label, vec![]));
        }
        Json::object(vec![
            ("traceEvents", Json::Array(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
        .to_string()
    }
}

/// Serializes one event as a canonical JSON object (`kind` first, then
/// `cycle`, then the payload fields in declaration order).
pub fn event_to_json(ev: &TraceEvent) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![
        ("kind", Json::str(ev.kind())),
        ("cycle", Json::int(ev.cycle())),
    ];
    match ev {
        TraceEvent::JobStart { job, name, .. } | TraceEvent::JobFinish { job, name, .. } => {
            fields.push(("job", Json::int(*job)));
            fields.push(("name", Json::str(name)));
        }
        TraceEvent::ShardProgress {
            shard,
            shard_count,
            position,
            stripe_len,
            ..
        } => {
            fields.push(("shard", Json::int(*shard)));
            fields.push(("shard_count", Json::int(*shard_count)));
            fields.push(("position", Json::int(*position)));
            fields.push(("stripe_len", Json::int(*stripe_len)));
        }
        TraceEvent::RouterFailed { x, y, .. } | TraceEvent::RouterRepaired { x, y, .. } => {
            fields.push(("x", Json::int(u64::from(*x))));
            fields.push(("y", Json::int(u64::from(*y))));
        }
        TraceEvent::LinkFailed { ax, ay, bx, by, .. }
        | TraceEvent::LinkRepaired { ax, ay, bx, by, .. } => {
            fields.push(("ax", Json::int(u64::from(*ax))));
            fields.push(("ay", Json::int(u64::from(*ay))));
            fields.push(("bx", Json::int(u64::from(*bx))));
            fields.push(("by", Json::int(u64::from(*by))));
        }
        TraceEvent::FaultEpoch {
            epoch,
            routers_down,
            links_down,
            packets_dropped,
            flits_dropped,
            ..
        } => {
            fields.push(("epoch", Json::int(*epoch)));
            fields.push(("routers_down", Json::int(*routers_down)));
            fields.push(("links_down", Json::int(*links_down)));
            fields.push(("packets_dropped", Json::int(*packets_dropped)));
            fields.push(("flits_dropped", Json::int(*flits_dropped)));
        }
        TraceEvent::PacketDrop { x, y, flits, .. } => {
            fields.push(("x", Json::int(u64::from(*x))));
            fields.push(("y", Json::int(u64::from(*y))));
            fields.push(("flits", Json::int(*flits)));
        }
        TraceEvent::DetourBurst { hops, .. } => fields.push(("hops", Json::int(*hops))),
        TraceEvent::Congestion {
            window_start,
            peak,
            peak_cycle,
            x,
            y,
            ..
        } => {
            fields.push(("window_start", Json::int(*window_start)));
            fields.push(("peak", Json::int(*peak)));
            fields.push(("peak_cycle", Json::int(*peak_cycle)));
            fields.push(("x", Json::int(u64::from(*x))));
            fields.push(("y", Json::int(u64::from(*y))));
        }
        TraceEvent::TempCrossing {
            node,
            temp_c,
            threshold_c,
            rising,
            ..
        } => {
            fields.push(("node", Json::int(*node)));
            fields.push(("temp_c", Json::Num(*temp_c)));
            fields.push(("threshold_c", Json::Num(*threshold_c)));
            fields.push(("rising", Json::Bool(*rising)));
        }
        TraceEvent::PolicyDecision {
            decision, scheme, ..
        } => {
            fields.push(("decision", Json::int(*decision)));
            fields.push(("scheme", Json::str(scheme)));
        }
        TraceEvent::CacheHit {
            fingerprint, name, ..
        } => {
            fields.push(("fingerprint", Json::str(fingerprint)));
            fields.push(("name", Json::str(name)));
        }
        TraceEvent::Migration {
            scheme,
            phases,
            flit_hops,
            stall_cycles,
            energy_j,
            ..
        } => {
            fields.push(("scheme", Json::str(scheme)));
            fields.push(("phases", Json::int(*phases)));
            fields.push(("flit_hops", Json::int(*flit_hops)));
            fields.push(("stall_cycles", Json::int(*stall_cycles)));
            fields.push(("energy_j", Json::Num(*energy_j)));
        }
    }
    Json::object(fields)
}

fn req_u8(v: &Json, key: &str) -> Result<u8, String> {
    u8::try_from(v.req_u64(key)?).map_err(|_| format!("field {key:?} exceeds u8"))
}

fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.req(key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} is not a bool"))
}

/// Decodes one serialized event object back into a [`TraceEvent`].
///
/// # Errors
///
/// Returns a description of the first missing or ill-typed field.
pub fn event_from_json(v: &Json) -> Result<TraceEvent, String> {
    let kind = v.req_str("kind")?;
    let cycle = v.req_u64("cycle")?;
    Ok(match kind {
        "job_start" => TraceEvent::JobStart {
            cycle,
            job: v.req_u64("job")?,
            name: v.req_str("name")?.to_string(),
        },
        "job_finish" => TraceEvent::JobFinish {
            cycle,
            job: v.req_u64("job")?,
            name: v.req_str("name")?.to_string(),
        },
        "shard_progress" => TraceEvent::ShardProgress {
            cycle,
            shard: v.req_u64("shard")?,
            shard_count: v.req_u64("shard_count")?,
            position: v.req_u64("position")?,
            stripe_len: v.req_u64("stripe_len")?,
        },
        "router_failed" => TraceEvent::RouterFailed {
            cycle,
            x: req_u8(v, "x")?,
            y: req_u8(v, "y")?,
        },
        "router_repaired" => TraceEvent::RouterRepaired {
            cycle,
            x: req_u8(v, "x")?,
            y: req_u8(v, "y")?,
        },
        "link_failed" => TraceEvent::LinkFailed {
            cycle,
            ax: req_u8(v, "ax")?,
            ay: req_u8(v, "ay")?,
            bx: req_u8(v, "bx")?,
            by: req_u8(v, "by")?,
        },
        "link_repaired" => TraceEvent::LinkRepaired {
            cycle,
            ax: req_u8(v, "ax")?,
            ay: req_u8(v, "ay")?,
            bx: req_u8(v, "bx")?,
            by: req_u8(v, "by")?,
        },
        "fault_epoch" => TraceEvent::FaultEpoch {
            cycle,
            epoch: v.req_u64("epoch")?,
            routers_down: v.req_u64("routers_down")?,
            links_down: v.req_u64("links_down")?,
            packets_dropped: v.req_u64("packets_dropped")?,
            flits_dropped: v.req_u64("flits_dropped")?,
        },
        "packet_drop" => TraceEvent::PacketDrop {
            cycle,
            x: req_u8(v, "x")?,
            y: req_u8(v, "y")?,
            flits: v.req_u64("flits")?,
        },
        "detour_burst" => TraceEvent::DetourBurst {
            cycle,
            hops: v.req_u64("hops")?,
        },
        "congestion" => TraceEvent::Congestion {
            cycle,
            window_start: v.req_u64("window_start")?,
            peak: v.req_u64("peak")?,
            peak_cycle: v.req_u64("peak_cycle")?,
            x: req_u8(v, "x")?,
            y: req_u8(v, "y")?,
        },
        "temp_crossing" => TraceEvent::TempCrossing {
            cycle,
            node: v.req_u64("node")?,
            temp_c: v.req_f64("temp_c")?,
            threshold_c: v.req_f64("threshold_c")?,
            rising: req_bool(v, "rising")?,
        },
        "policy_decision" => TraceEvent::PolicyDecision {
            cycle,
            decision: v.req_u64("decision")?,
            scheme: v.req_str("scheme")?.to_string(),
        },
        "cache_hit" => TraceEvent::CacheHit {
            cycle,
            fingerprint: v.req_str("fingerprint")?.to_string(),
            name: v.req_str("name")?.to_string(),
        },
        "migration" => TraceEvent::Migration {
            cycle,
            scheme: v.req_str("scheme")?.to_string(),
            phases: v.req_u64("phases")?,
            flit_hops: v.req_u64("flit_hops")?,
            stall_cycles: v.req_u64("stall_cycles")?,
            energy_j: v.req_f64("energy_j")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    })
}

/// Serializes a profiler snapshot as the `hotnoc-profile-v1` sidecar.
/// Wall-clock numbers: the document is explicitly **not** deterministic
/// and must never be compared byte-for-byte or folded into campaign
/// artifacts.
pub fn profile_json(report: &ProfileReport) -> String {
    let clamp = |n: u64| Json::int(n.min(1 << 53));
    let phases: Vec<Json> = report
        .phases
        .iter()
        .map(|p| {
            Json::object(vec![
                ("name", Json::str(&p.name)),
                ("calls", clamp(p.calls)),
                ("total_ns", clamp(p.total_ns)),
                ("mean_ns", Json::Num(p.mean_ns)),
                ("p50_ns", clamp(p.p50_ns)),
                ("p95_ns", clamp(p.p95_ns)),
            ])
        })
        .collect();
    let mut out = Json::object(vec![
        ("schema", Json::str(PROFILE_SCHEMA)),
        ("deterministic", Json::Bool(false)),
        (
            "note",
            Json::str("wall-clock timings; outside the byte-determinism guarantee"),
        ),
        ("phases", Json::Array(phases)),
    ])
    .to_string();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::JobStart {
                cycle: 0,
                job: 3,
                name: "smoke".into(),
            },
            TraceEvent::RouterFailed {
                cycle: 10,
                x: 1,
                y: 2,
            },
            TraceEvent::FaultEpoch {
                cycle: 10,
                epoch: 1,
                routers_down: 1,
                links_down: 0,
                packets_dropped: 2,
                flits_dropped: 8,
            },
            TraceEvent::PacketDrop {
                cycle: 12,
                x: 1,
                y: 2,
                flits: 4,
            },
            TraceEvent::DetourBurst { cycle: 20, hops: 6 },
            TraceEvent::Congestion {
                cycle: 63,
                window_start: 0,
                peak: 9,
                peak_cycle: 41,
                x: 2,
                y: 2,
            },
            TraceEvent::TempCrossing {
                cycle: 80,
                node: 5,
                temp_c: 70.25,
                threshold_c: 70.0,
                rising: true,
            },
            TraceEvent::PolicyDecision {
                cycle: 90,
                decision: 1,
                scheme: "rotation".into(),
            },
            TraceEvent::Migration {
                cycle: 90,
                scheme: "rotation".into(),
                phases: 4,
                flit_hops: 128,
                stall_cycles: 210,
                energy_j: 1.5e-7,
            },
            TraceEvent::RouterRepaired {
                cycle: 95,
                x: 1,
                y: 2,
            },
            TraceEvent::JobFinish {
                cycle: 95,
                job: 3,
                name: "smoke".into(),
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip_is_byte_stable() {
        let doc = TraceDoc::new("smoke", sample_events());
        let text = doc.to_jsonl();
        let back = TraceDoc::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.to_jsonl(), text, "canonical round-trip");
    }

    #[test]
    fn cache_hit_event_roundtrips_and_exports() {
        let doc = TraceDoc::new(
            "serve",
            vec![
                TraceEvent::CacheHit {
                    cycle: 1,
                    fingerprint: "00ff00ff00ff00ff".into(),
                    name: "one-traffic".into(),
                },
                TraceEvent::CacheHit {
                    cycle: 2,
                    fingerprint: "1234123412341234".into(),
                    name: "two-traffic".into(),
                },
            ],
        );
        let text = doc.to_jsonl();
        assert!(text.contains("\"kind\": \"cache_hit\""), "{text}");
        let back = TraceDoc::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.to_jsonl(), text, "canonical round-trip");
        let chrome = doc.chrome_trace_json();
        assert!(chrome.contains("cache hit: one-traffic"), "{chrome}");
    }

    #[test]
    fn parse_rejects_bad_documents() {
        let doc = TraceDoc::new("smoke", sample_events());
        let good = doc.to_jsonl();
        // Wrong schema tag.
        assert!(TraceDoc::parse(&good.replace("trace-v1", "trace-v9")).is_err());
        // Count mismatch: drop the last event line.
        let truncated: String =
            good.lines()
                .take(good.lines().count() - 1)
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        assert!(TraceDoc::parse(&truncated).is_err());
        // Out-of-order cycles.
        let mut events = sample_events();
        events.swap(1, 9);
        let text = TraceDoc::new("x", events).to_jsonl();
        let err = TraceDoc::parse(&text).unwrap_err();
        assert!(err.contains("sim-time order"), "got: {err}");
        assert!(TraceDoc::parse("").is_err());
    }

    #[test]
    fn summary_counts_and_ranks_windows() {
        let doc = TraceDoc::new("smoke", sample_events());
        let s = doc.summary(3);
        assert!(s.contains("11 events"), "got: {s}");
        assert!(s.contains("cycles 0..95"));
        assert!(s.contains("fault_epoch"));
        assert!(s.contains("peak 9 flits at router (2,2), window 0..63"));
    }

    #[test]
    fn chrome_export_is_valid_json_with_folded_faults() {
        let doc = TraceDoc::new("smoke", sample_events());
        let chrome = doc.chrome_trace_json();
        let v = Json::parse(&chrome).expect("valid JSON");
        let events = v.req_array("traceEvents").unwrap();
        // 4 thread-name metadata records plus payload events.
        assert!(events.len() > 4);
        // The fail/repair pair folded into one duration event.
        let down: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("router (1,2) down"))
            .collect();
        assert_eq!(down.len(), 1);
        assert_eq!(down[0].req_u64("ts").unwrap(), 10);
        assert_eq!(down[0].req_u64("dur").unwrap(), 85);
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
    }

    #[test]
    fn profile_sidecar_shape() {
        use hotnoc_obs::prof::{PhaseReport, ProfileReport};
        let rep = ProfileReport {
            phases: vec![PhaseReport {
                name: "noc/step/alloc_sweep".into(),
                calls: 100,
                total_ns: 5_000,
                mean_ns: 50.0,
                p50_ns: 63,
                p95_ns: 127,
            }],
        };
        let text = profile_json(&rep);
        let v = Json::parse(text.trim_end()).expect("valid JSON");
        assert_eq!(v.req_str("schema").unwrap(), PROFILE_SCHEMA);
        assert_eq!(v.get("deterministic").and_then(Json::as_bool), Some(false));
        let phases = v.req_array("phases").unwrap();
        assert_eq!(phases[0].req_str("name").unwrap(), "noc/step/alloc_sweep");
        assert_eq!(phases[0].req_u64("p95_ns").unwrap(), 127);
    }
}
