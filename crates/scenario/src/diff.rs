//! A/B comparison of two campaign artifacts — the `hotnoc campaign diff`
//! engine.
//!
//! Two campaigns are aligned by **group key** (the job name minus the seed
//! axis, see [`crate::stats::GroupKey`]), so runs of the same spec under
//! different seed sets — or under edited seed axes — still pair up. Each
//! paired group is compared on its outcome kind's headline metric:
//!
//! * **ratio of medians** — B's median over A's, oriented so a value above
//!   1 always means "B is worse" regardless of whether the metric is
//!   lower-is-better (latency, peak temperature) or higher-is-better
//!   (reduction);
//! * a **CI-overlap verdict** — `equal` when the medians coincide,
//!   `better` / `worse` when both sides have n >= 2 and their 95%
//!   confidence intervals are disjoint, `inconclusive` otherwise. Two runs
//!   of the same spec under different seeds draw from the same
//!   distribution, so their intervals overlap and every group reports
//!   inconclusive-or-equal.
//!
//! The regression gate reuses the median-of-ratios discipline proven in
//! `bench_regress`: the campaign-level verdict is the **median over
//! groups** of the oriented ratios, so one noisy group cannot fail a gate
//! but a broad slowdown will.

use crate::runner::CampaignDoc;
use crate::stats::{
    aggregate, headline_metric, metric_direction, Direction, GroupAggregate, GroupKey,
};
use std::fmt::Write as _;

/// The outcome of comparing one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The medians coincide exactly.
    Equal,
    /// B is significantly better (disjoint 95% CIs, B on the good side).
    Better,
    /// B is significantly worse (disjoint 95% CIs, B on the bad side).
    Worse,
    /// Overlapping CIs, or too few samples to resolve a direction.
    Inconclusive,
}

impl Verdict {
    fn name(self) -> &'static str {
        match self {
            Verdict::Equal => "equal",
            Verdict::Better => "better",
            Verdict::Worse => "worse",
            Verdict::Inconclusive => "inconclusive",
        }
    }
}

/// One aligned group's comparison.
#[derive(Debug, Clone)]
pub struct GroupDiff {
    /// The group both campaigns contain.
    pub key: GroupKey,
    /// Outcome kind of the group.
    pub kind: &'static str,
    /// The headline metric compared.
    pub metric: &'static str,
    /// Seed-axis sample count in A.
    pub n_a: u64,
    /// Seed-axis sample count in B.
    pub n_b: u64,
    /// Median of the metric in A.
    pub median_a: f64,
    /// Median of the metric in B.
    pub median_b: f64,
    /// Oriented worsening ratio: > 1 means B is worse than A, whatever the
    /// metric's preferred direction.
    pub ratio: f64,
    /// The CI-overlap verdict.
    pub verdict: Verdict,
}

/// The full A-vs-B comparison.
#[derive(Debug)]
pub struct DiffReport {
    /// Name of campaign A.
    pub name_a: String,
    /// Name of campaign B.
    pub name_b: String,
    /// Job count of campaign A.
    pub jobs_a: usize,
    /// Job count of campaign B.
    pub jobs_b: usize,
    /// Aligned groups in A's first-appearance order.
    pub groups: Vec<GroupDiff>,
    /// Groups only campaign A contains.
    pub only_in_a: Vec<GroupKey>,
    /// Groups only campaign B contains.
    pub only_in_b: Vec<GroupKey>,
    /// Aligned groups whose outcome kinds differ (incomparable).
    pub kind_mismatch: Vec<GroupKey>,
    /// Regression threshold in percent (a gate fails when the median
    /// worsening ratio exceeds `1 + threshold_pct / 100`).
    pub threshold_pct: f64,
}

impl DiffReport {
    /// Median of the oriented worsening ratios over all aligned groups, or
    /// `None` when no groups aligned.
    pub fn median_ratio(&self) -> Option<f64> {
        if self.groups.is_empty() {
            return None;
        }
        let mut ratios: Vec<f64> = self.groups.iter().map(|g| g.ratio).collect();
        ratios.sort_by(f64::total_cmp);
        let n = ratios.len();
        Some(if n % 2 == 1 {
            ratios[n / 2]
        } else {
            (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
        })
    }

    /// `true` when the median worsening ratio exceeds the threshold — the
    /// condition `--fail-on-regression` turns into exit code 1.
    pub fn regressed(&self) -> bool {
        self.median_ratio()
            .is_some_and(|m| m > 1.0 + self.threshold_pct / 100.0)
    }

    /// Renders the deterministic, byte-stable text report (the golden CLI
    /// test pins it).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "campaign diff: A = {} ({} jobs) vs B = {} ({} jobs)",
            self.name_a, self.jobs_a, self.name_b, self.jobs_b
        );
        let key_w = self
            .groups
            .iter()
            .map(|g| g.key.as_str().len())
            .max()
            .unwrap_or(5)
            .max(5);
        let metric_w = self
            .groups
            .iter()
            .map(|g| g.metric.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let _ = writeln!(
            s,
            "{:<key_w$}  {:>4} {:>4}  {:<metric_w$}  {:>12} -> {:>12}  {:>7}  verdict",
            "group", "n(A)", "n(B)", "metric", "median A", "median B", "ratio"
        );
        for g in &self.groups {
            let _ = writeln!(
                s,
                "{:<key_w$}  {:>4} {:>4}  {:<metric_w$}  {:>12.4} -> {:>12.4}  {:>7.3}  {}",
                g.key.as_str(),
                g.n_a,
                g.n_b,
                g.metric,
                g.median_a,
                g.median_b,
                g.ratio,
                g.verdict.name()
            );
        }
        for (label, keys) in [
            ("only in A", &self.only_in_a),
            ("only in B", &self.only_in_b),
            ("kind mismatch (not compared)", &self.kind_mismatch),
        ] {
            for key in keys {
                let _ = writeln!(s, "{label}: {key}");
            }
        }
        match self.median_ratio() {
            None => {
                let _ = writeln!(s, "no common groups to compare");
            }
            Some(med) => {
                let limit = 1.0 + self.threshold_pct / 100.0;
                let _ = writeln!(
                    s,
                    "median worsening ratio over {} group(s): {med:.3} (regression threshold {limit:.3})",
                    self.groups.len()
                );
                let _ = writeln!(
                    s,
                    "verdict: {}",
                    if self.regressed() { "REGRESSED" } else { "ok" }
                );
            }
        }
        s
    }
}

/// The oriented worsening ratio of one pair of medians: above 1 means `b`
/// is worse. Equal medians (including 0/0) are exactly 1.
fn worsening_ratio(median_a: f64, median_b: f64, direction: Direction) -> f64 {
    if median_a == median_b {
        return 1.0;
    }
    let (good, bad) = match direction {
        Direction::LowerIsBetter => (median_a, median_b),
        Direction::HigherIsBetter => (median_b, median_a),
    };
    bad / good.max(f64::MIN_POSITIVE)
}

/// Compares one aligned pair of group aggregates.
fn diff_group(a: &GroupAggregate, b: &GroupAggregate) -> GroupDiff {
    let metric = headline_metric(a.kind);
    let direction = metric_direction(metric);
    let (sa, sb) = (
        a.metric(metric).cloned().unwrap_or_default(),
        b.metric(metric).cloned().unwrap_or_default(),
    );
    let median_a = sa.median().unwrap_or(0.0);
    let median_b = sb.median().unwrap_or(0.0);
    let ratio = worsening_ratio(median_a, median_b, direction);
    let verdict = if median_a == median_b {
        Verdict::Equal
    } else {
        match (sa.ci95(), sb.ci95()) {
            (Some((lo_a, hi_a)), Some((lo_b, hi_b))) if hi_a < lo_b || hi_b < lo_a => {
                // Disjoint intervals: the sign of the difference decides.
                let b_is_better = match direction {
                    Direction::LowerIsBetter => hi_b < lo_a,
                    Direction::HigherIsBetter => lo_b > hi_a,
                };
                if b_is_better {
                    Verdict::Better
                } else {
                    Verdict::Worse
                }
            }
            _ => Verdict::Inconclusive,
        }
    };
    GroupDiff {
        key: a.key.clone(),
        kind: a.kind,
        metric,
        n_a: a.n,
        n_b: b.n,
        median_a,
        median_b,
        ratio,
        verdict,
    }
}

/// Diffs two parsed campaign artifacts (B against the A baseline), pairing
/// groups by key across the seed axis.
pub fn diff_campaigns(a: &CampaignDoc, b: &CampaignDoc, threshold_pct: f64) -> DiffReport {
    let agg_a = aggregate(&a.records);
    let agg_b = aggregate(&b.records);
    let mut report = DiffReport {
        name_a: a.spec.name.clone(),
        name_b: b.spec.name.clone(),
        jobs_a: a.records.len(),
        jobs_b: b.records.len(),
        groups: Vec::new(),
        only_in_a: Vec::new(),
        only_in_b: Vec::new(),
        kind_mismatch: Vec::new(),
        threshold_pct,
    };
    for ga in &agg_a {
        match agg_b.iter().find(|gb| gb.key == ga.key) {
            None => report.only_in_a.push(ga.key.clone()),
            Some(gb) if gb.kind != ga.kind => report.kind_mismatch.push(ga.key.clone()),
            Some(gb) => report.groups.push(diff_group(ga, gb)),
        }
    }
    for gb in &agg_b {
        if !agg_a.iter().any(|ga| ga.key == gb.key) {
            report.only_in_b.push(gb.key.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignSpec, PolicyAxis};
    use crate::runner::{campaign_json, parse_campaign_document, run_campaign, RunnerOptions};
    use crate::spec::{ChipKind, Mode, Workload};
    use hotnoc_core::configs::{ChipConfigId, Fidelity};
    use hotnoc_noc::TrafficPattern;

    fn traffic_campaign(name: &str, seeds: Vec<u64>) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            seed: 33,
            fidelity: Fidelity::Quick,
            mode: Mode::Cosim,
            sim_time_ms: None,
            configs: vec![ChipKind::Config(ChipConfigId::A)],
            workloads: vec![
                Workload::Traffic {
                    pattern: TrafficPattern::UniformRandom,
                    rate: 0.06,
                    packet_len: 3,
                    cycles: 250,
                },
                Workload::Traffic {
                    pattern: TrafficPattern::Transpose,
                    rate: 0.05,
                    packet_len: 3,
                    cycles: 250,
                },
            ],
            policies: vec![PolicyAxis::Baseline],
            schemes: vec![],
            periods: vec![],
            offered_loads: vec![],
            failed_routers: vec![],
            failed_links: vec![],
            seeds,
        }
    }

    fn run_to_doc(spec: &CampaignSpec, tag: &str) -> CampaignDoc {
        let dir = std::env::temp_dir().join(format!("hotnoc-diff-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run = run_campaign(
            spec,
            &RunnerOptions {
                threads: 2,
                out_dir: dir.clone(),
                ..RunnerOptions::default()
            },
        )
        .expect("campaign runs");
        let text = std::fs::read_to_string(run.json_path.as_ref().expect("complete")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        parse_campaign_document(&text).expect("validates")
    }

    #[test]
    fn self_diff_is_all_equal_with_unit_ratio() {
        let doc = run_to_doc(&traffic_campaign("diff-self", vec![1, 2, 3]), "self");
        let report = diff_campaigns(&doc, &doc, 15.0);
        assert_eq!(report.groups.len(), 2);
        assert!(report
            .groups
            .iter()
            .all(|g| g.verdict == Verdict::Equal && g.ratio == 1.0));
        assert_eq!(report.median_ratio(), Some(1.0));
        assert!(!report.regressed());
        assert!(report.only_in_a.is_empty() && report.only_in_b.is_empty());
    }

    #[test]
    fn different_seed_sets_stay_inconclusive_or_equal() {
        // The acceptance criterion: same spec, disjoint seed sets — every
        // group must align by key and no group may claim significance.
        let a = run_to_doc(&traffic_campaign("diff-sa", vec![1, 2, 3, 4]), "sa");
        let b = run_to_doc(&traffic_campaign("diff-sb", vec![11, 12, 13, 14]), "sb");
        let report = diff_campaigns(&a, &b, 15.0);
        assert_eq!(report.groups.len(), 2, "groups must align across seeds");
        for g in &report.groups {
            assert!(
                matches!(g.verdict, Verdict::Equal | Verdict::Inconclusive),
                "group {} claimed {:?} from same-distribution runs",
                g.key,
                g.verdict
            );
        }
        assert!(!report.regressed());
    }

    #[test]
    fn doctored_slowdown_regresses_and_disjoint_groups_are_reported() {
        let a = run_to_doc(&traffic_campaign("diff-da", vec![1, 2, 3]), "da");
        // Synthetic 30% latency inflation on every record of B.
        let mut b = run_to_doc(&traffic_campaign("diff-da", vec![1, 2, 3]), "db");
        for rec in &mut b.records {
            if let crate::ScenarioOutcome::Traffic(m) = &mut rec.outcome {
                m.mean_latency_cycles *= 1.3;
            }
        }
        // Round-trip through the artifact writer so the doctored document
        // is exactly what a tampered file would parse to.
        let doc = parse_campaign_document(&campaign_json(&b.spec, &b.records)).expect("parses");
        let report = diff_campaigns(&a, &doc, 15.0);
        assert!(report.regressed(), "30% slowdown must trip a 15% gate");
        assert!(report.median_ratio().unwrap() > 1.25);
        assert!(!diff_campaigns(&a, &doc, 50.0).regressed());

        // An extra group on one side is reported, not silently dropped.
        let mut extra = traffic_campaign("diff-extra", vec![1, 2, 3]);
        extra.workloads.push(Workload::Traffic {
            pattern: TrafficPattern::Tornado,
            rate: 0.05,
            packet_len: 3,
            cycles: 250,
        });
        let c = run_to_doc(&extra, "dc");
        let report = diff_campaigns(&a, &c, 15.0);
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.only_in_b.len(), 1);
        let rendered = report.render();
        assert!(rendered.contains("only in B"), "{rendered}");
    }

    #[test]
    fn single_seed_groups_are_inconclusive_never_nan() {
        // n = 1 sits on the t-table edge: `t_critical_95(0)` is infinite
        // and `ci95()` is None, so the CI-overlap test cannot run. The
        // verdict must land on `inconclusive` with finite medians/ratios —
        // never a NaN-poisoned comparison.
        let a = run_to_doc(&traffic_campaign("diff-n1a", vec![1]), "n1a");
        let b = run_to_doc(&traffic_campaign("diff-n1b", vec![2]), "n1b");
        let report = diff_campaigns(&a, &b, 15.0);
        assert_eq!(report.groups.len(), 2);
        for g in &report.groups {
            assert_eq!(g.n_a, 1);
            assert_eq!(g.n_b, 1);
            assert!(
                matches!(g.verdict, Verdict::Inconclusive | Verdict::Equal),
                "n=1 group {} claimed {:?}",
                g.key,
                g.verdict
            );
            assert!(g.median_a.is_finite(), "median A is {}", g.median_a);
            assert!(g.median_b.is_finite(), "median B is {}", g.median_b);
            assert!(g.ratio.is_finite(), "ratio is {}", g.ratio);
        }
        let med = report.median_ratio().expect("two aligned groups");
        assert!(med.is_finite());
        let rendered = report.render();
        assert!(rendered.contains("inconclusive"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");
    }

    #[test]
    fn worsening_ratio_orientation() {
        // Lower-is-better: B larger = worse.
        assert!(worsening_ratio(10.0, 13.0, Direction::LowerIsBetter) > 1.2);
        assert!(worsening_ratio(13.0, 10.0, Direction::LowerIsBetter) < 1.0);
        // Higher-is-better: B smaller = worse.
        assert!(worsening_ratio(10.0, 8.0, Direction::HigherIsBetter) > 1.2);
        // Equal (including zero/zero) is exactly 1.
        assert_eq!(worsening_ratio(0.0, 0.0, Direction::LowerIsBetter), 1.0);
    }

    #[test]
    fn render_is_deterministic() {
        let doc = run_to_doc(&traffic_campaign("diff-render", vec![5, 6]), "render");
        let r1 = diff_campaigns(&doc, &doc, 15.0).render();
        let r2 = diff_campaigns(&doc, &doc, 15.0).render();
        assert_eq!(r1, r2);
        assert!(r1.contains("verdict: ok"), "{r1}");
    }
}
