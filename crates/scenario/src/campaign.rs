//! `CampaignSpec` — a declarative sweep over scenario axes.
//!
//! A campaign is a cartesian product of axes — chips x workloads x
//! policies (x schemes x periods) x seeds — expanded into a deterministic,
//! stably-ordered job list of [`ScenarioSpec`]s. Expansion is a pure
//! function of the spec: the same campaign expands to the same jobs with
//! the same derived per-job seeds on every machine, which is what lets the
//! runner journal jobs by index and resume a killed campaign without
//! recomputation.
//!
//! Expansion rules (they keep the product free of redundant jobs):
//!
//! * Traffic workloads pair only with the baseline policy — the policy axis
//!   does not apply to bare-NoC runs.
//! * `baseline` ignores the scheme and period axes (one job per chip x
//!   workload x seed).
//! * `periodic` expands schemes x periods (just schemes in plan-cost mode,
//!   where the period does not influence the cost).
//! * `adaptive` expands periods.
//! * In plan-cost mode only `periodic` entries produce jobs.
//! * The seed axis applies only to workloads that consume randomness:
//!   traffic jobs run once per listed seed, while LDPC co-simulations are
//!   fully determined by the spec (the scenario seed is never read), so
//!   they collapse to a single job seeded from the first axis entry.

use crate::json::Json;
use crate::spec::{
    fidelity_from_name, fidelity_name, scheme_from_name, scheme_name, ChipKind, FaultEventSpec,
    FaultKindSpec, Mode, Policy, ScenarioSpec, Workload,
};
use hotnoc_core::configs::Fidelity;
use hotnoc_noc::Coord;
use hotnoc_reconfig::MigrationScheme;
use serde::{Deserialize, Serialize};

/// Schema tag of campaign spec documents.
pub const SPEC_SCHEMA: &str = "hotnoc-campaign-spec-v1";

/// One entry of the policy axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyAxis {
    /// Static placement (no migration).
    Baseline,
    /// Periodic migration; expands the scheme and period axes.
    Periodic,
    /// Runtime-adaptive migration; expands the period axis.
    Adaptive,
}

impl PolicyAxis {
    fn name(self) -> &'static str {
        match self {
            PolicyAxis::Baseline => "baseline",
            PolicyAxis::Periodic => "periodic",
            PolicyAxis::Adaptive => "adaptive",
        }
    }

    fn from_name(s: &str) -> Result<PolicyAxis, String> {
        match s {
            "baseline" => Ok(PolicyAxis::Baseline),
            "periodic" => Ok(PolicyAxis::Periodic),
            "adaptive" => Ok(PolicyAxis::Adaptive),
            other => Err(format!("unknown policy {other:?}")),
        }
    }
}

/// A declarative sweep over scenario axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name; names the artifacts (`CAMPAIGN_<name>.json`), so it
    /// is restricted to `[A-Za-z0-9._-]`.
    pub name: String,
    /// Campaign seed: per-job seeds derive from it and the job index.
    pub seed: u64,
    /// Fidelity of every job.
    pub fidelity: Fidelity,
    /// Measurement mode of every job.
    pub mode: Mode,
    /// Optional horizon override forwarded to every job (milliseconds).
    pub sim_time_ms: Option<f64>,
    /// Chip axis.
    pub configs: Vec<ChipKind>,
    /// Workload axis.
    pub workloads: Vec<Workload>,
    /// Policy axis.
    pub policies: Vec<PolicyAxis>,
    /// Scheme axis (expanded by `periodic` policies).
    pub schemes: Vec<MigrationScheme>,
    /// Migration-period axis, in decoded blocks.
    pub periods: Vec<u64>,
    /// Offered-load axis: every traffic workload re-runs once per listed
    /// injection rate (packets per node per cycle), replacing the
    /// workload's own `rate`. Empty = each traffic workload runs at its
    /// own rate; LDPC workloads ignore the axis. This is what drives
    /// latency-vs-load saturation curves through the campaign path.
    pub offered_loads: Vec<f64>,
    /// Router-failure axis: every traffic workload re-runs once per listed
    /// failure count, with that many routers disabled from cycle 0 at
    /// deterministic, evenly-spread positions (0 = a healthy point). Empty
    /// = healthy fabric only; LDPC workloads ignore the axis.
    pub failed_routers: Vec<u64>,
    /// Link-failure axis: like `failed_routers`, but disabling that many
    /// links (spread to avoid the failed routers). Crossed with
    /// `failed_routers` when both are non-empty.
    pub failed_links: Vec<u64>,
    /// Seed axis: every combination runs once per listed seed.
    pub seeds: Vec<u64>,
}

impl CampaignSpec {
    /// Validates the axes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "._-".contains(c))
        {
            return Err(format!(
                "campaign name {:?} must be non-empty [A-Za-z0-9._-]",
                self.name
            ));
        }
        if self.seed > (1 << 53) {
            return Err("campaign seed exceeds 2^53".into());
        }
        if self.configs.is_empty() {
            return Err("configs axis is empty".into());
        }
        if self.workloads.is_empty() {
            return Err("workloads axis is empty".into());
        }
        if self.policies.is_empty() {
            return Err("policies axis is empty".into());
        }
        if self.seeds.is_empty() {
            return Err("seeds axis is empty".into());
        }
        for c in &self.configs {
            c.validate()?;
        }
        for w in &self.workloads {
            w.validate()?;
        }
        let needs_schemes = self.policies.contains(&PolicyAxis::Periodic)
            && self.workloads.iter().any(|w| matches!(w, Workload::Ldpc));
        if needs_schemes && self.schemes.is_empty() {
            return Err("periodic policy needs a non-empty schemes axis".into());
        }
        let needs_periods = self.mode == Mode::Cosim
            && self
                .policies
                .iter()
                .any(|p| matches!(p, PolicyAxis::Periodic | PolicyAxis::Adaptive))
            && self.workloads.iter().any(|w| matches!(w, Workload::Ldpc));
        if needs_periods && self.periods.is_empty() {
            return Err("periodic/adaptive policies need a non-empty periods axis".into());
        }
        if self.periods.contains(&0) {
            return Err("periods must be >= 1 block".into());
        }
        for pair in self.offered_loads.windows(2) {
            if pair[0] >= pair[1] {
                return Err("offered_loads must be strictly increasing".into());
            }
        }
        for &load in &self.offered_loads {
            if !(load > 0.0 && load <= 1.0 && load.is_finite()) {
                return Err(format!("offered load {load} outside (0, 1]"));
            }
        }
        for (axis, name) in [
            (&self.failed_routers, "failed_routers"),
            (&self.failed_links, "failed_links"),
        ] {
            for pair in axis.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!("{name} must be strictly increasing"));
                }
            }
        }
        if !(self.failed_routers.is_empty() && self.failed_links.is_empty()) {
            if !self
                .workloads
                .iter()
                .any(|w| matches!(w, Workload::Traffic { .. }))
            {
                return Err(
                    "failed_routers / failed_links axes need a traffic workload (faults do \
                     not apply to the ldpc co-simulation)"
                        .into(),
                );
            }
            for c in &self.configs {
                let side = c.mesh_side();
                let nodes = (side * side) as u64;
                for &count in self.failed_routers.iter().chain(&self.failed_links) {
                    if count >= nodes {
                        return Err(format!(
                            "failure count {count} leaves nothing of the {side}x{side} mesh"
                        ));
                    }
                }
            }
        }
        if self.mode == Mode::PlanCost && !self.policies.contains(&PolicyAxis::Periodic) {
            return Err("plan-cost mode needs a periodic policy entry".into());
        }
        // Expansion also validates every produced scenario; run it once so a
        // bad combination is caught before the runner starts.
        for job in self.expand() {
            job.validate()
                .map_err(|e| format!("job {:?}: {e}", job.name))?;
        }
        Ok(())
    }

    /// Expands the axes into the deterministic, stably-ordered job list.
    /// Job index order is the nesting order chips → workloads (→ offered
    /// loads) → policies (schemes → periods) → fault variants → seeds.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut jobs = Vec::new();
        for chip in &self.configs {
            for (wi, axis_workload) in self.workloads.iter().enumerate() {
                for (workload, load) in self.workload_variants(axis_workload) {
                    let policies = self.policies_for(&workload);
                    // LDPC runs are deterministic given the spec;
                    // re-running them per seed would duplicate identical
                    // jobs.
                    let seeds = if matches!(workload, Workload::Traffic { .. }) {
                        &self.seeds[..]
                    } else {
                        &self.seeds[..1]
                    };
                    // The load tag keeps job names unique across the
                    // offered-load axis (canonical shortest-roundtrip
                    // float formatting, like the spec JSON).
                    let load_tag = load.map(|l| format!("@l{l}")).unwrap_or_default();
                    let fault_variants = self.fault_variants(&workload, chip);
                    for policy in policies {
                        for (faults, fault_tag) in &fault_variants {
                            for &axis_seed in seeds {
                                let index = jobs.len() as u64;
                                jobs.push(ScenarioSpec {
                                    name: format!(
                                        "{}/w{wi}:{}{load_tag}/{}{fault_tag}/s{axis_seed}",
                                        chip.label(),
                                        workload.label(),
                                        policy.label()
                                    ),
                                    chip: chip.clone(),
                                    workload: workload.clone(),
                                    policy: policy.clone(),
                                    mode: if matches!(workload, Workload::Traffic { .. }) {
                                        Mode::Cosim
                                    } else {
                                        self.mode
                                    },
                                    fidelity: self.fidelity,
                                    sim_time_ms: self.sim_time_ms,
                                    faults: faults.clone(),
                                    seed: derive_job_seed(self.seed, axis_seed, index),
                                });
                            }
                        }
                    }
                }
            }
        }
        jobs
    }

    /// The fault plans one workload expands to: traffic workloads fan out
    /// across the cross product of the router- and link-failure axes (each
    /// count realized as a deterministic [`degraded_fabric`] plan), tagged
    /// `/frN` / `/flM` in the job name. Healthy expansion — both axes empty
    /// or a non-traffic workload — is a single untagged empty plan.
    fn fault_variants(
        &self,
        workload: &Workload,
        chip: &ChipKind,
    ) -> Vec<(Vec<FaultEventSpec>, String)> {
        if !matches!(workload, Workload::Traffic { .. })
            || (self.failed_routers.is_empty() && self.failed_links.is_empty())
        {
            return vec![(Vec::new(), String::new())];
        }
        let side = chip.mesh_side();
        let router_counts: &[u64] = if self.failed_routers.is_empty() {
            &[0]
        } else {
            &self.failed_routers
        };
        let link_counts: &[u64] = if self.failed_links.is_empty() {
            &[0]
        } else {
            &self.failed_links
        };
        let mut out = Vec::new();
        for &fr in router_counts {
            for &fl in link_counts {
                let mut tag = String::new();
                if !self.failed_routers.is_empty() {
                    tag.push_str(&format!("/fr{fr}"));
                }
                if !self.failed_links.is_empty() {
                    tag.push_str(&format!("/fl{fl}"));
                }
                out.push((degraded_fabric(side, fr, fl), tag));
            }
        }
        out
    }

    /// The concrete workloads one axis entry expands to: traffic workloads
    /// fan out across the offered-load axis (their own rate replaced by
    /// each listed load), everything else passes through unchanged.
    fn workload_variants(&self, workload: &Workload) -> Vec<(Workload, Option<f64>)> {
        match workload {
            Workload::Traffic {
                pattern,
                packet_len,
                cycles,
                ..
            } if !self.offered_loads.is_empty() => self
                .offered_loads
                .iter()
                .map(|&load| {
                    (
                        Workload::Traffic {
                            pattern: pattern.clone(),
                            rate: load,
                            packet_len: *packet_len,
                            cycles: *cycles,
                        },
                        Some(load),
                    )
                })
                .collect(),
            w => vec![(w.clone(), None)],
        }
    }

    /// The concrete policies one workload expands to (see the module docs
    /// for the collapse rules).
    fn policies_for(&self, workload: &Workload) -> Vec<Policy> {
        if matches!(workload, Workload::Traffic { .. }) {
            return vec![Policy::Baseline];
        }
        let mut out = Vec::new();
        for axis in &self.policies {
            match axis {
                PolicyAxis::Baseline => {
                    if self.mode == Mode::Cosim {
                        out.push(Policy::Baseline);
                    }
                }
                PolicyAxis::Periodic => {
                    if self.mode == Mode::PlanCost {
                        let period = self.periods.first().copied().unwrap_or(1);
                        for &scheme in &self.schemes {
                            out.push(Policy::Periodic {
                                scheme,
                                period_blocks: period,
                            });
                        }
                    } else {
                        for &scheme in &self.schemes {
                            for &period in &self.periods {
                                out.push(Policy::Periodic {
                                    scheme,
                                    period_blocks: period,
                                });
                            }
                        }
                    }
                }
                PolicyAxis::Adaptive => {
                    if self.mode == Mode::Cosim {
                        for &period in &self.periods {
                            out.push(Policy::Adaptive {
                                period_blocks: period,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Serializes to canonical JSON (the fingerprint input).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::str(SPEC_SCHEMA)),
            ("name", Json::Str(self.name.clone())),
            ("seed", Json::int(self.seed)),
            ("fidelity", Json::str(fidelity_name(self.fidelity))),
            (
                "mode",
                Json::str(match self.mode {
                    Mode::Cosim => "cosim",
                    Mode::PlanCost => "plan-cost",
                }),
            ),
        ];
        if let Some(ms) = self.sim_time_ms {
            fields.push(("sim_time_ms", Json::Num(ms)));
        }
        fields.push((
            "configs",
            Json::Array(self.configs.iter().map(ChipKind::to_json).collect()),
        ));
        fields.push((
            "workloads",
            Json::Array(self.workloads.iter().map(Workload::to_json).collect()),
        ));
        fields.push((
            "policies",
            Json::Array(self.policies.iter().map(|p| Json::str(p.name())).collect()),
        ));
        fields.push((
            "schemes",
            Json::Array(
                self.schemes
                    .iter()
                    .map(|&s| Json::Str(scheme_name(s)))
                    .collect(),
            ),
        ));
        fields.push((
            "periods",
            Json::Array(self.periods.iter().map(|&p| Json::int(p)).collect()),
        ));
        if !self.offered_loads.is_empty() {
            // Emitted only when used, so campaigns that predate the axis
            // keep their canonical JSON (and fingerprint) unchanged.
            fields.push((
                "offered_loads",
                Json::Array(self.offered_loads.iter().map(|&l| Json::Num(l)).collect()),
            ));
        }
        // The fault axes follow the same emit-only-when-used rule.
        if !self.failed_routers.is_empty() {
            fields.push((
                "failed_routers",
                Json::Array(self.failed_routers.iter().map(|&n| Json::int(n)).collect()),
            ));
        }
        if !self.failed_links.is_empty() {
            fields.push((
                "failed_links",
                Json::Array(self.failed_links.iter().map(|&n| Json::int(n)).collect()),
            ));
        }
        fields.push((
            "seeds",
            Json::Array(self.seeds.iter().map(|&s| Json::int(s)).collect()),
        ));
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Deserializes and validates a campaign spec document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema or semantic violation.
    pub fn from_json(j: &Json) -> Result<CampaignSpec, String> {
        let schema = j.req_str("schema")?;
        if schema != SPEC_SCHEMA {
            return Err(format!("unknown schema {schema:?} (want {SPEC_SCHEMA:?})"));
        }
        let list = |key: &str| -> Result<&[Json], String> {
            match j.get(key) {
                None => Ok(&[]),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| format!("field {key:?} is not an array")),
            }
        };
        let spec = CampaignSpec {
            name: j.req_str("name")?.to_string(),
            seed: j.req_u64("seed")?,
            fidelity: fidelity_from_name(j.req_str("fidelity")?)?,
            mode: match j.get("mode").map(|m| m.as_str()) {
                None => Mode::Cosim,
                Some(Some("cosim")) => Mode::Cosim,
                Some(Some("plan-cost")) => Mode::PlanCost,
                Some(other) => return Err(format!("unknown mode {other:?}")),
            },
            sim_time_ms: match j.get("sim_time_ms") {
                None => None,
                Some(v) => Some(v.as_f64().ok_or("sim_time_ms is not a finite number")?),
            },
            configs: j
                .req_array("configs")?
                .iter()
                .map(ChipKind::from_json)
                .collect::<Result<_, _>>()?,
            workloads: j
                .req_array("workloads")?
                .iter()
                .map(Workload::from_json)
                .collect::<Result<_, _>>()?,
            policies: j
                .req_array("policies")?
                .iter()
                .map(|p| PolicyAxis::from_name(p.as_str().ok_or("policy is not a string")?))
                .collect::<Result<_, _>>()?,
            schemes: list("schemes")?
                .iter()
                .map(|s| scheme_from_name(s.as_str().ok_or("scheme is not a string")?))
                .collect::<Result<_, _>>()?,
            periods: list("periods")?
                .iter()
                .map(|p| p.as_u64().ok_or("period is not a non-negative integer"))
                .collect::<Result<_, _>>()?,
            offered_loads: list("offered_loads")?
                .iter()
                .map(|l| l.as_f64().ok_or("offered load is not a finite number"))
                .collect::<Result<_, _>>()?,
            failed_routers: list("failed_routers")?
                .iter()
                .map(|n| n.as_u64().ok_or("failed_routers entry is not a count"))
                .collect::<Result<_, _>>()?,
            failed_links: list("failed_links")?
                .iter()
                .map(|n| n.as_u64().ok_or("failed_links entry is not a count"))
                .collect::<Result<_, _>>()?,
            seeds: j
                .req_array("seeds")?
                .iter()
                .map(|s| s.as_u64().ok_or("seed is not a non-negative integer"))
                .collect::<Result<_, _>>()?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a campaign spec from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax and schema violations.
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        CampaignSpec::from_json(&Json::parse(text)?)
    }

    /// A 64-bit FNV-1a fingerprint of the canonical spec JSON, hex-encoded.
    /// The runner journals it in the manifest header so a resume against an
    /// edited campaign is detected and restarted instead of mixing results.
    pub fn fingerprint(&self) -> String {
        let text = self.to_json().to_string();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

/// The canonical degraded fabric for a failure-count pair: `routers`
/// routers and `links` links taken out at cycle 0, spread deterministically
/// over a `side`×`side` mesh so every expansion of the same campaign spec
/// produces byte-identical fault plans.
///
/// Router `i` of `routers` fails node `i * n / routers` (row-major id over
/// `n = side²` nodes). Link failures start half a side away from node 0 and
/// walk the id space, skipping endpoints already dead (a link into a failed
/// router would be redundant) and preferring the east edge, then north.
pub fn degraded_fabric(side: usize, routers: u64, links: u64) -> Vec<FaultEventSpec> {
    let n = (side * side) as u64;
    let mut events = Vec::new();
    let coord = |id: u64| Coord {
        x: (id % side as u64) as u8,
        y: (id / side as u64) as u8,
    };
    let mut dead = vec![false; n as usize];
    for i in 0..routers.min(n) {
        let id = i * n / routers;
        dead[id as usize] = true;
        events.push(FaultEventSpec {
            at: 0,
            kind: FaultKindSpec::FailRouter(coord(id)),
        });
    }
    let mut placed = 0;
    let mut cursor = (side as u64 / 2) % n;
    let mut scanned = 0;
    while placed < links && scanned < n {
        let id = cursor;
        cursor = (cursor + 1) % n;
        scanned += 1;
        if dead[id as usize] {
            continue;
        }
        let c = coord(id);
        // East edge first, then north: both stay in-mesh for interior
        // nodes, and the pair is adjacent by construction.
        let peer = if usize::from(c.x) + 1 < side {
            Coord { x: c.x + 1, y: c.y }
        } else if usize::from(c.y) + 1 < side {
            Coord { x: c.x, y: c.y + 1 }
        } else {
            continue;
        };
        if dead[usize::from(peer.y) * side + usize::from(peer.x)] {
            continue;
        }
        events.push(FaultEventSpec {
            at: 0,
            kind: FaultKindSpec::FailLink(c, peer),
        });
        placed += 1;
    }
    events
}

/// SplitMix64, the workspace's standard seed scrambler.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed of one job from the campaign seed, the job's
/// seed-axis value and its index in the expanded job list. Masked to 53
/// bits so the value survives a JSON number roundtrip exactly.
pub fn derive_job_seed(campaign_seed: u64, axis_seed: u64, job_index: u64) -> u64 {
    let mixed = splitmix64(campaign_seed ^ splitmix64(axis_seed)) ^ job_index;
    splitmix64(mixed) & ((1 << 53) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotnoc_core::configs::ChipConfigId;
    use hotnoc_noc::TrafficPattern;

    fn sweep() -> CampaignSpec {
        CampaignSpec {
            name: "sweep".to_string(),
            seed: 42,
            fidelity: Fidelity::Quick,
            mode: Mode::Cosim,
            sim_time_ms: None,
            configs: ChipConfigId::ALL
                .iter()
                .map(|&c| ChipKind::Config(c))
                .collect(),
            workloads: vec![Workload::Ldpc],
            policies: vec![PolicyAxis::Periodic],
            schemes: MigrationScheme::FIGURE1.to_vec(),
            periods: vec![8, 32],
            offered_loads: vec![],
            failed_routers: vec![],
            failed_links: vec![],
            seeds: vec![0],
        }
    }

    #[test]
    fn sweep_expands_to_fifty_jobs_in_stable_order() {
        let jobs = sweep().expand();
        assert_eq!(jobs.len(), 5 * 5 * 2);
        // Stable order: first config's first scheme's two periods lead.
        assert_eq!(jobs[0].name, "A/w0:ldpc/rotation/p8/s0");
        assert_eq!(jobs[1].name, "A/w0:ldpc/rotation/p32/s0");
        assert_eq!(jobs[10].name, "B/w0:ldpc/rotation/p8/s0");
        // Names are unique.
        let mut names: Vec<&str> = jobs.iter().map(|jb| jb.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), jobs.len());
        // Expansion is a pure function.
        assert_eq!(sweep().expand(), jobs);
    }

    #[test]
    fn traffic_workloads_collapse_the_policy_axis() {
        let mut spec = sweep();
        spec.workloads.push(Workload::Traffic {
            pattern: TrafficPattern::UniformRandom,
            rate: 0.05,
            packet_len: 4,
            cycles: 100,
        });
        spec.seeds = vec![1, 2];
        let jobs = spec.expand();
        // ldpc: 5 schemes x 2 periods, seed axis collapsed (deterministic);
        // traffic: baseline x 2 seeds.
        assert_eq!(jobs.len(), 5 * (5 * 2 + 2));
        let traffic: Vec<_> = jobs
            .iter()
            .filter(|jb| matches!(jb.workload, Workload::Traffic { .. }))
            .collect();
        assert_eq!(traffic.len(), 10);
        assert!(traffic.iter().all(|jb| jb.policy == Policy::Baseline));
        // Every ldpc job carries the first axis seed.
        assert!(jobs
            .iter()
            .filter(|jb| matches!(jb.workload, Workload::Ldpc))
            .all(|jb| jb.name.ends_with("/s1")));
    }

    #[test]
    fn offered_loads_fan_out_traffic_workloads_only() {
        let mut spec = sweep();
        spec.workloads.push(Workload::Traffic {
            pattern: TrafficPattern::UniformRandom,
            rate: 0.05,
            packet_len: 4,
            cycles: 100,
        });
        spec.seeds = vec![1, 2];
        spec.offered_loads = vec![0.02, 0.1];
        let jobs = spec.expand();
        // ldpc: 5 schemes x 2 periods (seed axis collapsed, load axis
        // ignored); traffic: 2 loads x 2 seeds.
        assert_eq!(jobs.len(), 5 * (5 * 2 + 2 * 2));
        let traffic: Vec<_> = jobs
            .iter()
            .filter(|jb| matches!(jb.workload, Workload::Traffic { .. }))
            .collect();
        assert_eq!(traffic.len(), 5 * 4);
        // Each traffic job runs at its axis load, tagged in the name.
        assert!(traffic
            .iter()
            .all(|jb| matches!(jb.workload, Workload::Traffic { rate, .. }
                if rate == 0.02 || rate == 0.1)));
        assert_eq!(traffic[0].name, "A/w1:traffic:uniform@l0.02/baseline/s1");
        assert_eq!(traffic[2].name, "A/w1:traffic:uniform@l0.1/baseline/s1");
        // Expansion stays a pure function and the spec round-trips.
        assert_eq!(spec.expand(), jobs);
        let back = CampaignSpec::parse(&spec.to_json().to_string()).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn offered_loads_field_is_absent_when_unused() {
        // Campaigns that predate the axis must keep their canonical JSON
        // (and fingerprint) byte-for-byte.
        let text = sweep().to_json().to_string();
        assert!(!text.contains("offered_loads"), "{text}");
    }

    #[test]
    fn offered_loads_validation() {
        let mut bad = sweep();
        bad.offered_loads = vec![0.1, 0.1];
        assert!(bad.validate().is_err(), "duplicate loads");

        let mut bad = sweep();
        bad.offered_loads = vec![0.2, 0.1];
        assert!(bad.validate().is_err(), "decreasing loads");

        let mut bad = sweep();
        bad.offered_loads = vec![0.0];
        assert!(bad.validate().is_err(), "zero load");

        let mut bad = sweep();
        bad.offered_loads = vec![1.5];
        assert!(bad.validate().is_err(), "load above 1");

        let mut ok = sweep();
        ok.offered_loads = vec![0.05, 0.1, 0.2];
        ok.validate().expect("sorted unique loads in (0, 1]");
    }

    #[test]
    fn fault_axes_fan_out_traffic_workloads_only() {
        let mut spec = sweep();
        spec.workloads.push(Workload::Traffic {
            pattern: TrafficPattern::UniformRandom,
            rate: 0.05,
            packet_len: 4,
            cycles: 100,
        });
        spec.seeds = vec![1, 2];
        spec.failed_routers = vec![0, 2];
        spec.failed_links = vec![1];
        let jobs = spec.expand();
        // ldpc: 5 schemes x 2 periods (seed axis collapsed, fault axes
        // ignored); traffic: 2 router counts x 1 link count x 2 seeds.
        assert_eq!(jobs.len(), 5 * (5 * 2 + 2 * 2));
        let traffic: Vec<_> = jobs
            .iter()
            .filter(|jb| matches!(jb.workload, Workload::Traffic { .. }))
            .collect();
        assert_eq!(traffic.len(), 5 * 4);
        assert!(jobs
            .iter()
            .filter(|jb| matches!(jb.workload, Workload::Ldpc))
            .all(|jb| jb.faults.is_empty()));
        // Both axes tag the name; the plan size matches the counts.
        assert_eq!(traffic[0].name, "A/w1:traffic:uniform/baseline/fr0/fl1/s1");
        assert_eq!(traffic[0].faults.len(), 1);
        assert_eq!(traffic[2].name, "A/w1:traffic:uniform/baseline/fr2/fl1/s1");
        assert_eq!(traffic[2].faults.len(), 3);
        // Every produced job passes scenario validation (plans in-bounds).
        for jb in &jobs {
            jb.validate().unwrap_or_else(|e| panic!("{}: {e}", jb.name));
        }
        // Expansion stays a pure function and the spec round-trips.
        assert_eq!(spec.expand(), jobs);
        let back = CampaignSpec::parse(&spec.to_json().to_string()).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn fault_axes_are_absent_when_unused() {
        // Campaigns that predate the axes must keep their canonical JSON
        // (and fingerprint) byte-for-byte.
        let text = sweep().to_json().to_string();
        assert!(!text.contains("failed_routers"), "{text}");
        assert!(!text.contains("failed_links"), "{text}");
    }

    #[test]
    fn fault_axis_validation() {
        let traffic = Workload::Traffic {
            pattern: TrafficPattern::UniformRandom,
            rate: 0.05,
            packet_len: 4,
            cycles: 100,
        };

        let mut bad = sweep();
        bad.failed_routers = vec![1];
        assert!(bad.validate().is_err(), "fault axis without traffic");

        let mut bad = sweep();
        bad.workloads = vec![traffic.clone()];
        bad.policies = vec![PolicyAxis::Baseline];
        bad.schemes = vec![];
        bad.periods = vec![];
        bad.failed_routers = vec![2, 1];
        assert!(bad.validate().is_err(), "decreasing counts");

        let mut bad = sweep();
        bad.workloads = vec![traffic.clone()];
        bad.policies = vec![PolicyAxis::Baseline];
        bad.schemes = vec![];
        bad.periods = vec![];
        // Config A is a small mesh; demanding this many dead routers
        // leaves nothing to route through.
        bad.failed_routers = vec![10_000];
        assert!(bad.validate().is_err(), "count >= nodes");

        let mut ok = sweep();
        ok.workloads = vec![traffic];
        ok.policies = vec![PolicyAxis::Baseline];
        ok.schemes = vec![];
        ok.periods = vec![];
        ok.failed_routers = vec![0, 1, 2];
        ok.failed_links = vec![0, 2];
        ok.validate().expect("increasing counts on traffic");
    }

    #[test]
    fn degraded_fabric_is_deterministic_and_in_bounds() {
        let plan = degraded_fabric(4, 3, 2);
        assert_eq!(plan, degraded_fabric(4, 3, 2), "pure function");
        assert_eq!(plan.len(), 5);
        assert!(plan.iter().all(|e| e.at == 0));
        let failed: Vec<_> = plan
            .iter()
            .filter_map(|e| match e.kind {
                FaultKindSpec::FailRouter(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(failed.len(), 3);
        // Link failures never touch a failed router's ports.
        for e in &plan {
            if let FaultKindSpec::FailLink(a, b) = e.kind {
                assert!(!failed.contains(&a) && !failed.contains(&b), "{a:?}-{b:?}");
            }
        }
    }

    #[test]
    fn plan_cost_collapses_periods_and_skips_baseline() {
        let mut spec = sweep();
        spec.mode = Mode::PlanCost;
        spec.policies = vec![
            PolicyAxis::Baseline,
            PolicyAxis::Periodic,
            PolicyAxis::Adaptive,
        ];
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 5 * 5, "one job per chip x scheme");
        assert!(jobs.iter().all(|jb| jb.mode == Mode::PlanCost));
    }

    #[test]
    fn derived_seeds_differ_by_index_and_fit_json() {
        let a = derive_job_seed(42, 0, 0);
        let b = derive_job_seed(42, 0, 1);
        let c = derive_job_seed(43, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a <= (1 << 53));
        // Pure function.
        assert_eq!(a, derive_job_seed(42, 0, 0));
    }

    #[test]
    fn spec_json_roundtrip_and_fingerprint_stability() {
        let spec = sweep();
        let text = spec.to_json().to_string();
        let back = CampaignSpec::parse(&text).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());

        let mut edited = spec.clone();
        edited.periods = vec![8, 64];
        assert_ne!(edited.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn validation_catches_empty_axes() {
        let mut bad = sweep();
        bad.schemes.clear();
        assert!(bad.validate().is_err());

        let mut bad = sweep();
        bad.seeds.clear();
        assert!(bad.validate().is_err());

        let mut bad = sweep();
        bad.name = "has space".to_string();
        assert!(bad.validate().is_err());
    }
}
