//! `ScenarioSpec` — the declarative description of **one** run.
//!
//! A scenario names a chip (one of the paper's configurations A–E or a
//! custom mesh/floorplan), a workload (the LDPC decoder or a synthetic
//! [`TrafficPattern`]), a migration policy (static baseline, periodic under
//! a fixed scheme, or runtime-adaptive), an analysis mode, a fidelity level
//! and a seed. Specs are pure data: they serialize to and from canonical
//! JSON (see [`crate::json`]) so experiments can be expressed, diffed and
//! archived without writing Rust.

use crate::json::Json;
use hotnoc_core::configs::{ChipConfigId, ChipSpec, Fidelity};
use hotnoc_noc::{Coord, FaultPlan, Mesh, TrafficPattern};
use hotnoc_reconfig::MigrationScheme;
use serde::{Deserialize, Serialize};

/// Which chip a scenario runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChipKind {
    /// One of the paper's five configurations.
    Config(ChipConfigId),
    /// A custom square die.
    Custom {
        /// Mesh side length (the die is `mesh_side` x `mesh_side`).
        mesh_side: usize,
        /// Per-tile workload weights, row-major, length `mesh_side^2`.
        tile_weights: Vec<f64>,
        /// Calibration target: the static peak temperature, °C.
        base_peak_celsius: f64,
    },
}

impl ChipKind {
    /// A short display label (`"A"`, `"custom6x6"`).
    pub fn label(&self) -> String {
        match self {
            ChipKind::Config(id) => id.to_string(),
            ChipKind::Custom { mesh_side, .. } => format!("custom{mesh_side}x{mesh_side}"),
        }
    }

    /// Mesh side length of the chip.
    pub fn mesh_side(&self) -> usize {
        match self {
            ChipKind::Config(id) => ChipSpec::of(*id, Fidelity::Quick).mesh_side,
            ChipKind::Custom { mesh_side, .. } => *mesh_side,
        }
    }

    /// The buildable [`ChipSpec`] at `fidelity`.
    pub fn to_chip_spec(&self, fidelity: Fidelity) -> ChipSpec {
        match self {
            ChipKind::Config(id) => ChipSpec::of(*id, fidelity),
            ChipKind::Custom {
                mesh_side,
                tile_weights,
                base_peak_celsius,
            } => ChipSpec::custom(
                *mesh_side,
                tile_weights.clone(),
                *base_peak_celsius,
                fidelity,
            ),
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        match self {
            ChipKind::Config(id) => Json::object(vec![("config", Json::Str(id.to_string()))]),
            ChipKind::Custom {
                mesh_side,
                tile_weights,
                base_peak_celsius,
            } => Json::object(vec![(
                "custom",
                Json::object(vec![
                    ("mesh_side", Json::int(*mesh_side as u64)),
                    (
                        "tile_weights",
                        Json::Array(tile_weights.iter().map(|&w| Json::Num(w)).collect()),
                    ),
                    ("base_peak_celsius", Json::Num(*base_peak_celsius)),
                ]),
            )]),
        }
    }

    pub(crate) fn from_json(j: &Json) -> Result<ChipKind, String> {
        if let Some(id) = j.get("config") {
            let s = id.as_str().ok_or("chip config is not a string")?;
            return Ok(ChipKind::Config(s.parse()?));
        }
        if let Some(c) = j.get("custom") {
            let mesh_side = c.req_u64("mesh_side")? as usize;
            let tile_weights = c
                .req_array("tile_weights")?
                .iter()
                .map(|v| v.as_f64().ok_or("tile weight is not a finite number"))
                .collect::<Result<Vec<f64>, _>>()?;
            return Ok(ChipKind::Custom {
                mesh_side,
                tile_weights,
                base_peak_celsius: c.req_f64("base_peak_celsius")?,
            });
        }
        Err("chip must be {\"config\": \"A\"} or {\"custom\": {...}}".into())
    }

    pub(crate) fn validate(&self) -> Result<(), String> {
        if let ChipKind::Custom {
            mesh_side,
            tile_weights,
            base_peak_celsius,
        } = self
        {
            if !(2..=64).contains(mesh_side) {
                return Err(format!("custom mesh_side {mesh_side} outside 2..=64"));
            }
            if tile_weights.len() != mesh_side * mesh_side {
                return Err(format!(
                    "custom chip needs {} tile weights, got {}",
                    mesh_side * mesh_side,
                    tile_weights.len()
                ));
            }
            if tile_weights.iter().any(|&w| !w.is_finite() || w <= 0.0) {
                return Err("custom tile weights must be positive and finite".into());
            }
            if !(*base_peak_celsius > 45.0 && *base_peak_celsius < 200.0) {
                return Err(format!(
                    "custom base peak {base_peak_celsius} °C outside the calibratable range"
                ));
            }
        }
        Ok(())
    }
}

/// What the chip executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// The paper's LDPC-decoder workload (drives the thermal co-simulation).
    Ldpc,
    /// A synthetic open-loop traffic pattern on the bare NoC (no thermal
    /// model; measures delivery and latency).
    Traffic {
        /// Destination pattern.
        pattern: TrafficPattern,
        /// Injection rate, packets per node per cycle (0..=1).
        rate: f64,
        /// Packet length in flits.
        packet_len: u32,
        /// Injection cycles to simulate.
        cycles: u64,
    },
}

impl Workload {
    /// Short display label (`"ldpc"`, `"traffic:uniform"`).
    pub fn label(&self) -> String {
        match self {
            Workload::Ldpc => "ldpc".to_string(),
            Workload::Traffic { pattern, .. } => format!("traffic:{}", pattern_name(pattern)),
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        match self {
            Workload::Ldpc => Json::object(vec![("kind", Json::str("ldpc"))]),
            Workload::Traffic {
                pattern,
                rate,
                packet_len,
                cycles,
            } => Json::object(vec![
                ("kind", Json::str("traffic")),
                ("pattern", pattern_to_json(pattern)),
                ("rate", Json::Num(*rate)),
                ("packet_len", Json::int(u64::from(*packet_len))),
                ("cycles", Json::int(*cycles)),
            ]),
        }
    }

    pub(crate) fn from_json(j: &Json) -> Result<Workload, String> {
        match j.req_str("kind")? {
            "ldpc" => Ok(Workload::Ldpc),
            "traffic" => Ok(Workload::Traffic {
                pattern: pattern_from_json(j.req("pattern")?)?,
                rate: j.req_f64("rate")?,
                packet_len: j.req_u64("packet_len")? as u32,
                cycles: j.req_u64("cycles")?,
            }),
            other => Err(format!("unknown workload kind {other:?}")),
        }
    }

    pub(crate) fn validate(&self) -> Result<(), String> {
        if let Workload::Traffic {
            pattern,
            rate,
            packet_len,
            cycles,
        } = self
        {
            if !(*rate > 0.0 && *rate <= 1.0) {
                return Err(format!("traffic rate {rate} outside (0, 1]"));
            }
            if *packet_len == 0 {
                return Err("packet_len must be >= 1".into());
            }
            if *cycles == 0 {
                return Err("traffic cycles must be >= 1".into());
            }
            if let TrafficPattern::Hotspot { nodes, fraction } = pattern {
                if nodes.is_empty() {
                    return Err("hotspot pattern needs at least one node".into());
                }
                if !(0.0..=1.0).contains(fraction) {
                    return Err(format!("hotspot fraction {fraction} outside [0, 1]"));
                }
            }
        }
        Ok(())
    }
}

/// One scheduled fault event of a scenario's fault plan. Events fire at
/// the start of the named cycle, before any flit moves that cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEventSpec {
    /// Cycle the event fires.
    pub at: u64,
    /// What fails (or comes back).
    pub kind: FaultKindSpec,
}

/// The component a [`FaultEventSpec`] disables or repairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKindSpec {
    /// Disable the router (and every link touching it).
    FailRouter(Coord),
    /// Re-enable a previously failed router.
    RepairRouter(Coord),
    /// Disable the bidirectional link between two adjacent routers.
    FailLink(Coord, Coord),
    /// Re-enable a previously failed link.
    RepairLink(Coord, Coord),
}

fn coord_to_json(c: Coord) -> Json {
    Json::Array(vec![Json::int(u64::from(c.x)), Json::int(u64::from(c.y))])
}

fn coord_from_json(j: &Json) -> Result<Coord, String> {
    let pair = j
        .as_array()
        .ok_or("fault coordinate is not an [x, y] pair")?;
    if pair.len() != 2 {
        return Err("fault coordinate is not an [x, y] pair".to_string());
    }
    let axis = |v: &Json| {
        v.as_u64()
            .filter(|&c| c < 256)
            .ok_or("fault coordinate component is not an integer in 0..256".to_string())
    };
    Ok(Coord::new(axis(&pair[0])? as u8, axis(&pair[1])? as u8))
}

impl FaultEventSpec {
    pub(crate) fn to_json(self) -> Json {
        let mut fields = vec![("at", Json::int(self.at))];
        match self.kind {
            FaultKindSpec::FailRouter(c) => fields.push(("fail_router", coord_to_json(c))),
            FaultKindSpec::RepairRouter(c) => fields.push(("repair_router", coord_to_json(c))),
            FaultKindSpec::FailLink(a, b) => fields.push((
                "fail_link",
                Json::Array(vec![coord_to_json(a), coord_to_json(b)]),
            )),
            FaultKindSpec::RepairLink(a, b) => fields.push((
                "repair_link",
                Json::Array(vec![coord_to_json(a), coord_to_json(b)]),
            )),
        }
        Json::object(fields)
    }

    pub(crate) fn from_json(j: &Json) -> Result<FaultEventSpec, String> {
        let at = j.req_u64("at")?;
        let link = |j: &Json| -> Result<(Coord, Coord), String> {
            let pair = j.as_array().ok_or("fault link is not an [a, b] pair")?;
            if pair.len() != 2 {
                return Err("fault link is not an [a, b] pair".to_string());
            }
            Ok((coord_from_json(&pair[0])?, coord_from_json(&pair[1])?))
        };
        let kind = if let Some(c) = j.get("fail_router") {
            FaultKindSpec::FailRouter(coord_from_json(c)?)
        } else if let Some(c) = j.get("repair_router") {
            FaultKindSpec::RepairRouter(coord_from_json(c)?)
        } else if let Some(l) = j.get("fail_link") {
            let (a, b) = link(l)?;
            FaultKindSpec::FailLink(a, b)
        } else if let Some(l) = j.get("repair_link") {
            let (a, b) = link(l)?;
            FaultKindSpec::RepairLink(a, b)
        } else {
            return Err(
                "fault event needs one of fail_router / repair_router / fail_link / repair_link"
                    .into(),
            );
        };
        Ok(FaultEventSpec { at, kind })
    }
}

/// Builds the runtime [`FaultPlan`] a list of fault events describes.
pub fn fault_plan_of(events: &[FaultEventSpec]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for e in events {
        plan = match e.kind {
            FaultKindSpec::FailRouter(c) => plan.fail_router(e.at, c),
            FaultKindSpec::RepairRouter(c) => plan.repair_router(e.at, c),
            FaultKindSpec::FailLink(a, b) => plan.fail_link(e.at, a, b),
            FaultKindSpec::RepairLink(a, b) => plan.repair_link(e.at, a, b),
        };
    }
    plan
}

/// The migration policy applied while the workload runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Static placement, no migration (the Figure 1 base).
    Baseline,
    /// Migrate every `period_blocks` decoded blocks under a fixed scheme.
    Periodic {
        /// The migration function.
        scheme: MigrationScheme,
        /// Period in decoded blocks.
        period_blocks: u64,
    },
    /// Re-select the best scheme at every migration point (§2.3's runtime
    /// re-programmable migration unit).
    Adaptive {
        /// Period in decoded blocks.
        period_blocks: u64,
    },
}

impl Policy {
    /// Short display label (`"baseline"`, `"xy-shift/p1"`, `"adaptive/p4"`).
    pub fn label(&self) -> String {
        match self {
            Policy::Baseline => "baseline".to_string(),
            Policy::Periodic {
                scheme,
                period_blocks,
            } => format!("{}/p{period_blocks}", scheme_name(*scheme)),
            Policy::Adaptive { period_blocks } => format!("adaptive/p{period_blocks}"),
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        match self {
            Policy::Baseline => Json::object(vec![("kind", Json::str("baseline"))]),
            Policy::Periodic {
                scheme,
                period_blocks,
            } => Json::object(vec![
                ("kind", Json::str("periodic")),
                ("scheme", Json::Str(scheme_name(*scheme))),
                ("period_blocks", Json::int(*period_blocks)),
            ]),
            Policy::Adaptive { period_blocks } => Json::object(vec![
                ("kind", Json::str("adaptive")),
                ("period_blocks", Json::int(*period_blocks)),
            ]),
        }
    }

    pub(crate) fn from_json(j: &Json) -> Result<Policy, String> {
        match j.req_str("kind")? {
            "baseline" => Ok(Policy::Baseline),
            "periodic" => Ok(Policy::Periodic {
                scheme: scheme_from_name(j.req_str("scheme")?)?,
                period_blocks: j.req_u64("period_blocks")?,
            }),
            "adaptive" => Ok(Policy::Adaptive {
                period_blocks: j.req_u64("period_blocks")?,
            }),
            other => Err(format!("unknown policy kind {other:?}")),
        }
    }
}

/// What the run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Full transient thermal co-simulation (default).
    Cosim,
    /// Migration-plan cost analysis only (§2.1–2.2): phases, stall time,
    /// flit-hops, energy. Requires a periodic policy; skips the transient
    /// solve.
    PlanCost,
}

impl Mode {
    pub(crate) fn name(self) -> &'static str {
        match self {
            Mode::Cosim => "cosim",
            Mode::PlanCost => "plan-cost",
        }
    }

    pub(crate) fn from_name(s: &str) -> Result<Mode, String> {
        match s {
            "cosim" => Ok(Mode::Cosim),
            "plan-cost" => Ok(Mode::PlanCost),
            other => Err(format!("unknown mode {other:?}")),
        }
    }
}

/// A declarative description of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (unique within a campaign).
    pub name: String,
    /// The chip.
    pub chip: ChipKind,
    /// The workload.
    pub workload: Workload,
    /// The migration policy.
    pub policy: Policy,
    /// What to measure.
    pub mode: Mode,
    /// Fidelity level (paper-scale or seconds-fast).
    pub fidelity: Fidelity,
    /// Optional horizon override: total simulated time in milliseconds
    /// (warm-up is half). `None` uses the fidelity default.
    pub sim_time_ms: Option<f64>,
    /// Scheduled router/link failures and repairs applied while the
    /// workload runs (traffic workloads only; empty = healthy fabric).
    pub faults: Vec<FaultEventSpec>,
    /// RNG seed (drives traffic generation; campaign expansion derives it
    /// from the campaign seed and job index).
    pub seed: u64,
}

impl ScenarioSpec {
    /// Serializes to canonical JSON.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::Str(self.name.clone())),
            ("chip", self.chip.to_json()),
            ("workload", self.workload.to_json()),
            ("policy", self.policy.to_json()),
            ("mode", Json::str(self.mode.name())),
            ("fidelity", Json::str(fidelity_name(self.fidelity))),
        ];
        if let Some(ms) = self.sim_time_ms {
            fields.push(("sim_time_ms", Json::Num(ms)));
        }
        if !self.faults.is_empty() {
            // Emitted only when present, so healthy specs (and their
            // campaign fingerprints) keep their exact pre-fault JSON.
            fields.push((
                "faults",
                Json::Array(self.faults.iter().map(|e| e.to_json()).collect()),
            ));
        }
        fields.push(("seed", Json::int(self.seed)));
        Json::object(fields)
    }

    /// Deserializes from the JSON produced by [`ScenarioSpec::to_json`]
    /// (or hand-written to the same shape) and validates.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema or semantic violation.
    pub fn from_json(j: &Json) -> Result<ScenarioSpec, String> {
        let spec = ScenarioSpec {
            name: j.req_str("name")?.to_string(),
            chip: ChipKind::from_json(j.req("chip")?)?,
            workload: Workload::from_json(j.req("workload")?)?,
            policy: Policy::from_json(j.req("policy")?)?,
            mode: Mode::from_name(j.req_str("mode")?)?,
            fidelity: fidelity_from_name(j.req_str("fidelity")?)?,
            sim_time_ms: match j.get("sim_time_ms") {
                None => None,
                Some(v) => Some(v.as_f64().ok_or("sim_time_ms is not a finite number")?),
            },
            faults: match j.get("faults") {
                None => Vec::new(),
                Some(v) => v
                    .as_array()
                    .ok_or("faults is not an array")?
                    .iter()
                    .map(FaultEventSpec::from_json)
                    .collect::<Result<_, _>>()?,
            },
            seed: j.req_u64("seed")?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax and schema violations.
    pub fn parse(text: &str) -> Result<ScenarioSpec, String> {
        ScenarioSpec::from_json(&Json::parse(text)?)
    }

    /// Semantic validation beyond mere JSON shape.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name is empty".into());
        }
        self.chip.validate()?;
        self.workload.validate()?;
        match &self.policy {
            Policy::Periodic { period_blocks, .. } | Policy::Adaptive { period_blocks } => {
                if *period_blocks == 0 {
                    return Err("period_blocks must be >= 1".into());
                }
            }
            Policy::Baseline => {}
        }
        if let Workload::Traffic { pattern, .. } = &self.workload {
            if self.policy != Policy::Baseline {
                return Err("traffic workloads only support the baseline policy".into());
            }
            if self.mode != Mode::Cosim {
                return Err("traffic workloads only support cosim mode".into());
            }
            if let TrafficPattern::Hotspot { nodes, .. } = pattern {
                let side = self.chip.mesh_side();
                for c in nodes {
                    if usize::from(c.x) >= side || usize::from(c.y) >= side {
                        return Err(format!("hotspot node {c} outside the {side}x{side} mesh"));
                    }
                }
            }
        }
        if self.mode == Mode::PlanCost && !matches!(self.policy, Policy::Periodic { .. }) {
            return Err("plan-cost mode requires a periodic policy".into());
        }
        if !self.faults.is_empty() {
            if !matches!(self.workload, Workload::Traffic { .. }) {
                return Err(
                    "fault plans only apply to traffic workloads (the ldpc co-simulation \
                     models a healthy fabric)"
                        .into(),
                );
            }
            let side = self.chip.mesh_side();
            let mesh = Mesh::square(side).map_err(|e| e.to_string())?;
            fault_plan_of(&self.faults)
                .validate(mesh)
                .map_err(|e| e.to_string())?;
        }
        if let Some(ms) = self.sim_time_ms {
            if !(ms > 0.0 && ms <= 10_000.0) {
                return Err(format!("sim_time_ms {ms} outside (0, 10000]"));
            }
        }
        if self.seed > (1 << 53) {
            return Err("seed exceeds 2^53 (not exactly representable in JSON)".into());
        }
        Ok(())
    }

    /// FNV-1a hash of the canonical spec JSON, as 16 lowercase hex digits —
    /// the same construction as [`crate::campaign::CampaignSpec::fingerprint`],
    /// so two hosts agree on a scenario's identity iff they agree on its
    /// canonical bytes. The serving layer keys its result cache on
    /// `(fingerprint, seed)`.
    pub fn fingerprint(&self) -> String {
        let text = self.to_json().to_string();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

/// Canonical name of a fidelity level.
pub fn fidelity_name(f: Fidelity) -> &'static str {
    match f {
        Fidelity::Full => "full",
        Fidelity::Quick => "quick",
    }
}

/// Parses a fidelity name.
///
/// # Errors
///
/// Rejects anything but `"full"` / `"quick"`.
pub fn fidelity_from_name(s: &str) -> Result<Fidelity, String> {
    match s {
        "full" => Ok(Fidelity::Full),
        "quick" => Ok(Fidelity::Quick),
        other => Err(format!("unknown fidelity {other:?}")),
    }
}

/// Canonical (spec-file) name of a migration scheme.
pub fn scheme_name(s: MigrationScheme) -> String {
    match s {
        MigrationScheme::Rotation => "rotation".to_string(),
        MigrationScheme::XMirror => "x-mirror".to_string(),
        MigrationScheme::XYMirror => "xy-mirror".to_string(),
        MigrationScheme::XTranslation { offset: 1 } => "right-shift".to_string(),
        MigrationScheme::XTranslation { offset } => format!("x-shift-{offset}"),
        MigrationScheme::YTranslation { offset } => format!("y-shift-{offset}"),
        MigrationScheme::XYShift => "xy-shift".to_string(),
    }
}

/// Parses a canonical scheme name ([`scheme_name`]'s inverse).
///
/// # Errors
///
/// Returns a description of the unknown name.
pub fn scheme_from_name(s: &str) -> Result<MigrationScheme, String> {
    match s {
        "rotation" => Ok(MigrationScheme::Rotation),
        "x-mirror" => Ok(MigrationScheme::XMirror),
        "xy-mirror" => Ok(MigrationScheme::XYMirror),
        "right-shift" => Ok(MigrationScheme::XTranslation { offset: 1 }),
        "xy-shift" => Ok(MigrationScheme::XYShift),
        other => {
            let parse_offset =
                |prefix: &str| -> Option<u8> { other.strip_prefix(prefix)?.parse::<u8>().ok() };
            if let Some(k) = parse_offset("x-shift-") {
                return Ok(MigrationScheme::XTranslation { offset: k });
            }
            if let Some(k) = parse_offset("y-shift-") {
                return Ok(MigrationScheme::YTranslation { offset: k });
            }
            Err(format!("unknown migration scheme {other:?}"))
        }
    }
}

/// Canonical name of a traffic pattern.
pub fn pattern_name(p: &TrafficPattern) -> &'static str {
    match p {
        TrafficPattern::UniformRandom => "uniform",
        TrafficPattern::Transpose => "transpose",
        TrafficPattern::BitComplement => "bit-complement",
        TrafficPattern::Tornado => "tornado",
        TrafficPattern::Neighbor => "neighbor",
        TrafficPattern::Hotspot { .. } => "hotspot",
    }
}

fn pattern_to_json(p: &TrafficPattern) -> Json {
    match p {
        TrafficPattern::Hotspot { nodes, fraction } => Json::object(vec![
            ("kind", Json::str("hotspot")),
            (
                "nodes",
                Json::Array(
                    nodes
                        .iter()
                        .map(|c| {
                            Json::Array(vec![Json::int(u64::from(c.x)), Json::int(u64::from(c.y))])
                        })
                        .collect(),
                ),
            ),
            ("fraction", Json::Num(*fraction)),
        ]),
        simple => Json::str(pattern_name(simple)),
    }
}

fn pattern_from_json(j: &Json) -> Result<TrafficPattern, String> {
    if let Some(name) = j.as_str() {
        return match name {
            "uniform" => Ok(TrafficPattern::UniformRandom),
            "transpose" => Ok(TrafficPattern::Transpose),
            "bit-complement" => Ok(TrafficPattern::BitComplement),
            "tornado" => Ok(TrafficPattern::Tornado),
            "neighbor" => Ok(TrafficPattern::Neighbor),
            other => Err(format!("unknown traffic pattern {other:?}")),
        };
    }
    if j.get("kind").and_then(Json::as_str) == Some("hotspot") {
        let nodes = j
            .req_array("nodes")?
            .iter()
            .map(|n| {
                let pair = n.as_array().ok_or("hotspot node is not an [x, y] pair")?;
                if pair.len() != 2 {
                    return Err("hotspot node is not an [x, y] pair".to_string());
                }
                let coord = |v: &Json| {
                    v.as_u64()
                        .filter(|&c| c < 256)
                        .ok_or("hotspot coordinate is not an integer in 0..256".to_string())
                };
                Ok(Coord::new(coord(&pair[0])? as u8, coord(&pair[1])? as u8))
            })
            .collect::<Result<Vec<Coord>, String>>()?;
        return Ok(TrafficPattern::Hotspot {
            nodes,
            fraction: j.req_f64("fraction")?,
        });
    }
    Err("pattern must be a name string or a hotspot object".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "t0".to_string(),
            chip: ChipKind::Config(ChipConfigId::A),
            workload: Workload::Traffic {
                pattern: TrafficPattern::Hotspot {
                    nodes: vec![Coord::new(1, 2)],
                    fraction: 0.4,
                },
                rate: 0.1,
                packet_len: 4,
                cycles: 500,
            },
            policy: Policy::Baseline,
            mode: Mode::Cosim,
            fidelity: Fidelity::Quick,
            sim_time_ms: None,
            faults: vec![],
            seed: 7,
        }
    }

    fn cosim_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "c0".to_string(),
            chip: ChipKind::Config(ChipConfigId::E),
            workload: Workload::Ldpc,
            policy: Policy::Periodic {
                scheme: MigrationScheme::XYShift,
                period_blocks: 24,
            },
            mode: Mode::Cosim,
            fidelity: Fidelity::Quick,
            sim_time_ms: Some(6.0),
            faults: vec![],
            seed: 1,
        }
    }

    #[test]
    fn spec_json_roundtrip_is_byte_stable() {
        for spec in [traffic_spec(), cosim_spec()] {
            let text = spec.to_json().to_string();
            let back = ScenarioSpec::parse(&text).expect("parses");
            assert_eq!(back, spec);
            assert_eq!(back.to_json().to_string(), text);
        }
    }

    #[test]
    fn custom_chip_roundtrip() {
        let spec = ScenarioSpec {
            name: "custom".to_string(),
            chip: ChipKind::Custom {
                mesh_side: 3,
                tile_weights: vec![1.0, 1.0, 1.0, 1.0, 2.5, 1.0, 1.0, 1.0, 1.0],
                base_peak_celsius: 80.0,
            },
            workload: Workload::Ldpc,
            policy: Policy::Baseline,
            mode: Mode::Cosim,
            fidelity: Fidelity::Quick,
            sim_time_ms: None,
            faults: vec![],
            seed: 0,
        };
        let text = spec.to_json().to_string();
        assert_eq!(ScenarioSpec::parse(&text).expect("parses"), spec);
    }

    #[test]
    fn scheme_names_roundtrip() {
        let schemes = [
            MigrationScheme::Rotation,
            MigrationScheme::XMirror,
            MigrationScheme::XYMirror,
            MigrationScheme::XTranslation { offset: 1 },
            MigrationScheme::XTranslation { offset: 3 },
            MigrationScheme::YTranslation { offset: 2 },
            MigrationScheme::XYShift,
        ];
        for s in schemes {
            assert_eq!(scheme_from_name(&scheme_name(s)).expect("roundtrip"), s);
        }
        assert!(scheme_from_name("spin").is_err());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut bad = traffic_spec();
        bad.policy = Policy::Periodic {
            scheme: MigrationScheme::Rotation,
            period_blocks: 1,
        };
        assert!(bad.validate().is_err(), "traffic + migration");

        let mut bad = cosim_spec();
        bad.mode = Mode::PlanCost;
        bad.policy = Policy::Baseline;
        assert!(bad.validate().is_err(), "plan-cost without scheme");

        let mut bad = cosim_spec();
        bad.policy = Policy::Periodic {
            scheme: MigrationScheme::XYShift,
            period_blocks: 0,
        };
        assert!(bad.validate().is_err(), "zero period");

        let mut bad = traffic_spec();
        bad.workload = Workload::Traffic {
            pattern: TrafficPattern::UniformRandom,
            rate: 1.5,
            packet_len: 4,
            cycles: 100,
        };
        assert!(bad.validate().is_err(), "rate > 1");

        let mut bad = traffic_spec();
        bad.workload = Workload::Traffic {
            pattern: TrafficPattern::Hotspot {
                nodes: vec![Coord::new(9, 9)],
                fraction: 0.5,
            },
            rate: 0.1,
            packet_len: 4,
            cycles: 100,
        };
        assert!(bad.validate().is_err(), "hotspot off-mesh");
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(traffic_spec().chip.label(), "A");
        assert_eq!(traffic_spec().workload.label(), "traffic:hotspot");
        assert_eq!(cosim_spec().policy.label(), "xy-shift/p24");
        assert_eq!(Policy::Baseline.label(), "baseline");
    }
}
