//! # hotnoc-scenario — declarative experiments and the campaign engine
//!
//! Everything the paper reproduction can simulate, expressible without
//! writing Rust:
//!
//! * [`spec::ScenarioSpec`] describes **one run** — a chip (configuration
//!   A–E or a custom mesh), a workload (LDPC decode or synthetic
//!   [`hotnoc_noc::TrafficPattern`] traffic), a migration policy (baseline
//!   / periodic / adaptive), a measurement mode, fidelity, horizon and
//!   seed. Specs round-trip through canonical JSON ([`json`]).
//! * [`campaign::CampaignSpec`] sweeps cartesian axes (chips x workloads x
//!   policies x schemes x periods x seeds) and expands them into a
//!   deterministic, stably-ordered job list with per-job seeds derived
//!   from the campaign seed and job index.
//! * [`runner::run_campaign`] executes jobs in parallel on `minipool`
//!   (respecting `HOTNOC_THREADS`), journals every completed job to an
//!   on-disk manifest so a killed campaign resumes without recomputation,
//!   and emits a `CAMPAIGN_<name>.json` artifact that is **byte-identical
//!   at any thread count** plus a human summary table.
//! * [`builtin`] names the paper's exhibits (Figure 1, the period sweep,
//!   migration cost, adaptive comparison, the latency-vs-load saturation
//!   curve) as ready-made campaigns; [`exhibits`] projects campaign
//!   results back onto the legacy report tables (and renders the
//!   latency-load curve).
//! * [`stats`] collapses records across the seed axis into per-group
//!   summary statistics (mean / std-dev / min / max / median / p95 /
//!   t-based 95% CI) and serializes them as the
//!   `CAMPAIGN_<name>.aggregate.json` artifact
//!   (`hotnoc-campaign-aggregate-v1`); [`diff`] aligns two campaign
//!   artifacts by group and reports ratio-of-medians with CI-overlap
//!   verdicts — the `hotnoc campaign diff` A/B engine.
//! * [`shard`] distributes a campaign across processes and hosts:
//!   [`shard::run_campaign_shard`] executes a deterministic modulo stripe
//!   of the expansion (same per-job seeds as an unsharded run, its own
//!   kill/resume-safe journal) and emits a `hotnoc-campaign-shard-v1`
//!   artifact; [`shard::merge_shards`] validates a shard set and
//!   reassembles the exact single-host `CAMPAIGN_<name>.json` +
//!   `.aggregate.json` bytes.
//!
//! The `hotnoc` CLI (`crates/cli`) fronts all of this from the shell.
//! The normative schema reference for every emitted artifact lives in
//! `docs/ARTIFACTS.md` at the repository root.
//!
//! ```
//! use hotnoc_scenario::builtin::builtin;
//! use hotnoc_scenario::runner::{run_campaign, RunnerOptions};
//! use hotnoc_core::configs::Fidelity;
//!
//! let spec = builtin("smoke", Fidelity::Quick).expect("known builtin");
//! assert!(spec.expand().len() >= 4);
//! # let dir = std::env::temp_dir().join(format!("hotnoc-doc-{}", std::process::id()));
//! # let mut spec = spec;
//! # spec.workloads.truncate(2); // keep the doctest fast: traffic-only
//! # spec.workloads.remove(0);
//! # spec.name = "doc-smoke".into();
//! let run = run_campaign(&spec, &RunnerOptions {
//!     threads: 2,
//!     out_dir: dir.clone(),
//!     ..RunnerOptions::default()
//! })?;
//! assert!(run.is_complete());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), hotnoc_scenario::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod campaign;
pub mod diff;
pub mod error;
pub mod exhibits;
pub mod json;
pub mod outcome;
pub mod run;
pub mod runner;
pub mod shard;
pub mod spec;
pub mod stats;
pub mod tracefile;

pub use campaign::{CampaignSpec, PolicyAxis};
pub use diff::{diff_campaigns, DiffReport, Verdict};
pub use error::ScenarioError;
pub use outcome::ScenarioOutcome;
pub use run::{run_scenario, run_scenario_traced};
pub use runner::{run_campaign, CampaignRun, JobRecord, RunnerOptions};
pub use shard::{merge_shards, run_campaign_shard, MergedCampaign, Shard, ShardDoc, ShardRun};
pub use spec::{ChipKind, Mode, Policy, ScenarioSpec, Workload};
pub use stats::{GroupAggregate, GroupKey, SummaryStats};
pub use tracefile::TraceDoc;
