//! Executes one [`ScenarioSpec`] and produces a [`ScenarioOutcome`].
//!
//! Every execution path is deterministic: LDPC co-simulations contain no
//! randomness beyond the code-construction seed baked into the chip spec,
//! and traffic scenarios seed their generator from the spec. Combined with
//! the NoC's thread-count-invariant parallel sweep, the same spec produces
//! bit-identical metrics on any machine at any `HOTNOC_THREADS`.

use crate::error::ScenarioError;
use crate::outcome::{
    AdaptiveMetrics, CosimMetrics, PlanCostMetrics, ScenarioOutcome, TrafficMetrics,
};
use crate::spec::{fidelity_name, ChipKind, Mode, Policy, ScenarioSpec, Workload};
use hotnoc_core::adaptive::run_adaptive_cosim_traced;
use hotnoc_core::configs::Fidelity;
use hotnoc_core::cosim::run_cosim_traced;
use hotnoc_core::{CalibratedPower, Chip, CosimParams};
use hotnoc_noc::{Mesh, Network, NocConfig, TrafficGenerator};
use hotnoc_obs::{TraceEvent, TraceSink, VecSink};
use hotnoc_reconfig::phases::PhaseCostModel;
use hotnoc_reconfig::{MigrationPlan, MigrationScheme, StateSpec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cycles the post-run drain of a traffic scenario may take, per injection
/// cycle (plus a fixed floor). Generous: drain failure is a reportable
/// outcome (`drained: false`), not an error.
const DRAIN_BUDGET_PER_CYCLE: u64 = 50;
const DRAIN_BUDGET_FLOOR: u64 = 50_000;

/// The co-simulation parameters implied by a spec: fidelity default, then
/// the policy's period and the optional horizon override.
pub fn params_of(spec: &ScenarioSpec) -> CosimParams {
    let mut p = match spec.fidelity {
        Fidelity::Full => CosimParams::default(),
        Fidelity::Quick => CosimParams::quick(),
    };
    match spec.policy {
        Policy::Periodic { period_blocks, .. } | Policy::Adaptive { period_blocks } => {
            p.period_blocks = period_blocks;
        }
        Policy::Baseline => {}
    }
    if let Some(ms) = spec.sim_time_ms {
        p.sim_time = ms * 1e-3;
        p.warmup = p.sim_time / 2.0;
    }
    p
}

/// Runs one scenario to completion.
///
/// # Errors
///
/// Propagates spec validation failures and substrate (chip construction,
/// calibration, thermal, NoC) errors.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioOutcome, ScenarioError> {
    spec.validate().map_err(ScenarioError::Spec)?;
    dispatch(spec, None)
}

/// Runs one scenario and also returns its deterministic event trace,
/// bracketed by [`TraceEvent::JobStart`] / [`TraceEvent::JobFinish`]. The
/// simulation is identical to [`run_scenario`] — tracing is observation
/// only.
///
/// # Errors
///
/// As [`run_scenario`].
pub fn run_scenario_traced(
    spec: &ScenarioSpec,
) -> Result<(ScenarioOutcome, Vec<TraceEvent>), ScenarioError> {
    run_scenario_traced_as_job(spec, 0)
}

/// [`run_scenario_traced`] for a campaign job: `job` is the job's index in
/// the stably-ordered expanded job list and lands in the bracket events.
/// `JobFinish` is keyed by the highest cycle any event reached.
///
/// # Errors
///
/// As [`run_scenario`].
pub fn run_scenario_traced_as_job(
    spec: &ScenarioSpec,
    job: u64,
) -> Result<(ScenarioOutcome, Vec<TraceEvent>), ScenarioError> {
    spec.validate().map_err(ScenarioError::Spec)?;
    let mut sink = VecSink::new();
    sink.record(TraceEvent::JobStart {
        cycle: 0,
        job,
        name: spec.name.clone(),
    });
    let outcome = dispatch(spec, Some(&mut sink))?;
    let mut events = sink.drain();
    let end = events.iter().map(TraceEvent::cycle).max().unwrap_or(0);
    events.push(TraceEvent::JobFinish {
        cycle: end,
        job,
        name: spec.name.clone(),
    });
    Ok((outcome, events))
}

fn dispatch(
    spec: &ScenarioSpec,
    sink: Option<&mut dyn TraceSink>,
) -> Result<ScenarioOutcome, ScenarioError> {
    match &spec.workload {
        Workload::Ldpc => run_ldpc(spec, sink),
        Workload::Traffic {
            pattern,
            rate,
            packet_len,
            cycles,
        } => run_traffic(spec, pattern.clone(), *rate, *packet_len, *cycles, sink),
    }
}

/// Upper bound on cached calibrated chips; reaching it clears the cache
/// (campaigns reuse a handful of chips, so eviction is a non-event).
const CHIP_CACHE_CAP: usize = 32;

/// Builds and calibrates the chip a scenario runs on, memoized process-wide
/// by canonical chip JSON + fidelity. Building a chip is expensive (a full
/// cycle-accurate NoC block simulation plus a bisection of leakage-coupled
/// steady-state solves) and campaigns run many jobs against the same chip —
/// e.g. `fig1` runs five schemes per configuration. Construction happens
/// outside the lock so distinct chips calibrate in parallel; a race on one
/// key wastes a duplicate build but stays deterministic (calibration is a
/// pure function of the spec, so both results are identical).
fn calibrated_chip(
    kind: &ChipKind,
    fidelity: Fidelity,
) -> Result<Arc<(Chip, CalibratedPower)>, ScenarioError> {
    type Cache = Mutex<HashMap<String, Arc<(Chip, CalibratedPower)>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = format!("{}|{}", fidelity_name(fidelity), kind.to_json());
    if let Some(hit) = cache.lock().expect("chip cache lock").get(&key) {
        return Ok(Arc::clone(hit));
    }
    let mut chip = Chip::build(kind.to_chip_spec(fidelity))?;
    let cal = chip.calibrate()?;
    let entry = Arc::new((chip, cal));
    let mut map = cache.lock().expect("chip cache lock");
    if map.len() >= CHIP_CACHE_CAP {
        map.clear();
    }
    Ok(Arc::clone(map.entry(key).or_insert(entry)))
}

fn run_ldpc(
    spec: &ScenarioSpec,
    sink: Option<&mut dyn TraceSink>,
) -> Result<ScenarioOutcome, ScenarioError> {
    let params = params_of(spec);
    let cached = calibrated_chip(&spec.chip, spec.fidelity)?;
    let (chip, cal) = (&cached.0, &cached.1);
    match (&spec.policy, spec.mode) {
        (Policy::Periodic { scheme, .. }, Mode::PlanCost) => Ok(ScenarioOutcome::PlanCost(
            plan_cost(chip, cal, *scheme, &params),
        )),
        (Policy::Baseline, _) => {
            let r = run_cosim_traced(chip, cal, None, &params, sink)?;
            Ok(ScenarioOutcome::Cosim(CosimMetrics::of(&r)))
        }
        (Policy::Periodic { scheme, .. }, Mode::Cosim) => {
            let r = run_cosim_traced(chip, cal, Some(*scheme), &params, sink)?;
            Ok(ScenarioOutcome::Cosim(CosimMetrics::of(&r)))
        }
        (Policy::Adaptive { .. }, _) => {
            let r = run_adaptive_cosim_traced(chip, cal, &params, sink)?;
            Ok(ScenarioOutcome::Adaptive(AdaptiveMetrics {
                base_peak: r.base_peak,
                peak: r.peak,
                reduction: r.reduction,
                throughput_penalty: r.throughput_penalty,
                schedule: r.schedule,
            }))
        }
    }
}

/// One migration's §2.1–2.2 cost under `scheme` (no transient solve).
fn plan_cost(
    chip: &Chip,
    cal: &CalibratedPower,
    scheme: MigrationScheme,
    params: &CosimParams,
) -> PlanCostMetrics {
    let plan = MigrationPlan::plan(
        chip.mesh(),
        scheme,
        &StateSpec::default(),
        &PhaseCostModel::default(),
    );
    let stall_s = plan.total_cycles() as f64 / chip.noc_config().clock_hz;
    let energy = plan.total_flit_hops() as f64 * params.e_flit_hop
        + plan
            .per_tile_endpoint_flits(chip.mesh())
            .iter()
            .sum::<u64>() as f64
            * params.e_convert_flit
        + stall_s * params.stall_power_fraction * cal.total_dynamic;
    PlanCostMetrics {
        phases: plan.num_phases() as u64,
        stall_us: stall_s * 1e6,
        flit_hops: plan.total_flit_hops(),
        energy_uj: energy * 1e6,
        moves: plan.total_moves() as u64,
    }
}

fn run_traffic(
    spec: &ScenarioSpec,
    pattern: hotnoc_noc::TrafficPattern,
    rate: f64,
    packet_len: u32,
    cycles: u64,
    sink: Option<&mut dyn TraceSink>,
) -> Result<ScenarioOutcome, ScenarioError> {
    let mesh = Mesh::square(spec.chip.mesh_side())?;
    let mut net = Network::new(mesh, NocConfig::default());
    if sink.is_some() {
        // The network owns its sink for the duration of the run; events are
        // handed back to the caller's sink afterwards.
        net.set_trace_sink(Box::new(VecSink::new()));
    }
    if !spec.faults.is_empty() {
        net.install_fault_plan(crate::spec::fault_plan_of(&spec.faults))?;
    }
    let mut gen = TrafficGenerator::new(mesh, pattern, rate, packet_len, spec.seed);
    let budget = cycles.saturating_mul(DRAIN_BUDGET_PER_CYCLE) + DRAIN_BUDGET_FLOOR;
    let (offered, drained) = gen.run(&mut net, cycles, budget);
    if let Some(s) = sink {
        let mut inner = net.take_trace_sink().expect("sink installed above");
        for ev in inner.drain() {
            s.record(ev);
        }
    }
    let stats = net.stats();
    Ok(ScenarioOutcome::Traffic(TrafficMetrics {
        offered,
        delivered: stats.packets_delivered,
        drained,
        mean_latency_cycles: stats.mean_latency().unwrap_or(0.0),
        p50_latency_cycles: stats.latency_quantile_upper(0.5).unwrap_or(0),
        p95_latency_cycles: stats.latency_quantile_upper(0.95).unwrap_or(0),
        max_latency_cycles: stats.max_packet_latency,
        flit_hops: stats.flit_hops,
        packets_dropped: stats.packets_dropped,
        flits_dropped: stats.flits_dropped,
        detour_hops: stats.detour_hops,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ChipKind;
    use hotnoc_core::configs::ChipConfigId;
    use hotnoc_noc::TrafficPattern;

    fn traffic_spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: format!("t{seed}"),
            chip: ChipKind::Config(ChipConfigId::A),
            workload: Workload::Traffic {
                pattern: TrafficPattern::UniformRandom,
                rate: 0.05,
                packet_len: 4,
                cycles: 400,
            },
            policy: Policy::Baseline,
            mode: Mode::Cosim,
            fidelity: Fidelity::Quick,
            sim_time_ms: None,
            faults: vec![],
            seed,
        }
    }

    #[test]
    fn traffic_scenario_delivers_and_is_deterministic() {
        let a = run_scenario(&traffic_spec(9)).unwrap();
        let b = run_scenario(&traffic_spec(9)).unwrap();
        assert_eq!(a, b);
        let ScenarioOutcome::Traffic(m) = &a else {
            panic!("expected traffic outcome");
        };
        assert!(m.drained);
        assert!(m.offered > 0);
        assert_eq!(m.delivered, m.offered);
        assert!(m.mean_latency_cycles > 0.0);
    }

    #[test]
    fn traced_traffic_run_brackets_and_matches_untraced() {
        use crate::spec::{FaultEventSpec, FaultKindSpec};
        use hotnoc_noc::Coord;
        let mut spec = traffic_spec(9);
        spec.faults = vec![
            FaultEventSpec {
                at: 100,
                kind: FaultKindSpec::FailRouter(Coord::new(1, 1)),
            },
            FaultEventSpec {
                at: 250,
                kind: FaultKindSpec::RepairRouter(Coord::new(1, 1)),
            },
        ];
        let plain = run_scenario(&spec).unwrap();
        let (traced, events) = run_scenario_traced(&spec).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the run");
        assert!(matches!(events.first(), Some(TraceEvent::JobStart { .. })));
        assert!(matches!(events.last(), Some(TraceEvent::JobFinish { .. })));
        let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count();
        assert_eq!(count("router_failed"), 1);
        assert_eq!(count("router_repaired"), 1);
        assert_eq!(count("fault_epoch"), 2);
        assert!(count("congestion") > 0, "traffic should register occupancy");
        let cycles: Vec<u64> = events.iter().map(TraceEvent::cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "order: {cycles:?}");
        // The traced run serializes to a valid hotnoc-trace-v1 document.
        let doc = crate::tracefile::TraceDoc::new(&spec.name, events);
        let back = crate::tracefile::TraceDoc::parse(&doc.to_jsonl()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn traffic_seed_changes_the_run() {
        let a = run_scenario(&traffic_spec(1)).unwrap();
        let b = run_scenario(&traffic_spec(2)).unwrap();
        assert_ne!(a, b, "different seeds should offer different traffic");
    }

    #[test]
    fn plan_cost_mode_matches_experiment_table() {
        let spec = ScenarioSpec {
            name: "cost".to_string(),
            chip: ChipKind::Config(ChipConfigId::A),
            workload: Workload::Ldpc,
            policy: Policy::Periodic {
                scheme: MigrationScheme::Rotation,
                period_blocks: 1,
            },
            mode: Mode::PlanCost,
            fidelity: Fidelity::Quick,
            sim_time_ms: None,
            faults: vec![],
            seed: 0,
        };
        let out = run_scenario(&spec).unwrap();
        let ScenarioOutcome::PlanCost(m) = &out else {
            panic!("expected plan-cost outcome");
        };
        let rows = hotnoc_core::experiment::run_migration_cost(
            ChipConfigId::A,
            Fidelity::Quick,
            &CosimParams::quick(),
        )
        .unwrap();
        let rot = &rows[0];
        assert_eq!(m.phases, rot.phases as u64);
        assert_eq!(m.flit_hops, rot.flit_hops);
        assert_eq!(m.moves, rot.moves as u64);
        assert!((m.stall_us - rot.stall_us).abs() < 1e-9);
        assert!((m.energy_uj - rot.energy_uj).abs() < 1e-9);
    }

    #[test]
    fn ldpc_periodic_matches_run_cosim() {
        let spec = ScenarioSpec {
            name: "xy".to_string(),
            chip: ChipKind::Config(ChipConfigId::A),
            workload: Workload::Ldpc,
            policy: Policy::Periodic {
                scheme: MigrationScheme::XYShift,
                period_blocks: 24,
            },
            mode: Mode::Cosim,
            fidelity: Fidelity::Quick,
            sim_time_ms: None,
            faults: vec![],
            seed: 0,
        };
        let out = run_scenario(&spec).unwrap();
        let ScenarioOutcome::Cosim(m) = &out else {
            panic!("expected cosim outcome");
        };
        let mut chip = Chip::build(spec.chip.to_chip_spec(Fidelity::Quick)).unwrap();
        let cal = chip.calibrate().unwrap();
        let direct = hotnoc_core::cosim::run_cosim(
            &chip,
            &cal,
            Some(MigrationScheme::XYShift),
            &CosimParams::quick(),
        )
        .unwrap();
        assert_eq!(*m, CosimMetrics::of(&direct));
        assert!(m.reduction > 0.5, "xy-shift should cool config A");
    }
}
