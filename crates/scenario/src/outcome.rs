//! `ScenarioOutcome` — the machine-readable result of one scenario run.
//!
//! Outcomes serialize to canonical JSON (see [`crate::json`]) with a `kind`
//! tag. The encode/decode pair is **exact**: floats use shortest-roundtrip
//! formatting, so an outcome journaled to a campaign manifest and read back
//! on resume re-serializes to the same bytes an uninterrupted run would
//! have produced.

use crate::json::Json;
use crate::spec::{scheme_from_name, scheme_name};
use hotnoc_core::CosimResult;
use hotnoc_reconfig::MigrationScheme;
use serde::{Deserialize, Serialize};

/// Thermal co-simulation metrics (LDPC workload, baseline or periodic
/// policy). Mirrors [`CosimResult`] minus the scheme (the spec carries it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CosimMetrics {
    /// Steady-state peak of the static placement, °C.
    pub base_peak: f64,
    /// Peak under migration after warm-up, °C.
    pub peak: f64,
    /// `base_peak - peak`, °C.
    pub reduction: f64,
    /// Time-averaged mean die temperature under migration, °C.
    pub mean_temp: f64,
    /// Mean die temperature of the static baseline, °C.
    pub base_mean_temp: f64,
    /// Throughput penalty: stall / (period + stall).
    pub throughput_penalty: f64,
    /// Migration stall, seconds.
    pub stall_seconds: f64,
    /// Active decode time between stalls, seconds.
    pub period_seconds: f64,
    /// Energy per migration event, joules.
    pub migration_energy_j: f64,
    /// Congestion-free phases per migration.
    pub phases: u64,
    /// Migrations executed during the horizon.
    pub migrations: u64,
}

impl CosimMetrics {
    /// Extracts the metrics of a [`CosimResult`].
    pub fn of(r: &CosimResult) -> CosimMetrics {
        CosimMetrics {
            base_peak: r.base_peak,
            peak: r.peak,
            reduction: r.reduction,
            mean_temp: r.mean_temp,
            base_mean_temp: r.base_mean_temp,
            throughput_penalty: r.throughput_penalty,
            stall_seconds: r.stall_seconds,
            period_seconds: r.period_seconds,
            migration_energy_j: r.migration_energy_j,
            phases: r.phases as u64,
            migrations: r.migrations,
        }
    }

    /// Reassembles a [`CosimResult`] (for the exhibit tables; `scheme` comes
    /// from the owning spec).
    pub fn to_cosim_result(&self, scheme: Option<MigrationScheme>) -> CosimResult {
        CosimResult {
            scheme,
            base_peak: self.base_peak,
            peak: self.peak,
            reduction: self.reduction,
            mean_temp: self.mean_temp,
            base_mean_temp: self.base_mean_temp,
            throughput_penalty: self.throughput_penalty,
            stall_seconds: self.stall_seconds,
            period_seconds: self.period_seconds,
            migration_energy_j: self.migration_energy_j,
            phases: self.phases as usize,
            migrations: self.migrations,
        }
    }
}

/// Adaptive co-simulation metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveMetrics {
    /// Static baseline peak, °C.
    pub base_peak: f64,
    /// Peak under adaptive migration after warm-up, °C.
    pub peak: f64,
    /// `base_peak - peak`, °C.
    pub reduction: f64,
    /// Time-weighted throughput penalty.
    pub throughput_penalty: f64,
    /// The schemes the controller chose, in canonical-name form, one per
    /// migration.
    pub schedule: Vec<MigrationScheme>,
}

/// Migration-plan cost metrics (plan-cost mode; no transient solve).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanCostMetrics {
    /// Congestion-free phases.
    pub phases: u64,
    /// Stall time, µs.
    pub stall_us: f64,
    /// State-transfer flit-hops.
    pub flit_hops: u64,
    /// Energy per migration, µJ.
    pub energy_uj: f64,
    /// PEs moved.
    pub moves: u64,
}

/// Synthetic-traffic metrics (bare NoC, no thermal model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMetrics {
    /// Packets offered by the generator.
    pub offered: u64,
    /// Packets delivered (including the drain window).
    pub delivered: u64,
    /// Whether the network drained within the post-run budget.
    pub drained: bool,
    /// Mean packet latency in cycles (0 when nothing was delivered).
    pub mean_latency_cycles: f64,
    /// Upper bound on the median packet latency (histogram bucket edge; 0
    /// when nothing was delivered).
    pub p50_latency_cycles: u64,
    /// Upper bound on the 95th-percentile packet latency (histogram bucket
    /// edge; 0 when nothing was delivered).
    pub p95_latency_cycles: u64,
    /// Maximum packet latency in cycles.
    pub max_latency_cycles: u64,
    /// Total flit-hops.
    pub flit_hops: u64,
    /// Packets dropped on a degraded fabric (dead endpoints, unreachable
    /// destinations, fault teardown). Zero on a healthy run.
    pub packets_dropped: u64,
    /// Flits dropped on a degraded fabric. Zero on a healthy run.
    pub flits_dropped: u64,
    /// Route computations where surround routing detoured away from the
    /// healthy (XY) output. Zero on a healthy run.
    pub detour_hops: u64,
}

/// An optional non-negative integer field: absent defaults to 0, but a
/// present field of the wrong type is still an error.
fn opt_u64(j: &Json, key: &str) -> Result<u64, String> {
    match j.get(key) {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field {key:?} is not a non-negative integer")),
    }
}

/// The result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioOutcome {
    /// Thermal co-simulation (baseline or periodic policy).
    Cosim(CosimMetrics),
    /// Adaptive co-simulation.
    Adaptive(AdaptiveMetrics),
    /// Migration-plan cost analysis.
    PlanCost(PlanCostMetrics),
    /// Synthetic traffic on the bare NoC.
    Traffic(TrafficMetrics),
}

impl ScenarioOutcome {
    /// The outcome's `kind` tag (`"cosim"` / `"adaptive"` / `"plan-cost"`
    /// / `"traffic"`), as serialized to JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioOutcome::Cosim(_) => "cosim",
            ScenarioOutcome::Adaptive(_) => "adaptive",
            ScenarioOutcome::PlanCost(_) => "plan-cost",
            ScenarioOutcome::Traffic(_) => "traffic",
        }
    }

    /// Serializes to canonical JSON with a `kind` tag.
    pub fn to_json(&self) -> Json {
        match self {
            ScenarioOutcome::Cosim(m) => Json::object(vec![
                ("kind", Json::str("cosim")),
                ("base_peak", Json::Num(m.base_peak)),
                ("peak", Json::Num(m.peak)),
                ("reduction", Json::Num(m.reduction)),
                ("mean_temp", Json::Num(m.mean_temp)),
                ("base_mean_temp", Json::Num(m.base_mean_temp)),
                ("throughput_penalty", Json::Num(m.throughput_penalty)),
                ("stall_seconds", Json::Num(m.stall_seconds)),
                ("period_seconds", Json::Num(m.period_seconds)),
                ("migration_energy_j", Json::Num(m.migration_energy_j)),
                ("phases", Json::int(m.phases)),
                ("migrations", Json::int(m.migrations)),
            ]),
            ScenarioOutcome::Adaptive(m) => Json::object(vec![
                ("kind", Json::str("adaptive")),
                ("base_peak", Json::Num(m.base_peak)),
                ("peak", Json::Num(m.peak)),
                ("reduction", Json::Num(m.reduction)),
                ("throughput_penalty", Json::Num(m.throughput_penalty)),
                (
                    "schedule",
                    Json::Array(
                        m.schedule
                            .iter()
                            .map(|&s| Json::Str(scheme_name(s)))
                            .collect(),
                    ),
                ),
            ]),
            ScenarioOutcome::PlanCost(m) => Json::object(vec![
                ("kind", Json::str("plan-cost")),
                ("phases", Json::int(m.phases)),
                ("stall_us", Json::Num(m.stall_us)),
                ("flit_hops", Json::int(m.flit_hops)),
                ("energy_uj", Json::Num(m.energy_uj)),
                ("moves", Json::int(m.moves)),
            ]),
            ScenarioOutcome::Traffic(m) => {
                let mut fields = vec![
                    ("kind", Json::str("traffic")),
                    ("offered", Json::int(m.offered)),
                    ("delivered", Json::int(m.delivered)),
                    ("drained", Json::Bool(m.drained)),
                    ("mean_latency_cycles", Json::Num(m.mean_latency_cycles)),
                    ("p50_latency_cycles", Json::int(m.p50_latency_cycles)),
                    ("p95_latency_cycles", Json::int(m.p95_latency_cycles)),
                    ("max_latency_cycles", Json::int(m.max_latency_cycles)),
                    ("flit_hops", Json::int(m.flit_hops)),
                ];
                // Fault counters are emitted only when non-zero, so healthy
                // traffic outcomes keep their exact pre-fault JSON (and
                // campaign artifacts their bytes).
                if m.packets_dropped != 0 {
                    fields.push(("packets_dropped", Json::int(m.packets_dropped)));
                }
                if m.flits_dropped != 0 {
                    fields.push(("flits_dropped", Json::int(m.flits_dropped)));
                }
                if m.detour_hops != 0 {
                    fields.push(("detour_hops", Json::int(m.detour_hops)));
                }
                Json::object(fields)
            }
        }
    }

    /// Deserializes from the JSON produced by [`ScenarioOutcome::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(j: &Json) -> Result<ScenarioOutcome, String> {
        match j.req_str("kind")? {
            "cosim" => Ok(ScenarioOutcome::Cosim(CosimMetrics {
                base_peak: j.req_f64("base_peak")?,
                peak: j.req_f64("peak")?,
                reduction: j.req_f64("reduction")?,
                mean_temp: j.req_f64("mean_temp")?,
                base_mean_temp: j.req_f64("base_mean_temp")?,
                throughput_penalty: j.req_f64("throughput_penalty")?,
                stall_seconds: j.req_f64("stall_seconds")?,
                period_seconds: j.req_f64("period_seconds")?,
                migration_energy_j: j.req_f64("migration_energy_j")?,
                phases: j.req_u64("phases")?,
                migrations: j.req_u64("migrations")?,
            })),
            "adaptive" => Ok(ScenarioOutcome::Adaptive(AdaptiveMetrics {
                base_peak: j.req_f64("base_peak")?,
                peak: j.req_f64("peak")?,
                reduction: j.req_f64("reduction")?,
                throughput_penalty: j.req_f64("throughput_penalty")?,
                schedule: j
                    .req_array("schedule")?
                    .iter()
                    .map(|s| scheme_from_name(s.as_str().ok_or("schedule entry is not a string")?))
                    .collect::<Result<Vec<_>, _>>()?,
            })),
            "plan-cost" => Ok(ScenarioOutcome::PlanCost(PlanCostMetrics {
                phases: j.req_u64("phases")?,
                stall_us: j.req_f64("stall_us")?,
                flit_hops: j.req_u64("flit_hops")?,
                energy_uj: j.req_f64("energy_uj")?,
                moves: j.req_u64("moves")?,
            })),
            "traffic" => Ok(ScenarioOutcome::Traffic(TrafficMetrics {
                offered: j.req_u64("offered")?,
                delivered: j.req_u64("delivered")?,
                drained: j.req("drained")?.as_bool().ok_or("drained is not a bool")?,
                mean_latency_cycles: j.req_f64("mean_latency_cycles")?,
                // Optional with a 0 default: traffic outcomes archived
                // before the analytics layer (same `hotnoc-campaign-v1`
                // tag) predate the quantile fields and must keep parsing.
                p50_latency_cycles: opt_u64(j, "p50_latency_cycles")?,
                p95_latency_cycles: opt_u64(j, "p95_latency_cycles")?,
                max_latency_cycles: j.req_u64("max_latency_cycles")?,
                flit_hops: j.req_u64("flit_hops")?,
                // Optional with a 0 default: absent on healthy runs (and on
                // every outcome archived before fault injection existed).
                packets_dropped: opt_u64(j, "packets_dropped")?,
                flits_dropped: opt_u64(j, "flits_dropped")?,
                detour_hops: opt_u64(j, "detour_hops")?,
            })),
            other => Err(format!("unknown outcome kind {other:?}")),
        }
    }

    /// A one-line human summary for the campaign table.
    pub fn summary(&self) -> String {
        match self {
            ScenarioOutcome::Cosim(m) => format!(
                "peak {:.2} C  reduction {:+.2} C  penalty {:.2}%  migrations {}",
                m.peak,
                m.reduction,
                m.throughput_penalty * 100.0,
                m.migrations
            ),
            ScenarioOutcome::Adaptive(m) => format!(
                "peak {:.2} C  reduction {:+.2} C  penalty {:.2}%  migrations {}",
                m.peak,
                m.reduction,
                m.throughput_penalty * 100.0,
                m.schedule.len()
            ),
            ScenarioOutcome::PlanCost(m) => format!(
                "phases {}  stall {:.2} us  hops {}  energy {:.2} uJ  moves {}",
                m.phases, m.stall_us, m.flit_hops, m.energy_uj, m.moves
            ),
            ScenarioOutcome::Traffic(m) => {
                let faults = if m.packets_dropped > 0 || m.detour_hops > 0 {
                    format!("  dropped {}  detours {}", m.packets_dropped, m.detour_hops)
                } else {
                    String::new()
                };
                format!(
                    "delivered {}/{}  mean latency {:.1} cyc  p95 <{}  max {}  drained {}{faults}",
                    m.delivered,
                    m.offered,
                    m.mean_latency_cycles,
                    m.p95_latency_cycles,
                    m.max_latency_cycles,
                    m.drained
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes() -> Vec<ScenarioOutcome> {
        vec![
            ScenarioOutcome::Cosim(CosimMetrics {
                base_peak: 85.44,
                peak: 80.1234567891234,
                reduction: 5.31654321087666,
                mean_temp: 70.0,
                base_mean_temp: 69.5,
                throughput_penalty: 0.016,
                stall_seconds: 1.7e-6,
                period_seconds: 1.093e-4,
                migration_energy_j: 1.059e-6,
                phases: 3,
                migrations: 457,
            }),
            ScenarioOutcome::Adaptive(AdaptiveMetrics {
                base_peak: 75.98,
                peak: 71.0,
                reduction: 4.98,
                throughput_penalty: 0.012,
                schedule: vec![MigrationScheme::XYShift, MigrationScheme::Rotation],
            }),
            ScenarioOutcome::PlanCost(PlanCostMetrics {
                phases: 4,
                stall_us: 2.18,
                flit_hops: 1234,
                energy_uj: 1.07,
                moves: 25,
            }),
            ScenarioOutcome::Traffic(TrafficMetrics {
                offered: 812,
                delivered: 812,
                drained: true,
                mean_latency_cycles: 13.71,
                p50_latency_cycles: 16,
                p95_latency_cycles: 32,
                max_latency_cycles: 44,
                flit_hops: 9000,
                packets_dropped: 0,
                flits_dropped: 0,
                detour_hops: 0,
            }),
            ScenarioOutcome::Traffic(TrafficMetrics {
                offered: 640,
                delivered: 601,
                drained: true,
                mean_latency_cycles: 19.2,
                p50_latency_cycles: 16,
                p95_latency_cycles: 64,
                max_latency_cycles: 131,
                flit_hops: 11200,
                packets_dropped: 39,
                flits_dropped: 117,
                detour_hops: 420,
            }),
        ]
    }

    #[test]
    fn outcome_json_roundtrip_is_byte_stable() {
        for o in outcomes() {
            let text = o.to_json().to_string();
            let back =
                ScenarioOutcome::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back, o);
            assert_eq!(back.to_json().to_string(), text, "byte-stable reencode");
        }
    }

    #[test]
    fn pre_analytics_traffic_outcomes_still_decode() {
        // Traffic outcomes journaled before the quantile fields existed
        // (same hotnoc-campaign-v1 tag) must keep parsing, with the
        // missing percentiles defaulting to 0.
        let legacy = r#"{"kind": "traffic", "offered": 10, "delivered": 10, "drained": true,
                         "mean_latency_cycles": 5.5, "max_latency_cycles": 9, "flit_hops": 40}"#;
        let back = ScenarioOutcome::from_json(&Json::parse(legacy).expect("parses"))
            .expect("legacy outcome decodes");
        let ScenarioOutcome::Traffic(m) = &back else {
            panic!("expected traffic outcome");
        };
        assert_eq!(m.p50_latency_cycles, 0);
        assert_eq!(m.p95_latency_cycles, 0);
        assert_eq!(m.max_latency_cycles, 9);
        // A present-but-mistyped field is still rejected.
        let bad = legacy.replace(
            "\"drained\": true,",
            "\"drained\": true, \"p95_latency_cycles\": \"x\",",
        );
        assert!(ScenarioOutcome::from_json(&Json::parse(&bad).expect("parses")).is_err());
    }

    #[test]
    fn fault_counters_are_absent_when_zero() {
        // Healthy traffic outcomes must keep their exact pre-fault JSON so
        // archived campaign artifacts stay byte-identical.
        let healthy = &outcomes()[3];
        let text = healthy.to_json().to_string();
        for key in ["packets_dropped", "flits_dropped", "detour_hops"] {
            assert!(!text.contains(key), "{key} leaked into {text}");
        }
        let degraded = &outcomes()[4];
        let text = degraded.to_json().to_string();
        for key in ["packets_dropped", "flits_dropped", "detour_hops"] {
            assert!(text.contains(key), "{key} missing from {text}");
        }
        assert!(degraded.summary().contains("dropped 39"));
        assert!(degraded.summary().contains("detours 420"));
        assert!(!healthy.summary().contains("dropped"));
    }

    #[test]
    fn summaries_are_one_line() {
        for o in outcomes() {
            assert!(!o.summary().contains('\n'));
        }
    }
}
